"""Quickstart: build a similarity search system for a custom data type.

This is the toolkit's construction story in miniature (section 5 of the
paper): supply segmentation/feature-extraction and distance functions,
pick sketch and filter parameters, and the engine does the rest —
sketching, filtering, ranking, storage accounting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Describe the feature space: 16-dim vectors in the unit cube.
    meta = FeatureMeta(16, np.zeros(16), np.ones(16))

    # 2. A plug-in needs at minimum the feature space; distances default
    #    to l1 segments + EMD objects.  (A real plug-in would also supply
    #    seg_extract to ingest files — see the image/audio examples.)
    plugin = DataTypePlugin("demo", meta)

    # 3. Build the engine: 128-bit sketches, modest filter parameters.
    engine = SimilaritySearchEngine(
        plugin,
        SketchParams(n_bits=128, meta=meta, seed=42),
        FilterParams(num_query_segments=3, candidates_per_segment=32),
    )

    # 4. Ingest objects: weighted sets of feature vectors.  We plant a
    #    few near-duplicates of object 0 so there is something to find.
    base = rng.random((4, 16))
    engine.insert(ObjectSignature(base, [4, 3, 2, 1]))
    for _ in range(3):
        noisy = np.clip(base + rng.normal(0, 0.02, base.shape), 0, 1)
        engine.insert(ObjectSignature(noisy, [4, 3, 2, 1]))
    for _ in range(200):
        k = int(rng.integers(2, 6))
        engine.insert(ObjectSignature(rng.random((k, 16)), rng.random(k) + 0.1))

    # 5. Query with each of the paper's three search methods.
    print(f"indexed {len(engine)} objects, {engine.stats().num_segments} segments")
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL,
                   SearchMethod.BRUTE_FORCE_SKETCH, SearchMethod.FILTERING):
        results = engine.query_by_id(0, top_k=4, method=method, exclude_self=True)
        ids = [r.object_id for r in results]
        print(f"{method.value:>22}: nearest = {ids}")
        # The three planted near-duplicates (ids 1-3) should lead.
        assert set(ids[:3]) == {1, 2, 3}, ids

    # 6. Storage accounting: the sketch-vs-feature-vector savings.
    stats = engine.stats()
    print(
        f"feature vector: {stats.feature_bits_per_vector} bits, "
        f"sketch: {stats.sketch_bits_per_vector} bits "
        f"({stats.compression_ratio:.1f}:1 compression)"
    )


if __name__ == "__main__":
    main()
