"""Genomic microarray search: finding similarly expressed genes.

Reproduces the paper's genomics use case (section 5.4): the expression
matrix is segmented row by row (one feature vector per gene) and the
toolkit is used to compare Pearson, Spearman and l1 distances for
identifying co-regulated gene modules — the exact experiment the
Princeton genomics group built Ferret search tools for.

Run:  python examples/genomic_search.py
"""

from repro.core import (
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    meta_from_dataset,
)
from repro.datatypes.genomic import (
    GENOMIC_DISTANCES,
    generate_genomic_benchmark,
    make_genomic_plugin,
)
from repro.evaltool import evaluate_engine


def main() -> None:
    print("generating synthetic microarray (co-regulated gene modules) ...")
    bench = generate_genomic_benchmark(
        num_modules=25, genes_per_module=8, num_background=300,
        num_experiments=80, seed=21,
    )
    data = bench.expression
    print(
        f"  {data.num_genes} genes x {data.num_experiments} experiments, "
        f"{len(bench.suite)} modules as gold-standard similarity sets"
    )

    # The genomics group's experiment: which distance finds modules best?
    meta = meta_from_dataset(bench.dataset)
    print(f"\n{'distance':>10} {'avg prec':>9} {'1st tier':>9} {'2nd tier':>9}")
    engines = {}
    for name in GENOMIC_DISTANCES:
        plugin = make_genomic_plugin(data.num_experiments, distance=name, meta=meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(256, meta, seed=0))
        for obj in bench.dataset:
            engine.insert(obj)
        engines[name] = engine
        result = evaluate_engine(engine, bench.suite, SearchMethod.BRUTE_FORCE_ORIGINAL)
        print(
            f"{name:>10} {result.quality.average_precision:>9.3f} "
            f"{result.quality.first_tier:>9.3f} {result.quality.second_tier:>9.3f}"
        )

    # A gene neighborhood, like the paper's Figure 13 web view.
    engine = engines["pearson"]
    seed_gene = bench.suite.sets[0].query_id
    print(f"\nnearest genes to {data.gene_names[seed_gene]} (Pearson distance):")
    for result in engine.query_by_id(seed_gene, top_k=6, exclude_self=True,
                                     method=SearchMethod.BRUTE_FORCE_ORIGINAL):
        name = data.gene_names[result.object_id]
        module = data.module_of[result.object_id]
        tag = f"module {module}" if module >= 0 else "background"
        print(f"  {name:>12}  dist {result.distance:.4f}  ({tag})")


if __name__ == "__main__":
    main()
