"""Full system demo: every toolkit component wired together.

Assembles the complete Figure-2 architecture: persistent metadata store,
directory-scan data acquisition, attribute index, the TCP command
protocol server, and the web interface — then drives it like a user:
drop files in the watched directory, bootstrap with an attribute query,
run similarity searches over the network, restart from disk.

Run:  python examples/full_system_demo.py
"""

import os
import tempfile
import urllib.request

import numpy as np

from repro.acquisition import DirectoryScanner
from repro.attrsearch import PersistentIndex
from repro.core import SimilaritySearchEngine, SketchParams
from repro.datatypes.image import make_image_plugin, random_scene, render_scene
from repro.metadata import MetadataManager
from repro.server import CommandProcessor, FerretClient, serve_background
from repro.storage import KVStore
from repro.web.webserver import WebApp, _LocalBackend, serve_web_background


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="ferret-demo-")
    incoming = os.path.join(workdir, "incoming")
    os.makedirs(incoming)
    rng = np.random.default_rng(0)

    # --- render a small photo collection into the watched directory -----
    categories = ["sunset", "garden", "harbor"]
    for i in range(12):
        image = render_scene(random_scene(rng), 48, 48, rng)
        np.save(os.path.join(incoming, f"{categories[i % 3]}_{i:02d}.npy"), image)
    print(f"wrote 12 images into {incoming}")

    # --- assemble the system --------------------------------------------
    store = KVStore(os.path.join(workdir, "store"))
    manager = MetadataManager(store=store)
    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(
        plugin, SketchParams(96, plugin.meta, seed=1), metadata=manager
    )
    processor = CommandProcessor(engine, index=PersistentIndex(store))

    def attrs_from_name(path: str):
        stem = os.path.splitext(os.path.basename(path))[0]
        return {"category": stem.rsplit("_", 1)[0], "file": stem}

    scanner = DirectoryScanner(
        engine, incoming, extensions=(".npy",), attribute_fn=attrs_from_name
    )
    scanner.on_import = lambda path, oid: processor.register_attributes(
        oid, attrs_from_name(path)
    )

    # --- acquisition: two passes (first records sizes, second imports) --
    scanner.scan_once()
    report = scanner.scan_once()
    print(f"data acquisition imported {report.num_imported} files")

    # --- serve the command protocol + web interface ---------------------
    server = serve_background(processor)
    host, port = server.server_address
    web = serve_web_background(
        WebApp(_LocalBackend(processor), title="Ferret demo",
               attributes=processor.attributes)
    )
    whost, wport = web.server_address
    print(f"command server on {host}:{port}, web ui on http://{whost}:{wport}/")

    with FerretClient(host, port) as client:
        print(f"server reports {client.count()} objects")
        # Attribute search bootstraps similarity search (section 4.1.2).
        sunsets = client.attrquery("category:sunset")
        print(f"attribute query 'category:sunset' -> {sunsets}")
        results = client.query(sunsets[0], top=3)
        print(f"similar to object {sunsets[0]}: {results}")
        restricted = client.query(sunsets[0], top=3, attr="category:sunset")
        print(f"same query restricted to sunsets: {restricted}")

    page = urllib.request.urlopen(f"http://{whost}:{wport}/query?id=0&top=3").read()
    print(f"web query page rendered ({len(page)} bytes)")

    # --- restart from disk ----------------------------------------------
    server.shutdown(); server.server_close()
    web.shutdown(); web.server_close()
    checkpoint_id = store.checkpoint_id
    manager.close()
    store.close()

    store2 = KVStore(os.path.join(workdir, "store"))
    manager2 = MetadataManager(store=store2)
    engine2 = SimilaritySearchEngine(
        plugin, SketchParams(96, plugin.meta, seed=1), metadata=manager2
    )
    loaded = engine2.load()
    print(f"restart: reloaded {loaded} objects from checkpoint {checkpoint_id}")
    results = engine2.query_by_id(0, top_k=3)
    print(f"post-restart query works: {[(r.object_id, round(r.distance, 3)) for r in results]}")
    store2.close()


if __name__ == "__main__":
    main()
