"""Video similarity search — shots as segments (future-work data type).

Builds video on top of the toolkit's image substrate: a video is a
sequence of shots, hard cuts are detected from inter-frame differences,
each shot contributes a keyframe+motion descriptor, and EMD across shots
retrieves re-edits of the same footage even when shots were reordered or
trimmed.

Run:  python examples/video_search.py
"""

import numpy as np

from repro.core import (
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    meta_from_dataset,
)
from repro.datatypes.video import (
    VideoSpec,
    detect_shots,
    generate_video_benchmark,
    make_video_plugin,
    random_video,
    render_video,
    signature_from_video,
)
from repro.evaltool import evaluate_engine


def main() -> None:
    rng = np.random.default_rng(17)

    # --- shot detection demo ---------------------------------------------
    video = random_video(rng, num_shots=5)
    frames, true_spans = render_video(video, 32, 32, rng)
    detected = detect_shots(frames)
    print(
        f"shot detection: {frames.shape[0]} frames, "
        f"{len(true_spans)} shots cut, {len(detected)} detected"
    )

    # --- retrieval benchmark ----------------------------------------------
    print("\ngenerating synthetic video benchmark ...")
    bench = generate_video_benchmark(
        num_videos=10, renditions_per_video=4, num_distractors=30, seed=19
    )
    print(
        f"  {len(bench.dataset)} clips, "
        f"{bench.dataset.avg_segments:.1f} shots/clip"
    )

    meta = meta_from_dataset(bench.dataset)
    plugin = make_video_plugin(meta)
    engine = SimilaritySearchEngine(plugin, SketchParams(128, meta, seed=0))
    for obj in bench.dataset:
        engine.insert(obj)

    print(f"\n{'method':>24} {'avg prec':>9} {'1st tier':>9} {'2nd tier':>9} {'s/query':>9}")
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL,
                   SearchMethod.BRUTE_FORCE_SKETCH, SearchMethod.FILTERING):
        result = evaluate_engine(engine, bench.suite, method)
        row = result.row()
        print(
            f"{method.value:>24} {row['average_precision']:>9} "
            f"{row['first_tier']:>9} {row['second_tier']:>9} "
            f"{row['avg_query_seconds']:>9}"
        )

    # --- shot-order invariance --------------------------------------------
    original = bench.videos[0]
    reversed_cut = VideoSpec(tuple(reversed(original.shots)))
    frames_rev, _ = render_video(reversed_cut, 32, 32, rng)
    query = signature_from_video(frames_rev)
    results = engine.query(query, top_k=4, method=SearchMethod.BRUTE_FORCE_ORIGINAL)
    recovered = {r.object_id for r in results} & set(range(4))
    print(
        f"\nreverse-cut query recovered {len(recovered)}/4 renditions of the "
        "original footage (EMD ignores shot order)"
    )


if __name__ == "__main__":
    main()
