"""Image similarity search: the paper's VARY-benchmark workflow.

Builds a synthetic image benchmark (similarity sets = one scene rendered
under perturbation), runs the full segmentation -> features -> sketch ->
filter -> thresholded-EMD pipeline, and compares search quality against
a SIMPLIcity-style global-feature baseline, like Table 1 of the paper.

Run:  python examples/image_search.py
"""

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams, FilterParams
from repro.datatypes.image import (
    SimplicityBaseline,
    generate_image_benchmark,
    make_image_plugin,
)
from repro.evaltool import evaluate_engine
from repro.evaltool.metrics import QualityScores, score_query


def main() -> None:
    print("generating synthetic VARY-style benchmark ...")
    bench = generate_image_benchmark(
        num_sets=10, set_size=5, num_distractors=120, image_size=48, seed=11
    )
    print(
        f"  {len(bench.dataset)} images, {bench.dataset.avg_segments:.1f} "
        f"segments/image, {len(bench.suite)} similarity sets"
    )

    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(
        plugin,
        SketchParams(96, plugin.meta, seed=0),  # Table 1's 96-bit sketches
        FilterParams(num_query_segments=4, candidates_per_segment=48),
    )
    baseline = SimplicityBaseline()
    for obj in bench.dataset:
        engine.insert(obj)
        baseline.insert(obj.object_id, bench.images[obj.object_id])

    print(f"\n{'method':>24} {'avg prec':>9} {'1st tier':>9} {'2nd tier':>9} {'s/query':>9}")
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL,
                   SearchMethod.BRUTE_FORCE_SKETCH, SearchMethod.FILTERING):
        result = evaluate_engine(engine, bench.suite, method)
        row = result.row()
        print(
            f"{method.value:>24} {row['average_precision']:>9} "
            f"{row['first_tier']:>9} {row['second_tier']:>9} "
            f"{row['avg_query_seconds']:>9}"
        )

    # SIMPLIcity-style global baseline for comparison.
    scores = []
    for sim_set in bench.suite.sets:
        qid = sim_set.query_id
        results = baseline.query(bench.images[qid], top_k=30, exclude_id=qid)
        scores.append(
            score_query([r.object_id for r in results], sim_set.members, qid,
                        len(bench.dataset))
        )
    quality = QualityScores.mean(scores)
    print(
        f"{'simplicity-baseline':>24} {quality.average_precision:>9.3f} "
        f"{quality.first_tier:>9.3f} {quality.second_tier:>9.3f}"
    )

    stats = engine.stats()
    print(
        f"\nmetadata: {stats.feature_bits_per_vector} feature bits vs "
        f"{stats.sketch_bits_per_vector} sketch bits per segment "
        f"({stats.compression_ratio:.1f}:1)"
    )


if __name__ == "__main__":
    main()
