"""Audio similarity search: speaker-independent sentence retrieval.

Reproduces the paper's audio workflow (section 5.2): synthesize a
TIMIT-style corpus (sentences x speakers), run the RMS/zero-crossing
utterance segmenter on a continuous recording, extract 192-dim MFCC
features per word, and search with EMD so that sentences match across
speakers — even with words in a different order.

Run:  python examples/audio_search.py
"""

import numpy as np

from repro.core import (
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    meta_from_dataset,
)
from repro.datatypes.audio import (
    SAMPLE_RATE,
    generate_audio_benchmark,
    make_audio_plugin,
    random_sentence,
    random_speaker,
    segment_utterances,
    signature_from_sentence,
    synthesize_sentence,
)
from repro.evaltool import evaluate_engine


def main() -> None:
    rng = np.random.default_rng(5)

    # --- utterance segmentation demo (the acquisition-side segmenter) ---
    print("utterance segmentation on a continuous recording:")
    speaker = random_speaker(rng)
    sentences = [random_sentence(rng, 4) for _ in range(3)]
    pause = np.zeros(int(0.5 * SAMPLE_RATE))
    pieces = [pause]
    for sentence in sentences:
        signal, _bounds = synthesize_sentence(sentence, speaker, rng)
        pieces.extend([signal, pause])
    recording = np.concatenate(pieces)
    spans = segment_utterances(recording, SAMPLE_RATE)
    print(f"  {len(sentences)} sentences synthesized, "
          f"{len(spans)} utterances detected")

    # --- TIMIT-style retrieval benchmark --------------------------------
    print("\ngenerating synthetic TIMIT-style benchmark ...")
    bench = generate_audio_benchmark(
        num_sentences=25, speakers_per_sentence=7, seed=7
    )
    print(f"  {len(bench.dataset)} utterances, "
          f"{bench.dataset.avg_segments:.1f} words/utterance")

    meta = meta_from_dataset(bench.dataset)
    plugin = make_audio_plugin(meta)
    engine = SimilaritySearchEngine(
        plugin, SketchParams(600, meta, seed=0)  # Table 1's 600-bit sketches
    )
    for obj in bench.dataset:
        engine.insert(obj)

    print(f"\n{'method':>24} {'avg prec':>9} {'1st tier':>9} {'2nd tier':>9} {'s/query':>9}")
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL,
                   SearchMethod.BRUTE_FORCE_SKETCH, SearchMethod.FILTERING):
        result = evaluate_engine(engine, bench.suite, method)
        row = result.row()
        print(
            f"{method.value:>24} {row['average_precision']:>9} "
            f"{row['first_tier']:>9} {row['second_tier']:>9} "
            f"{row['avg_query_seconds']:>9}"
        )

    # --- order invariance: shuffle a sentence's words -------------------
    sentence = bench.sentences[0]
    shuffled_words = list(sentence.words)
    rng.shuffle(shuffled_words)
    signal, bounds = synthesize_sentence(
        type(sentence)(tuple(shuffled_words)), random_speaker(rng), rng
    )
    query = signature_from_sentence(signal, bounds)
    results = engine.query(query, top_k=7, method=SearchMethod.BRUTE_FORCE_ORIGINAL)
    same_sentence = {s.object_id for s in results} & set(range(7))
    print(
        f"\nshuffled-word query recovered {len(same_sentence)}/7 renditions "
        "of the original sentence (EMD ignores word order)"
    )


if __name__ == "__main__":
    main()
