"""Attribute-based search: bootstrapping and refining similarity queries.

Section 4.1.2 of the paper: attributes "may take several forms: generic
attributes such as creation time, automatically collected annotations
such as GPS coordinates stored with digital photographs, or manual
annotations".  This example builds a photo collection carrying all
three kinds, then runs the paper's two composition patterns:

1. *bootstrap* — an attribute query finds seed objects for similarity
   search;
2. *refine* — a similarity query restricted to attribute matches.

Run:  python examples/attribute_search.py
"""

import numpy as np

from repro.attrsearch import AttributeSearcher, MemoryIndex
from repro.core import SimilaritySearchEngine, SketchParams
from repro.datatypes.image import (
    make_image_plugin,
    perturb_scene,
    random_scene,
    render_scene,
    signature_from_image,
)


def main() -> None:
    rng = np.random.default_rng(23)
    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(plugin, SketchParams(96, plugin.meta, seed=0))
    index = MemoryIndex()
    searcher = AttributeSearcher(index)

    # --- build a small annotated photo collection ------------------------
    albums = ["vacation", "garden", "city"]
    scenes = {}
    for i in range(30):
        album = albums[i % 3]
        scene = random_scene(rng)
        image = render_scene(scene, 40, 40, rng)
        oid = engine.insert(signature_from_image(image))
        scenes[oid] = scene
        index.add(oid, {
            # manual annotation
            "album": album,
            "caption": f"{album} shot number {i}",
            # generic attribute: creation time (year)
            "year": str(2003 + i % 4),
            # automatically collected: GPS latitude
            "lat": f"{40.0 + rng.uniform(0, 2):.3f}",
        })
    print(f"indexed {len(engine)} photos with album/caption/year/lat attributes")

    # --- attribute-only queries ------------------------------------------
    for expr in (
        "album:vacation",
        "year>=2005",
        "lat:40.0..41.0 AND NOT album:city",
        "(garden OR city) year<2005",
    ):
        print(f"  {expr!r:45s} -> {sorted(searcher.search(expr))}")

    # --- bootstrap: attribute query supplies the similarity seed ----------
    seeds = sorted(searcher.search("album:vacation year>=2006"))
    seed = seeds[0]
    print(f"\nbootstrap: seed object {seed} from the attribute query")
    # Plant a near-duplicate so similarity search has something to find.
    lookalike = render_scene(perturb_scene(scenes[seed], rng, strength=0.15), 40, 40, rng)
    dup_id = engine.insert(signature_from_image(lookalike))
    index.add(dup_id, {"album": "unsorted", "year": "2007", "lat": "40.5"})
    results = engine.query_by_id(seed, top_k=3, exclude_self=True)
    print(f"similar to {seed}: {[(r.object_id, round(r.distance, 3)) for r in results]}"
          f"  (planted near-duplicate = {dup_id})")

    # --- refine: similarity restricted to attribute matches ---------------
    vacation_ids = sorted(searcher.search("album:vacation"))
    restricted = engine.query_by_id(
        seed, top_k=3, exclude_self=True, restrict_to=vacation_ids
    )
    print(
        "same query restricted to album:vacation: "
        f"{[(r.object_id, round(r.distance, 3)) for r in restricted]}"
    )
    assert all(r.object_id in vacation_ids for r in restricted)


if __name__ == "__main__":
    main()
