"""3D shape similarity search with spherical-harmonic descriptors.

Reproduces the paper's PSB workflow (section 5.3): generate polygonal
models, voxelize on a 64^3 grid, decompose into 32 spherical shells,
compute the rotation-invariant 544-dim SHD, and search with l1 +
sketches — comparing against the l2 full-descriptor baseline and
verifying rotation invariance explicitly.

Run:  python examples/shape_search.py
"""

import numpy as np

from repro.core import (
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    meta_from_dataset,
)
from repro.datatypes.shape import (
    SHAPE_CLASSES,
    ShdL2Baseline,
    descriptor_from_mesh,
    generate_shape_benchmark,
    make_instance,
    make_shape_plugin,
    random_rotation,
)
from repro.evaltool import evaluate_engine
from repro.evaltool.metrics import QualityScores, score_query


def main() -> None:
    rng = np.random.default_rng(3)

    # --- rotation invariance spot check ---------------------------------
    mesh = make_instance(SHAPE_CLASSES[13], rng, rotate=False)  # rocket
    d1 = descriptor_from_mesh(mesh, rng=np.random.default_rng(0))
    rot = random_rotation(rng)
    d2 = descriptor_from_mesh((mesh[0] @ rot.T, mesh[1]), rng=np.random.default_rng(1))
    rel = np.abs(d1 - d2).sum() / np.abs(d1).sum()
    print(f"SHD rotation invariance: relative l1 change {rel:.1%} under a random rotation")

    # --- PSB-style benchmark --------------------------------------------
    print("\ngenerating synthetic PSB-style benchmark "
          f"({len(SHAPE_CLASSES)} classes) ...")
    bench = generate_shape_benchmark(instances_per_class=6, seed=13)
    print(f"  {len(bench.dataset)} models, 544-dim descriptors")

    meta = meta_from_dataset(bench.dataset)
    plugin = make_shape_plugin(meta)
    engine = SimilaritySearchEngine(
        plugin, SketchParams(800, meta, seed=0)  # Table 1's 800-bit sketches
    )
    baseline = ShdL2Baseline()
    for obj in bench.dataset:
        engine.insert(obj)
        baseline.insert(obj.object_id, obj.features[0])

    print(f"\n{'method':>24} {'avg prec':>9} {'1st tier':>9} {'2nd tier':>9} {'s/query':>9}")
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL,
                   SearchMethod.BRUTE_FORCE_SKETCH, SearchMethod.FILTERING):
        result = evaluate_engine(engine, bench.suite, method)
        row = result.row()
        print(
            f"{method.value:>24} {row['average_precision']:>9} "
            f"{row['first_tier']:>9} {row['second_tier']:>9} "
            f"{row['avg_query_seconds']:>9}"
        )

    scores = []
    for sim_set in bench.suite.sets:
        qid = sim_set.query_id
        results = baseline.query(bench.dataset[qid].features[0], top_k=30, exclude_id=qid)
        scores.append(
            score_query([r.object_id for r in results], sim_set.members, qid,
                        len(bench.dataset))
        )
    quality = QualityScores.mean(scores)
    print(
        f"{'shd-l2-baseline':>24} {quality.average_precision:>9.3f} "
        f"{quality.first_tier:>9.3f} {quality.second_tier:>9.3f}"
    )

    stats = engine.stats()
    print(
        f"\nmetadata: {stats.feature_bits_per_vector} feature bits vs "
        f"{stats.sketch_bits_per_vector} sketch bits per model "
        f"({stats.compression_ratio:.1f}:1 — the paper's 22:1 claim)"
    )


if __name__ == "__main__":
    main()
