"""Sensor-data similarity search — the paper's future-work data type.

The paper's conclusion plans to "expand the usage of Ferret toolkit to
include video and other sensor data"; this example does exactly that
with the toolkit's plug-in interface: synthetic accelerometer-style
recordings, energy change-point segmentation into activity episodes,
24-dim statistical episode features, and EMD retrieval of recordings of
the same activity sequence performed by different subjects.

Run:  python examples/sensor_search.py
"""

import numpy as np

from repro.core import (
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    meta_from_dataset,
)
from repro.datatypes.sensor import (
    generate_sensor_benchmark,
    make_sensor_plugin,
    random_recording,
    random_subject,
    segment_episodes,
    synthesize_recording,
)
from repro.evaltool import evaluate_engine


def main() -> None:
    rng = np.random.default_rng(9)

    # --- change-point segmentation demo ----------------------------------
    spec = random_recording(rng, num_activities=5)
    signal, true_spans = synthesize_recording(spec, random_subject(rng), rng)
    detected = segment_episodes(signal)
    print(
        f"change-point segmentation: {len(true_spans)} activity episodes "
        f"synthesized, {len(detected)} detected"
    )

    # --- retrieval benchmark ---------------------------------------------
    print("\ngenerating synthetic sensor benchmark ...")
    bench = generate_sensor_benchmark(
        num_sequences=15, subjects_per_sequence=5, seed=13
    )
    print(
        f"  {len(bench.dataset)} recordings, "
        f"{bench.dataset.avg_segments:.1f} episodes/recording"
    )

    meta = meta_from_dataset(bench.dataset)
    plugin = make_sensor_plugin(meta)
    engine = SimilaritySearchEngine(plugin, SketchParams(192, meta, seed=0))
    for obj in bench.dataset:
        engine.insert(obj)

    print(f"\n{'method':>24} {'avg prec':>9} {'1st tier':>9} {'2nd tier':>9} {'s/query':>9}")
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL,
                   SearchMethod.BRUTE_FORCE_SKETCH, SearchMethod.FILTERING):
        result = evaluate_engine(engine, bench.suite, method)
        row = result.row()
        print(
            f"{method.value:>24} {row['average_precision']:>9} "
            f"{row['first_tier']:>9} {row['second_tier']:>9} "
            f"{row['avg_query_seconds']:>9}"
        )

    stats = engine.stats()
    print(
        f"\nmetadata: {stats.feature_bits_per_vector} feature bits vs "
        f"{stats.sketch_bits_per_vector} sketch bits per episode "
        f"({stats.compression_ratio:.1f}:1)"
    )


if __name__ == "__main__":
    main()
