PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke metrics-smoke rank-smoke cluster-smoke cluster-obs-smoke perf torture bench bench-parallel bench-throughput bench-check bench-recovery bench-churn bench-cluster-obs

# Tier-1 verification: the full fast suite (torture scans stay opt-in).
test:
	$(PYTHON) -m pytest -x -q

# CI smoke: tier-1 plus an explicit 2-worker parallel-scan correctness
# check (the perf-marked equivalence gates, which include the sharded
# pool vs serial candidate-set identity).
smoke: test
	$(PYTHON) -m pytest -q -m perf tests/core/test_parallel.py tests/core/test_perf_smoke.py

# Observability smoke: metrics/tracing/log unit tests, the narrowed
# exception-handler regressions, the cache epoch-race interleavings, and
# the client<->server metrics + trace round-trip.
metrics-smoke:
	$(PYTHON) -m pytest -q tests/observability tests/core/test_cache_epoch_race.py tests/server/test_observability_integration.py

# Ranking-cascade smoke: the rank-equivalence / lower-bound property
# tests plus the throughput bench in quick mode, which exercises the
# cascade end-to-end (identity vs the exact EMD path) and writes the
# phase-split JSON to BENCH_query_throughput_quick.json for CI upload.
rank-smoke:
	$(PYTHON) -m pytest -q tests/core/test_rank_cascade.py tests/core/test_ranking.py tests/core/test_emd.py
	cd benchmarks && FERRET_BENCH_SCALE=quick $(PYTHON) bench_query_throughput.py

# Cluster smoke: real backend subprocesses under the coordinator.  The
# smoke test kills one backend at R=1 (PARTIAL answer, exactly the dead
# shard missing) and restarts it (full answers again after the prober
# re-admits it); the node-fault drills add the R=2 kill/hang/restart
# invariants and the acked-insert visibility oracle.
cluster-smoke:
	$(PYTHON) -m pytest -q tests/cluster/test_cluster_smoke.py tests/cluster/test_node_faults.py

# Telemetry-plane smoke: a traced query stitched across a real
# subprocess fleet (engine spans from every contacted node), PARTIAL
# traces naming missing shards, the SIGKILL -> breaker-open -> failover
# -> re-admission sequence asserted in the event journal, federation
# with a node down, plus the trace-context/event-journal unit tests.
cluster-obs-smoke:
	$(PYTHON) -m pytest -q tests/cluster/test_telemetry.py tests/observability/test_context.py tests/observability/test_events.py

# Cluster tracing overhead gate: traced vs untraced scatter/gather
# through a real in-process cluster must differ by <5% (and the
# stitched trace must cover every shard, federation every node).
bench-cluster-obs:
	cd benchmarks && $(PYTHON) bench_cluster_obs.py
	$(PYTHON) benchmarks/check_regression.py --cluster-obs BENCH_cluster_obs.json

# Crash-recovery gate: measure WAL replay throughput and hold it to the
# absolute floor in check_regression.py (RECOVERY_FLOOR_KEYS).
bench-recovery:
	cd benchmarks && $(PYTHON) bench_recovery.py
	$(PYTHON) benchmarks/check_regression.py --recovery BENCH_recovery.json

perf:
	$(PYTHON) -m pytest -q -m perf

torture:
	$(PYTHON) -m pytest -q -m torture

# Parallel-scan gate: run the backend bench, then assert identical
# candidate sets, the one-round-trip dispatch bound, and the >=2x
# speedup floor (or an explicit skip reason on hosts without cores).
bench-parallel:
	cd benchmarks && $(PYTHON) bench_parallel_scan.py
	$(PYTHON) benchmarks/check_regression.py --parallel BENCH_parallel_scan.json

# Index-churn gate: run the insert/delete churn bench, then assert
# every insert batch became visible through a delta load (never a full
# snapshot reload) and that per-batch refresh cost does not scale with
# total arena rows.
bench-churn:
	cd benchmarks && $(PYTHON) bench_index_churn.py
	$(PYTHON) benchmarks/check_regression.py --churn BENCH_index_churn.json

bench-throughput:
	cd benchmarks && $(PYTHON) bench_query_throughput.py

# Throughput regression gate: stash the committed baseline JSON (the
# bench overwrites BENCH_query_throughput.json at the repo root), rerun
# the bench, and fail on a >15% qps drop in any compared series.
bench-check:
	cp BENCH_query_throughput.json /tmp/BENCH_query_throughput.baseline.json
	cd benchmarks && $(PYTHON) bench_query_throughput.py
	$(PYTHON) benchmarks/check_regression.py \
		/tmp/BENCH_query_throughput.baseline.json BENCH_query_throughput.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
