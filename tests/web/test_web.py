"""Tests for the web interface (in-process and over HTTP)."""

import urllib.request

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor
from repro.web.webserver import WebApp, _LocalBackend, serve_web_background


@pytest.fixture()
def app():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(2)
    proc = CommandProcessor(engine)
    for i in range(12):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
        proc.register_attributes(oid, {"group": "a" if i < 6 else "b"})
    return WebApp(_LocalBackend(proc), attributes=proc.attributes)


class TestRoutes:
    def test_home(self, app):
        status, page = app.handle("/")
        assert status == 200
        assert "12 objects indexed" in page
        assert "compression_ratio" in page

    def test_query_route(self, app):
        status, page = app.handle("/query?id=0&top=5&method=brute_force_original")
        assert status == 200
        assert "results for object 0" in page
        assert "<table>" in page

    def test_query_missing_id_shows_home_with_message(self, app):
        status, page = app.handle("/query")
        assert status == 200
        assert "missing seed object id" in page

    def test_query_with_attr(self, app):
        status, page = app.handle("/query?id=0&attr=group:a")
        assert status == 200
        assert "group:a" in page

    def test_attrquery_route(self, app):
        status, page = app.handle("/attrquery?q=group:b")
        assert status == 200
        assert "6 objects match" in page

    def test_unknown_route_404(self, app):
        status, _page = app.handle("/nope")
        assert status == 404

    def test_error_page_on_bad_object(self, app):
        status, page = app.handle("/query?id=999")
        assert status == 500
        assert "error" in page

    def test_attributes_rendered(self, app):
        _status, page = app.handle("/query?id=0&top=3&method=brute_force_original")
        assert "group=" in page

    def test_custom_renderer(self, app):
        app.renderer = lambda oid, dist, attrs: f"<b>custom-{oid}</b>"
        _status, page = app.handle("/query?id=0&top=3&method=brute_force_original")
        assert "custom-" in page


class TestHTTPServer:
    def test_over_http(self, app):
        server = serve_web_background(app)
        host, port = server.server_address
        try:
            page = urllib.request.urlopen(f"http://{host}:{port}/").read().decode()
            assert "objects indexed" in page
            page = urllib.request.urlopen(
                f"http://{host}:{port}/query?id=1&top=3"
            ).read().decode()
            assert "results for object 1" in page
        finally:
            server.shutdown()
            server.server_close()

    def test_404_over_http(self, app):
        server = serve_web_background(app)
        host, port = server.server_address
        try:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"http://{host}:{port}/bogus")
            assert exc_info.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


class TestMetricsScrapeEndpoint:
    def test_metrics_txt_is_prometheus(self, app):
        import re

        app.handle("/query?id=0&top=3")
        status, body = app.handle("/metrics.txt")
        assert status == 200
        type_re = re.compile(
            r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
        )
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
            r"(nan|[+-]?(inf|\d+(\.\d+)?([eE][+-]?\d+)?))$"
        )
        lines = body.rstrip("\n").split("\n")
        assert lines
        for line in lines:
            assert type_re.match(line) or sample_re.match(line), line
        assert "# TYPE ferret_engine_queries counter" in lines

    def test_metrics_txt_content_type(self, app):
        assert app.content_type("/metrics.txt") == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        assert app.content_type("/metrics") == "text/plain; charset=utf-8"

    def test_home_links_scrape_endpoint(self, app):
        _status, page = app.handle("/")
        assert 'href="/metrics.txt"' in page

    def test_metrics_txt_over_http(self, app):
        import urllib.request

        server = serve_web_background(app)
        host, port = server.server_address
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics.txt"
            ) as resp:
                assert resp.headers["Content-Type"] == (
                    "text/plain; version=0.0.4; charset=utf-8"
                )
                body = resp.read().decode()
            assert "ferret_server_commands" in body
        finally:
            server.shutdown()
            server.server_close()
