"""Tests for the data-type specific web renderers."""

import numpy as np
import pytest

from repro.core import meta_from_dataset, SimilaritySearchEngine, SketchParams
from repro.web.renderers import (
    heatstrip_svg,
    make_audio_renderer,
    make_genomic_renderer,
    make_image_renderer,
    sparkline_svg,
    swatch_svg,
)


class TestSvgPrimitives:
    def test_sparkline_structure(self):
        svg = sparkline_svg(np.sin(np.linspace(0, 6, 40)))
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg

    def test_sparkline_constant_series(self):
        svg = sparkline_svg(np.zeros(10))
        assert "nan" not in svg

    def test_sparkline_short_series(self):
        assert "polyline" in sparkline_svg(np.array([1.0]))

    def test_heatstrip_sign_coding(self):
        svg = heatstrip_svg(np.array([2.0, -2.0]))
        # positive cell red-dominant, negative green-dominant
        assert "rgb(230,20,20)" in svg
        assert "rgb(20,230,20)" in svg

    def test_heatstrip_empty(self):
        assert heatstrip_svg(np.array([])) == ""

    def test_swatch_colors(self):
        svg = swatch_svg(np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]))
        assert "rgb(255,0,0)" in svg
        assert "rgb(0,0,255)" in svg


class TestEngineRenderers:
    def test_genomic_renderer(self, genomic_benchmark):
        from repro.datatypes.genomic import make_genomic_plugin

        meta = meta_from_dataset(genomic_benchmark.dataset)
        plugin = make_genomic_plugin(
            genomic_benchmark.expression.num_experiments, meta=meta
        )
        engine = SimilaritySearchEngine(plugin, SketchParams(128, meta, seed=0))
        for obj in genomic_benchmark.dataset:
            engine.insert(obj)
        render = make_genomic_renderer(engine)
        svg = render(0, 0.0, {})
        assert svg.startswith("<svg")
        assert svg.count("<rect") == genomic_benchmark.expression.num_experiments

    def test_audio_renderer(self, audio_benchmark):
        from repro.datatypes.audio import make_audio_plugin

        meta = meta_from_dataset(audio_benchmark.dataset)
        plugin = make_audio_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(128, meta, seed=0))
        for obj in audio_benchmark.dataset:
            engine.insert(obj)
        svg = make_audio_renderer(engine)(0, 0.0, {})
        assert "polyline" in svg

    def test_image_renderer(self, image_benchmark):
        from repro.datatypes.image import make_image_plugin

        plugin = make_image_plugin()
        engine = SimilaritySearchEngine(plugin, SketchParams(96, plugin.meta, seed=0))
        for obj in image_benchmark.dataset:
            engine.insert(obj)
        svg = make_image_renderer(engine)(0, 0.0, {})
        assert svg.count("<rect") >= 1

    def test_renderer_in_web_results_page(self, genomic_benchmark):
        from repro.datatypes.genomic import make_genomic_plugin
        from repro.server import CommandProcessor
        from repro.web.webserver import WebApp, _LocalBackend

        meta = meta_from_dataset(genomic_benchmark.dataset)
        plugin = make_genomic_plugin(
            genomic_benchmark.expression.num_experiments, meta=meta
        )
        engine = SimilaritySearchEngine(plugin, SketchParams(128, meta, seed=0))
        for obj in genomic_benchmark.dataset:
            engine.insert(obj)
        app = WebApp(
            _LocalBackend(CommandProcessor(engine)),
            renderer=make_genomic_renderer(engine),
        )
        status, page = app.handle("/query?id=0&top=3&method=brute_force_original")
        assert status == 200
        assert "<svg" in page


class TestExtensionRenderers:
    def test_sensor_renderer(self):
        from repro.datatypes.sensor import generate_sensor_benchmark, make_sensor_plugin
        from repro.web.renderers import make_sensor_renderer

        bench = generate_sensor_benchmark(num_sequences=3, subjects_per_sequence=2, seed=3)
        meta = meta_from_dataset(bench.dataset)
        plugin = make_sensor_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(64, meta, seed=0))
        for obj in bench.dataset:
            engine.insert(obj)
        svg = make_sensor_renderer(engine)(0, 0.0, {})
        assert "polyline" in svg

    def test_video_renderer(self):
        from repro.datatypes.video import generate_video_benchmark, make_video_plugin
        from repro.web.renderers import make_video_renderer

        bench = generate_video_benchmark(
            num_videos=2, renditions_per_video=2, num_distractors=2, seed=3
        )
        meta = meta_from_dataset(bench.dataset)
        plugin = make_video_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(64, meta, seed=0))
        for obj in bench.dataset:
            engine.insert(obj)
        svg = make_video_renderer(engine)(0, 0.0, {})
        assert svg.count("<rect") >= 1
