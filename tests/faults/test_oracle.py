"""The recovery oracle in isolation: prefix matching, durability
floors, and the shard-insert phrasing the node drills use."""

import pytest

from repro.faults import InvariantViolation, ShardLedger
from repro.faults.nodes import verify_shard_inserts
from repro.faults.oracle import apply_ops, check_durable_floor, match_prefix


def txn(tree, key, value):
    return [(tree, key, value)]


class TestApplyOps:
    def test_insert_and_overwrite(self):
        state = {}
        apply_ops(state, [("t", b"a", b"1"), ("t", b"a", b"2")])
        assert state == {"t": {b"a": b"2"}}

    def test_delete_missing_key_is_noop(self):
        state = {}
        apply_ops(state, [("t", b"gone", None)])
        assert state == {"t": {}}


class TestMatchPrefix:
    TXNS = [
        txn("t", b"a", b"1"),
        txn("t", b"b", b"2"),
        txn("t", b"c", b"3"),
    ]
    SEQ = [0, 1, 2]

    def test_empty_state_matches_empty_prefix(self):
        assert match_prefix({}, self.TXNS, self.SEQ) == 0

    def test_full_state_matches_full_sequence(self):
        recovered = {"t": {b"a": b"1", b"b": b"2", b"c": b"3"}}
        assert match_prefix(recovered, self.TXNS, self.SEQ) == 3

    def test_partial_state_matches_proper_prefix(self):
        recovered = {"t": {b"a": b"1", b"b": b"2"}}
        assert match_prefix(recovered, self.TXNS, self.SEQ) == 2

    def test_hole_in_sequence_is_a_violation(self):
        # a and c present but b missing: no prefix produces this.
        recovered = {"t": {b"a": b"1", b"c": b"3"}}
        with pytest.raises(InvariantViolation):
            match_prefix(recovered, self.TXNS, self.SEQ)

    def test_phantom_key_is_a_violation(self):
        recovered = {"t": {b"a": b"1", b"z": b"9"}}
        with pytest.raises(InvariantViolation):
            match_prefix(recovered, self.TXNS, self.SEQ)

    def test_in_flight_extends_one_past(self):
        recovered = {"t": {b"a": b"1", b"b": b"2", b"c": b"3"}}
        # Only a and b were acked; c's ack never returned — legal.
        assert (
            match_prefix(recovered, self.TXNS, [0, 1], in_flight=2) == 3
        )

    def test_longest_match_wins_when_a_txn_is_a_noop(self):
        # Overwriting a key with its current value makes consecutive
        # prefixes indistinguishable; the oracle must report the longer
        # one so durability floors pass.
        txns = [txn("t", b"a", b"1"), txn("t", b"a", b"1")]
        recovered = {"t": {b"a": b"1"}}
        assert match_prefix(recovered, txns, [0, 1]) == 2

    def test_fully_deleted_tree_equals_absent_tree(self):
        txns = [txn("t", b"a", b"1"), txn("t", b"a", None)]
        assert match_prefix({}, txns, [0, 1]) == 2
        assert match_prefix({"t": {}}, txns, [0, 1]) == 2


class TestDurableFloor:
    def test_floor_met(self):
        check_durable_floor(3, 3)
        check_durable_floor(4, 3)

    def test_floor_violated(self):
        with pytest.raises(InvariantViolation):
            check_durable_floor(2, 3)


class TestShardInserts:
    def test_all_visible_passes(self):
        assert verify_shard_inserts(0, [3, 6, 9], [3, 6, 9]) == 3

    def test_lost_suffix_fails_when_custody_never_lapsed(self):
        with pytest.raises(InvariantViolation):
            verify_shard_inserts(0, [3, 6, 9], [3])

    def test_lost_suffix_legal_when_custody_lapsed(self):
        matched = verify_shard_inserts(
            0, [3, 6, 9], [3], require_all=False
        )
        assert matched == 1

    def test_lost_middle_is_always_a_violation(self):
        with pytest.raises(InvariantViolation):
            verify_shard_inserts(0, [3, 6, 9], [3, 9], require_all=False)

    def test_in_flight_insert_may_be_visible(self):
        assert (
            verify_shard_inserts(0, [3, 6], [3, 6, 9], in_flight=9) == 3
        )


class TestShardLedger:
    def test_routes_acks_by_shard(self):
        ledger = ShardLedger(3)
        for oid in (30, 31, 32, 33):
            ledger.record_ack(oid)
        assert ledger.acked == {0: [30, 33], 1: [31], 2: [32]}

    def test_verify_all_shards(self):
        ledger = ShardLedger(3)
        for oid in (30, 31, 32, 33):
            ledger.record_ack(oid)
        matched = ledger.verify([30, 31, 32, 33], undisturbed_shards=[0, 1, 2])
        assert matched == {0: 2, 1: 1, 2: 1}

    def test_disturbed_shard_may_lose_a_suffix(self):
        ledger = ShardLedger(3)
        for oid in (30, 33, 36):
            ledger.record_ack(oid)  # all shard 0
        # Shard 0 lost custody at some point: losing 36 is legal...
        assert ledger.verify([30, 33], undisturbed_shards=[]) == {0: 2}
        # ...but not when a replica was alive throughout.
        with pytest.raises(InvariantViolation):
            ledger.verify([30, 33], undisturbed_shards=[0])

    def test_in_flight_routed_to_its_shard(self):
        ledger = ShardLedger(3)
        ledger.record_ack(30)
        ledger.record_ack(31)
        ledger.in_flight = 33  # shard 0; ack never returned
        matched = ledger.verify([30, 31, 33], undisturbed_shards=[0, 1])
        assert matched == {0: 2, 1: 1}
