"""SIGKILL-mid-compaction torture: the maintenance PR's crash drill.

Spawns :mod:`repro.faults.churn_drill` as a real child process —
aggressive background arena compaction plus sustained insert/remove
churn against write-through metadata — kills it with SIGKILL at an
operation-count trigger, and verifies the reopened store through the
recovery oracle:

* the recovered object set (and every object's *contents*) equals the
  state after a prefix of the acknowledged ops, optionally extended by
  the one in-flight op (atomicity);
* the prefix covers every acknowledged op (durability — the drill
  fsyncs per commit);
* the rebuilt arena is internally consistent and answers queries
  bit-identically to a fresh engine built from the surviving objects
  (the "consistent, query-identical arena" acceptance criterion).

Opt in with ``pytest -m torture``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.faults.churn_drill import DIM, build_engine, drill_signature
from repro.faults.oracle import check_durable_floor, match_prefix
from repro.metadata.serialization import decode_object, encode_object, object_key

pytestmark = pytest.mark.torture

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _digest(signature) -> bytes:
    """Content digest in the storage codec's precision.

    Features persist as float32 (see metadata/serialization.py), so the
    digest compares what the store *promises* to keep — the f32
    round-trip — not the transient f64 the child generated."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(signature.features, dtype="<f4").tobytes())
    h.update(np.ascontiguousarray(signature.weights, dtype="<f8").tobytes())
    return h.digest()


def _run_drill_until_killed(directory: str, seed: int, kill_after_lines: int):
    """Spawn the drill child, SIGKILL it once the ledger reaches
    ``kill_after_lines`` announcements, return the captured ledger."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.faults.churn_drill", directory, str(seed)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=_REPO,
    )
    lines: list = []

    def pump():
        for raw in proc.stdout:
            lines.append(raw.decode().strip())

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()
    deadline = time.monotonic() + 60.0
    while len(lines) < kill_after_lines:
        if proc.poll() is not None:
            stderr = proc.stderr.read().decode()
            raise AssertionError(f"drill child died on its own:\n{stderr}")
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError(
                f"drill produced only {len(lines)} lines in 60s"
            )
        time.sleep(0.002)
    proc.kill()
    proc.wait()
    reader.join(timeout=10.0)
    return lines


def _parse_ledger(lines):
    """Ledger -> (ops, acked indices, in-flight index or None)."""
    ops = []
    acked = []
    pending = None
    for line in lines:
        phase, op, oid = line.split()
        oid = int(oid)
        if phase == "START":
            assert pending is None, f"two ops in flight at once: {line}"
            pending = (op, oid)
            ops.append((op, oid))
        else:
            assert phase == "ACK" and pending == (op, oid), line
            acked.append(len(ops) - 1)
            pending = None
    in_flight = len(ops) - 1 if pending is not None else None
    return ops, acked, in_flight


def _fresh_engine_from(seed: int, oids) -> SimilaritySearchEngine:
    """From-scratch engine holding exactly what recovery should hold.

    Mirrors the drill child's write path: sketches are computed from the
    original f64 features (that's what the child stored), while the
    signature itself goes through the storage codec's f32 round-trip
    (that's what recovery decodes)."""
    meta = FeatureMeta(DIM, np.zeros(DIM), np.ones(DIM))
    engine = SimilaritySearchEngine(
        DataTypePlugin("drill", meta),
        sketch_params=SketchParams(64, meta, seed=7),
    )
    for oid in sorted(oids):
        original = drill_signature(seed, oid)
        stored = decode_object(encode_object(original), oid)
        engine.insert(
            stored, _sketches=engine.sketcher.sketch_many(original.features)
        )
    return engine


@pytest.mark.parametrize("round_no", range(4))
def test_sigkill_mid_compaction_recovers_consistent_arena(tmp_path, round_no):
    seed = 1000 + round_no
    directory = str(tmp_path / f"drill{round_no}")
    # Spread the kill points across compaction cadences: early rounds die
    # during warm-up churn, later ones deep into compaction cycles.
    kill_after = 40 + round_no * 170
    lines = _run_drill_until_killed(directory, seed, kill_after)
    ops, acked, in_flight = _parse_ledger(lines)
    assert acked, "no acknowledged ops before the kill"

    # -- oracle: recovered state is an acked prefix (+ the in-flight op)
    txns = []
    for op, oid in ops:
        value = _digest(drill_signature(seed, oid)) if op == "insert" else None
        txns.append([("objects", object_key(oid), value)])

    recovered = build_engine(directory)
    try:
        loaded = recovered.load()
        recovered_state = {
            "objects": {
                object_key(oid): _digest(sig)
                for oid, sig in recovered._objects.items()
            }
        }
        matched = match_prefix(recovered_state, txns, acked, in_flight)
        # fsync-per-commit: every acknowledged op was promised durable.
        check_durable_floor(matched, len(acked))

        # -- arena consistency after the rebuild
        owners, sketches = recovered._store.snapshot()
        info = recovered._store.arena_info()
        assert loaded == len(recovered._objects)
        assert info["dead_rows"] == 0
        assert info["rows"] == owners.shape[0] == sketches.shape[0]
        assert set(owners.tolist()) == set(recovered._objects)
        for oid, sig in recovered._objects.items():
            assert int((owners == oid).sum()) == sig.num_segments

        # -- query-identical to a from-scratch engine over the survivors
        fresh = _fresh_engine_from(seed, recovered._objects)
        try:
            probe_rng = np.random.default_rng(seed + 9)
            for oid in list(sorted(recovered._objects))[:3]:
                probe = drill_signature(seed, oid)
                a = [
                    (r.object_id, r.distance)
                    for r in recovered.query(probe, top_k=5)
                ]
                b = [
                    (r.object_id, r.distance)
                    for r in fresh.query(probe, top_k=5)
                ]
                assert a == b
            for _ in range(3):
                segs = int(probe_rng.integers(1, 4))
                from repro.core import ObjectSignature

                probe = ObjectSignature(
                    probe_rng.random((segs, DIM)), probe_rng.random(segs) + 0.1
                )
                a = [
                    (r.object_id, r.distance)
                    for r in recovered.query(probe, top_k=5)
                ]
                b = [
                    (r.object_id, r.distance)
                    for r in fresh.query(probe, top_k=5)
                ]
                assert a == b
        finally:
            fresh.close()
    finally:
        recovered.close()
        recovered.metadata.close()
