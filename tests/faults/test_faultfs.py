"""Unit tests for the fault-injection framework itself.

The torture tests are only as trustworthy as the injector: these pin
down the op-counter addressing, each fault kind's mechanics, and the
power-loss truncation semantics on bare files, without a KVStore in the
loop.
"""

import errno
import os

import pytest

from repro.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
)


def test_op_counter_spans_files_and_operations(tmp_path):
    fs = FaultyFilesystem(FaultPlan())
    a = fs.open(str(tmp_path / "a"), "ab")
    b = fs.open(str(tmp_path / "b"), "ab")
    a.write(b"one")  # op 0
    b.write(b"two")  # op 1
    fs.fsync(a)  # op 2
    a.write(b"three")  # op 3
    assert fs.op_count == 4
    assert fs.fsync_log == [(2, str(tmp_path / "a"))]


def test_crash_at_write_stops_before_data_lands(tmp_path):
    path = str(tmp_path / "f")
    fs = FaultyFilesystem(FaultPlan.crash_at(1))
    f = fs.open(path, "ab")
    f.write(b"first")  # op 0 — survives
    with pytest.raises(SimulatedCrash) as exc_info:
        f.write(b"second")  # op 1 — never happens
    assert exc_info.value.op_index == 1
    fs.simulate_power_loss()
    with open(path, "rb") as check:
        assert check.read() == b"first"
    assert fs.plan.triggered and fs.plan.triggered[0].kind is FaultKind.CRASH


def test_simulated_crash_is_not_an_exception():
    # `except Exception` in code under test must not swallow a power cut.
    assert not issubclass(SimulatedCrash, Exception)
    assert issubclass(SimulatedCrash, BaseException)


def test_torn_write_keeps_prefix(tmp_path):
    path = str(tmp_path / "f")
    fs = FaultyFilesystem(FaultPlan.torn_write_at(0, keep_fraction=0.5))
    f = fs.open(path, "ab")
    with pytest.raises(SimulatedCrash):
        f.write(b"12345678")
    fs.simulate_power_loss()
    with open(path, "rb") as check:
        assert check.read() == b"1234"


def test_bitflip_corrupts_exactly_one_bit(tmp_path):
    path = str(tmp_path / "f")
    fs = FaultyFilesystem(FaultPlan.bitflip_at(0, bit_index=9))
    f = fs.open(path, "ab")
    f.write(bytes(4))  # silent corruption: the write "succeeds"
    f.close()
    with open(path, "rb") as check:
        data = check.read()
    assert data == bytes([0, 1 << 1, 0, 0])  # bit 9 = byte 1, bit 1


def test_error_fault_raises_oserror_without_writing(tmp_path):
    path = str(tmp_path / "f")
    fs = FaultyFilesystem(FaultPlan.error_at(0, err=errno.ENOSPC))
    f = fs.open(path, "ab")
    with pytest.raises(OSError) as exc_info:
        f.write(b"data")
    assert exc_info.value.errno == errno.ENOSPC
    f.close()
    assert os.path.getsize(path) == 0


def test_dropped_fsync_plus_power_loss_loses_tail(tmp_path):
    path = str(tmp_path / "f")
    plan = FaultPlan.drop_fsync_from(2)
    fs = FaultyFilesystem(plan)
    f = fs.open(path, "ab")
    f.write(b"durable")  # op 0
    fs.fsync(f)  # op 1 — real
    f.write(b"volatile")  # op 2
    fs.fsync(f)  # op 3 — silently dropped
    fs.simulate_power_loss()
    with open(path, "rb") as check:
        assert check.read() == b"durable"
    assert any(t.kind is FaultKind.DROP_FSYNC for t in plan.triggered)


def test_power_loss_without_lose_unsynced_keeps_everything(tmp_path):
    path = str(tmp_path / "f")
    fs = FaultyFilesystem(FaultPlan(lose_unsynced=False))
    f = fs.open(path, "ab")
    f.write(b"never-synced")
    fs.simulate_power_loss()
    with open(path, "rb") as check:
        assert check.read() == b"never-synced"


def test_power_loss_truncates_closed_append_files(tmp_path):
    # The store's close() may have closed the handle before the "crash";
    # truncation must still apply because it works on the path.
    path = str(tmp_path / "f")
    fs = FaultyFilesystem(FaultPlan(lose_unsynced=True))
    f = fs.open(path, "ab")
    f.write(b"sync")
    fs.fsync(f)
    f.write(b"-lost")
    f.close()
    fs.simulate_power_loss()
    with open(path, "rb") as check:
        assert check.read() == b"sync"


def test_plan_random_is_deterministic():
    a = FaultPlan.random(seed=7, total_ops=100, n_faults=3)
    b = FaultPlan.random(seed=7, total_ops=100, n_faults=3)
    flat_a = sorted((f.kind.value, f.op_index) for fl in a._by_op.values() for f in fl)
    flat_b = sorted((f.kind.value, f.op_index) for fl in b._by_op.values() for f in fl)
    assert flat_a == flat_b
    assert a.lose_unsynced == b.lose_unsynced


def test_plan_drop_ranges_are_half_open():
    plan = FaultPlan().drop_fsyncs(5, 8)
    assert not plan.drops_fsync(4)
    assert plan.drops_fsync(5)
    assert plan.drops_fsync(7)
    assert not plan.drops_fsync(8)


def test_multiple_faults_can_share_an_op():
    plan = FaultPlan([Fault(FaultKind.BITFLIP, 3), Fault(FaultKind.CRASH, 3)])
    kinds = [f.kind for f in plan.faults_at(3)]
    assert kinds == [FaultKind.BITFLIP, FaultKind.CRASH]
