"""Prometheus exposition, histogram quantiles, and cross-process
snapshot/delta/merge semantics of the metrics registry."""

import math
import re

import pytest

from repro.observability.metrics import (
    MetricsRegistry,
    delta_snapshots,
)

# Prometheus text-format grammar (the subset the renderer emits):
# either a `# TYPE <name> <kind>` comment or `<name>[{le="..."}] <value>`.
_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
    r"(nan|[+-]?(inf|\d+(\.\d+)?([eE][+-]?\d+)?))$"
)


def _assert_prometheus_parses(lines):
    assert lines, "exposition must not be empty"
    for line in lines:
        assert _TYPE_RE.match(line) or _SAMPLE_RE.match(line), (
            f"not valid Prometheus text format: {line!r}"
        )


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRenderPrometheus:
    def test_counter_gauge_histogram(self, registry):
        registry.counter("engine.queries").inc(3)
        registry.gauge("parallel.arena_rows").set(120)
        h = registry.histogram("engine.query_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)  # beyond the last bound: only count/sum
        lines = registry.render_prometheus()
        _assert_prometheus_parses(lines)
        assert "# TYPE ferret_engine_queries counter" in lines
        assert "ferret_engine_queries 3" in lines
        assert "# TYPE ferret_parallel_arena_rows gauge" in lines
        assert "ferret_parallel_arena_rows 120" in lines
        assert "# TYPE ferret_engine_query_seconds histogram" in lines
        assert 'ferret_engine_query_seconds_bucket{le="0.1"} 1' in lines
        assert 'ferret_engine_query_seconds_bucket{le="1"} 2' in lines
        assert 'ferret_engine_query_seconds_bucket{le="+Inf"} 3' in lines
        assert "ferret_engine_query_seconds_count 3" in lines

    def test_prefix_filter_uses_original_names(self, registry):
        registry.counter("engine.queries").inc()
        registry.counter("server.commands").inc()
        lines = registry.render_prometheus(prefix="engine.")
        assert any("engine_queries" in l for l in lines)
        assert not any("server_commands" in l for l in lines)

    def test_name_sanitization(self, registry):
        registry.counter("worker.0.scan.requests").inc()
        lines = registry.render_prometheus()
        assert "ferret_worker_0_scan_requests 1" in lines
        _assert_prometheus_parses(lines)

    def test_line_prefix_filter_on_render(self, registry):
        registry.counter("a.x").inc()
        registry.counter("b.y").inc(2)
        assert registry.render(prefix="b.") == ["b.y 2"]


class TestHistogramQuantile:
    def test_empty_is_nan(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))

    def test_interpolation_within_bucket(self, registry):
        h = registry.histogram("h", buckets=(10.0,))
        for _ in range(100):
            h.observe(5.0)
        # all mass in [0, 10): p50 interpolates to the bucket midpoint
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_monotone_and_clamped(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert qs == sorted(qs)
        # observations above the last bound clamp to it
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_bounds_validation(self, registry):
        h = registry.histogram("h")
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)


class TestSnapshotDeltaMerge:
    def _activity(self, registry, scans, seconds):
        registry.counter("scans").inc(scans)
        h = registry.histogram("scan_seconds", buckets=(0.1, 1.0))
        for s in seconds:
            h.observe(s)
        registry.gauge("rows").set(scans * 10)

    def test_idle_worker_ships_empty_delta(self, registry):
        self._activity(registry, 2, [0.05])
        snap = registry.snapshot()
        assert delta_snapshots(snap, registry.snapshot()) == {}

    def test_delta_only_contains_changes(self, registry):
        self._activity(registry, 1, [0.05])
        before = registry.snapshot()
        registry.counter("scans").inc(4)
        delta = delta_snapshots(before, registry.snapshot())
        assert delta == {"scans": ("c", 4)}

    def test_merge_namespaces_and_accumulates(self, registry):
        worker = MetricsRegistry()
        self._activity(worker, 3, [0.05, 0.5])
        delta = delta_snapshots({}, worker.snapshot())
        registry.merge_snapshot(delta, prefix="worker.0.")
        registry.merge_snapshot(delta, prefix="worker.0.")
        assert registry.value("worker.0.scans") == 6
        h = registry.get("worker.0.scan_seconds")
        assert h.count == 4
        assert registry.value("worker.0.rows") == 30  # gauge: last wins

    def test_histogram_merge_associative_and_commutative(self):
        """The property worker aggregation relies on: folding worker
        deltas in any order / grouping yields identical series."""
        workers = []
        for seed, observations in enumerate(
            [(0.05, 0.2), (0.9, 1.5, 0.01), (0.3,)]
        ):
            w = MetricsRegistry()
            self._activity(w, seed + 1, observations)
            workers.append(delta_snapshots({}, w.snapshot()))

        def fold(order):
            parent = MetricsRegistry()
            for idx in order:
                parent.merge_snapshot(workers[idx], prefix="workers.")
            # gauges are last-writer-wins by design, so only counters
            # and histograms are order-independent
            return [
                l for l in parent.render() if not l.startswith("workers.rows")
            ]

        left_to_right = fold([0, 1, 2])
        assert fold([2, 1, 0]) == left_to_right
        assert fold([1, 2, 0]) == left_to_right
        # associativity: pre-combining two deltas then folding the third
        pre = MetricsRegistry()
        pre.merge_snapshot(workers[0])
        pre.merge_snapshot(workers[1])
        combined = delta_snapshots({}, pre.snapshot())
        parent = MetricsRegistry()
        parent.merge_snapshot(combined, prefix="workers.")
        parent.merge_snapshot(workers[2], prefix="workers.")
        counter_lines = [
            l for l in parent.render() if not l.startswith("workers.rows")
        ]
        assert counter_lines == left_to_right

    def test_merge_bucket_bounds_mismatch_raises(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            registry.merge_snapshot({"h": ("h", (5.0,), (1,), 1, 0.5)})

    def test_merge_respects_disabled_registry(self, registry):
        registry.disable()
        registry.merge_snapshot({"scans": ("c", 5)})
        registry.enable()
        assert registry.value("scans") == 0

    def test_deltas_compose(self, registry):
        """delta(a->b) + delta(b->c) folded equals delta(a->c) folded."""
        a = registry.snapshot()
        self._activity(registry, 2, [0.05])
        b = registry.snapshot()
        registry.counter("scans").inc(3)
        c = registry.snapshot()
        stepwise = MetricsRegistry()
        stepwise.merge_snapshot(delta_snapshots(a, b))
        stepwise.merge_snapshot(delta_snapshots(b, c))
        direct = MetricsRegistry()
        direct.merge_snapshot(delta_snapshots(a, c))
        assert stepwise.render() == direct.render()
