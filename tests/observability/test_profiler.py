"""Unit tests for the dependency-free sampling profiler."""

import re
import sys
import threading
import time

import pytest

from repro.observability.profiler import SamplingProfiler, collapse_frame

_COLLAPSED_RE = re.compile(r"^[^ ]+(;[^ ]+)* \d+$")


class TestCollapseFrame:
    def test_root_first_and_depth_cap(self):
        frame = sys._getframe()
        stack = collapse_frame(frame)
        assert stack[-1].endswith(":test_root_first_and_depth_cap")
        assert all(":" in entry for entry in stack)
        assert len(collapse_frame(frame, max_depth=1)) == 1


class TestSampleOnce:
    def test_captures_calling_thread(self):
        p = SamplingProfiler()
        assert p.sample_once() >= 1
        stats = p.stats()
        assert stats["samples"] == 1
        assert stats["unique_stacks"] >= 1
        lines = p.collapsed()
        assert lines
        for line in lines:
            assert _COLLAPSED_RE.match(line), line
        # this test function is on the captured stack somewhere
        assert any("test_captures_calling_thread" in line for line in lines)

    def test_counts_aggregate_not_grow(self):
        p = SamplingProfiler()

        def busy():
            # one deterministic stack shape, sampled repeatedly
            for _ in range(3):
                p.sample_once()

        busy()
        assert p.stats()["samples"] == 3
        # identical stacks collapse into counts instead of new entries
        total = sum(int(line.rsplit(" ", 1)[1]) for line in p.collapsed())
        assert total >= 3

    def test_unique_stack_cap_drops_new_stacks(self):
        p = SamplingProfiler(max_unique_stacks=1)
        p.sample_once()

        def deeper():
            p.sample_once()

        deeper()  # different stack: over the cap, must be dropped
        stats = p.stats()
        assert stats["unique_stacks"] == 1
        assert stats["dropped"] >= 1

    def test_capture_slow_counts(self):
        p = SamplingProfiler()
        assert p.capture_slow() >= 1
        assert p.stats()["slow_captures"] == 1

    def test_clear(self):
        p = SamplingProfiler()
        p.capture_slow()
        p.clear()
        stats = p.stats()
        assert stats["samples"] == 0
        assert stats["unique_stacks"] == 0
        assert stats["slow_captures"] == 0
        assert p.collapsed() == []

    def test_collapsed_limit(self):
        p = SamplingProfiler()
        p.sample_once()
        assert len(p.collapsed(limit=0)) == 0


class TestContinuousSampling:
    def test_start_sample_stop(self):
        p = SamplingProfiler(interval=0.001)
        assert p.start()
        assert not p.start()  # idempotent
        deadline = time.monotonic() + 2.0
        while p.stats()["samples"] < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert p.stats()["samples"] >= 3
        assert p.running
        assert p.stop()
        assert not p.stop()  # idempotent
        assert not p.running

    def test_sampler_thread_excludes_itself(self):
        p = SamplingProfiler(interval=0.001)
        p.start()
        deadline = time.monotonic() + 2.0
        while not p.collapsed() and time.monotonic() < deadline:
            time.sleep(0.005)
        p.stop()
        for line in p.collapsed():
            assert "_run" not in line.split(" ")[0].split(";")[-1]

    def test_samples_other_threads(self):
        p = SamplingProfiler()
        release = threading.Event()

        def parked_thread_body():
            release.wait(5.0)

        t = threading.Thread(target=parked_thread_body)
        t.start()
        try:
            time.sleep(0.05)
            p.sample_once()
        finally:
            release.set()
            t.join()
        assert any(
            "parked_thread_body" in line for line in p.collapsed()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_unique_stacks=0)
