"""Event-journal unit tests: total order, bounds, wire rendering.

The journal's one hard promise is a **provable total order**: sequence
numbers are assigned under the same lock that appends the entry, so
"the breaker opened before the failover" is a fact, not a wall-clock
guess.  The concurrency test hammers one journal from many threads and
asserts the order survives: no duplicate or missing sequence numbers,
retained entries sorted, and every thread's own records appearing in
its call order.
"""

import threading

import pytest

from repro.observability import metrics as _metrics
from repro.observability.events import (
    Event,
    EventLog,
    get_event_log,
    set_event_log,
)


class TestEvent:
    def test_line_is_stable_and_sorted(self):
        event = Event(7, 1754600000.5, "failover", {"shard": 1, "backend": 2})
        assert event.line() == "7 1754600000.500 failover backend=2 shard=1"

    def test_line_without_fields(self):
        assert Event(0, 1.0, "node_kill").line() == "0 1.000 node_kill"


class TestEventLog:
    def test_sequences_are_monotonic_and_dense(self):
        journal = EventLog(capacity=16)
        for i in range(5):
            journal.record("tick", n=i)
        assert [e.seq for e in journal.tail()] == [0, 1, 2, 3, 4]
        assert journal.total_recorded == 5

    def test_bounded_with_surviving_sequence(self):
        journal = EventLog(capacity=4)
        for i in range(10):
            journal.record("tick", n=i)
        retained = journal.tail()
        assert len(journal) == 4
        assert [e.seq for e in retained] == [6, 7, 8, 9]
        # The gap between 0 and the first retained seq = history lost.
        assert journal.total_recorded == 10

    def test_tail_and_since(self):
        journal = EventLog()
        for i in range(6):
            journal.record("tick", n=i)
        assert [e.fields["n"] for e in journal.tail(2)] == [4, 5]
        assert journal.tail(0) == []
        assert [e.seq for e in journal.since(3)] == [4, 5]
        assert journal.since(99) == []

    def test_clear_keeps_counting(self):
        journal = EventLog()
        journal.record("tick")
        journal.clear()
        assert len(journal) == 0
        assert journal.record("tock").seq == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_record_counts_metric(self):
        counter = _metrics.counter("events.recorded")
        before = counter.value
        EventLog().record("tick")
        assert counter.value == before + 1

    def test_concurrent_recorders_keep_total_order(self):
        threads_n, per_thread = 8, 50
        journal = EventLog(capacity=threads_n * per_thread)
        barrier = threading.Barrier(threads_n)

        def worker(tid):
            barrier.wait()
            for i in range(per_thread):
                journal.record("flip", thread=tid, n=i)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        entries = journal.tail()
        assert journal.total_recorded == threads_n * per_thread
        seqs = [e.seq for e in entries]
        # Dense, duplicate-free, sorted: one total order for the run.
        assert seqs == list(range(threads_n * per_thread))
        # Each thread's own events appear in its call order.
        for tid in range(threads_n):
            ns = [e.fields["n"] for e in entries if e.fields["thread"] == tid]
            assert ns == list(range(per_thread))


class TestModuleJournal:
    def test_set_event_log_swaps_and_restores(self):
        replacement = EventLog()
        previous = set_event_log(replacement)
        try:
            assert get_event_log() is replacement
            get_event_log().record("tick")
            assert replacement.total_recorded == 1
        finally:
            assert set_event_log(previous) is replacement
        assert get_event_log() is previous
