"""Regression tests for the narrowed exception handlers.

Each formerly-broad ``except Exception`` site now absorbs only the
specific failures it exists for (and counts them in an
``errors_absorbed.*`` metric); everything else — a TypeError from a
plug-in bug, an arithmetic error in a handler — must propagate.  These
tests pin both halves of that contract per site.
"""

import os

import numpy as np
import pytest

from repro.acquisition import DirectoryScanner
from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.core.parallel import ParallelConfig, ParallelScanError
from repro.observability import metrics as _metrics
from repro.server.client import ClientError
from repro.storage.errors import StorageError
from repro.storage.wal import WriteAheadLog
from repro.web.webserver import WebApp


def _value(name):
    return _metrics.get_registry().value(name)


# ---------------------------------------------------------------------------
# acquisition/scanner.scan_once: a bad file fails that file, a bug fails loud
# ---------------------------------------------------------------------------
class _BoomPlugin:
    @staticmethod
    def make_engine(exc):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))

        def extract(path):
            raise exc

        plugin = DataTypePlugin("npy", meta, seg_extract=extract)
        return SimilaritySearchEngine(plugin, SketchParams(64, meta, seed=0))


def _stage_stable_file(tmp_path):
    path = os.path.join(str(tmp_path), "obj.npy")
    np.save(path, np.random.default_rng(0).random((2, 4)))
    return path


class TestScannerNarrowing:
    def test_bad_file_absorbed_and_counted(self, tmp_path):
        engine = _BoomPlugin.make_engine(ValueError("malformed file"))
        scanner = DirectoryScanner(engine, str(tmp_path), extensions=(".npy",))
        path = _stage_stable_file(tmp_path)
        scanner.scan_once()  # first sighting: size not yet stable
        before = _value("errors_absorbed.acquisition.import")
        report = scanner.scan_once()
        assert path in report.failed
        assert "ValueError" in report.failed[path]
        assert _value("errors_absorbed.acquisition.import") == before + 1

    def test_storage_error_absorbed(self, tmp_path):
        engine = _BoomPlugin.make_engine(StorageError("disk full"))
        scanner = DirectoryScanner(engine, str(tmp_path), extensions=(".npy",))
        path = _stage_stable_file(tmp_path)
        scanner.scan_once()
        report = scanner.scan_once()
        assert path in report.failed

    def test_foreign_exception_propagates(self, tmp_path):
        engine = _BoomPlugin.make_engine(TypeError("plug-in bug"))
        scanner = DirectoryScanner(engine, str(tmp_path), extensions=(".npy",))
        _stage_stable_file(tmp_path)
        scanner.scan_once()
        with pytest.raises(TypeError):
            scanner.scan_once()


# ---------------------------------------------------------------------------
# web/webserver.WebApp.handle: request failures -> 500, bugs -> propagate
# ---------------------------------------------------------------------------
class _RaisingBackend:
    def __init__(self, exc):
        self.exc = exc

    def send(self, line):
        raise self.exc


class TestWebAppNarrowing:
    def test_client_error_becomes_500(self):
        app = WebApp(_RaisingBackend(ClientError("server gone")))
        before = _value("errors_absorbed.web.handle")
        status, body = app.handle("/")
        assert status == 500
        assert "server gone" in body
        assert _value("errors_absorbed.web.handle") == before + 1

    def test_value_error_becomes_500(self):
        app = WebApp(_RaisingBackend(ValueError("bad parameter")))
        status, _ = app.handle("/query?id=1")
        assert status == 500

    def test_foreign_exception_propagates(self):
        app = WebApp(_RaisingBackend(ZeroDivisionError("handler bug")))
        with pytest.raises(ZeroDivisionError):
            app.handle("/")


# ---------------------------------------------------------------------------
# engine._filter_candidates pool path: infrastructure failures fall back
# serially; anything else is a scan bug and propagates
# ---------------------------------------------------------------------------
class _DummyPool:
    loaded_epoch = 0

    def close(self):
        pass


def _filtering_engine():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta),
        SketchParams(64, meta, seed=0),
        parallel=ParallelConfig(num_workers=2, min_segments=1),
    )
    rng = np.random.default_rng(7)
    for _ in range(12):
        engine.insert(ObjectSignature(rng.random((2, 4)), [1.0, 1.0]))
    return engine


class TestEnginePoolNarrowing:
    def test_pool_failure_falls_back_and_counts(self, monkeypatch):
        engine = _filtering_engine()
        monkeypatch.setattr(engine, "_ensure_pool", lambda backend: _DummyPool())

        def boom(*a, **k):
            raise ParallelScanError("worker died")

        monkeypatch.setattr("repro.core.engine.parallel_filter_candidates", boom)
        reasons = []
        engine.on_parallel_fallback = reasons.append
        before_fb = _value("engine.pool_fallbacks")
        before_abs = _value("errors_absorbed.engine.pool_scan")
        results = engine.query_by_id(0, top_k=5, exclude_self=True)
        assert len(results) == 5  # the serial fallback still answered
        assert _value("engine.pool_fallbacks") == before_fb + 1
        assert _value("errors_absorbed.engine.pool_scan") == before_abs + 1
        assert reasons and "worker died" in reasons[0]

    def test_foreign_exception_propagates(self, monkeypatch):
        engine = _filtering_engine()
        monkeypatch.setattr(engine, "_ensure_pool", lambda backend: _DummyPool())

        def boom(*a, **k):
            raise TypeError("scan bug")

        monkeypatch.setattr("repro.core.engine.parallel_filter_candidates", boom)
        with pytest.raises(TypeError):
            engine.query_by_id(0, top_k=5, exclude_self=True)

    def test_broken_fallback_observer_surfaces(self, monkeypatch):
        """The fallback callback is no longer swallowed: a broken
        observer is a caller bug and must raise, not vanish."""
        engine = _filtering_engine()
        monkeypatch.setattr(engine, "_ensure_pool", lambda backend: _DummyPool())

        def boom(*a, **k):
            raise ParallelScanError("worker died")

        monkeypatch.setattr("repro.core.engine.parallel_filter_candidates", boom)

        def broken_observer(reason):
            raise RuntimeError("observer bug")

        engine.on_parallel_fallback = broken_observer
        with pytest.raises(RuntimeError, match="observer bug"):
            engine.query_by_id(0, top_k=5, exclude_self=True)


# ---------------------------------------------------------------------------
# storage/wal: only an I/O failure of the repair truncate latches the log
# broken; a foreign exception propagates with the log still usable
# ---------------------------------------------------------------------------
class _TruncateRaises:
    """File proxy whose truncate raises a chosen exception."""

    def __init__(self, inner, exc):
        self._inner = inner
        self._exc = exc

    def truncate(self, size):
        raise self._exc

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestWalTruncateNarrowing:
    def _wal_with_bytes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), seq=0, sync_policy="none")
        from repro.storage.wal import REC_BEGIN, REC_COMMIT, WalRecord

        wal.append(WalRecord(REC_BEGIN, 1))
        wal.append(WalRecord(REC_COMMIT, 1))
        return wal

    def test_os_error_latches_broken(self, tmp_path):
        wal = self._wal_with_bytes(tmp_path)
        wal._file = _TruncateRaises(wal._file, OSError("EIO"))
        before = _value("wal.broken")
        with pytest.raises(OSError):
            wal.truncate_to(0)
        assert wal.broken
        assert _value("wal.broken") == before + 1
        with pytest.raises(StorageError):
            wal.truncate_to(0)  # refuses while broken

    def test_foreign_exception_propagates_without_latching(self, tmp_path):
        wal = self._wal_with_bytes(tmp_path)
        real_file = wal._file
        wal._file = _TruncateRaises(real_file, RuntimeError("rollback bug"))
        with pytest.raises(RuntimeError):
            wal.truncate_to(0)
        # The log did NOT latch broken for a non-I/O bug: it stays usable.
        assert not wal.broken
        wal._file = real_file
        wal.truncate_to(0)
        assert wal.size == 0
        wal.close()
