"""Trace-context unit tests: wire format, piggyback line, store, renderer.

The cross-node contracts these pin down:

1. ``TraceContext`` round-trips through its colon wire form, and
   ``parse`` rejects junk (an attacker-controlled kwarg must never
   produce a half-valid context);
2. ``child()`` keeps identity (same trace id, same sampling decision)
   while counting hops;
3. ``encode_trace``/``decode_trace`` round-trip a span tree and raise
   ``ValueError`` on malformed payloads;
4. ``split_trace_line`` strips exactly a trailing ``TRACE`` line and
   surfaces a corrupt payload instead of swallowing it;
5. ``TraceStore`` is bounded (oldest evicted) and refresh-on-put;
6. the activation layer hands collected traces back on deactivate;
7. ``render_trace_tree`` is deterministic and names PARTIAL shards and
   the laggard node.
"""

import threading

import pytest

from repro.observability.context import (
    TRACE_LINE_PREFIX,
    TraceContext,
    TraceStore,
    activate,
    collect,
    current,
    deactivate,
    decode_trace,
    encode_trace,
    render_trace_tree,
    split_trace_line,
    trace_lines,
)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext.generate()
        assert TraceContext.parse(ctx.to_wire()) == ctx
        unsampled = TraceContext("abc123", sampled=False, hop=7)
        assert unsampled.to_wire() == "abc123:0:7"
        assert TraceContext.parse("abc123:0:7") == unsampled

    def test_wire_form_needs_no_quoting(self):
        # The kwarg value must survive the line protocol unquoted.
        wire = TraceContext.generate().to_wire()
        assert " " not in wire and "=" not in wire and '"' not in wire

    def test_generate_is_unique_and_sampled(self):
        a, b = TraceContext.generate(), TraceContext.generate()
        assert a.trace_id != b.trace_id
        assert a.sampled and a.hop == 0
        assert not TraceContext.generate(sampled=False).sampled

    def test_child_counts_hops_and_keeps_identity(self):
        ctx = TraceContext("feed01", sampled=True, hop=0)
        grandchild = ctx.child().child()
        assert grandchild.trace_id == "feed01"
        assert grandchild.sampled and grandchild.hop == 2

    @pytest.mark.parametrize(
        "junk",
        [
            "",
            "noseparators",
            "id:1",  # missing hop
            "id:1:2:3",  # too many fields
            ":1:0",  # empty id
            "bad id:1:0",  # id with a space
            "id;rm:1:0",  # non-alnum id
            "id:2:0",  # bad sampled flag
            "id:1:-1",  # negative hop
            "id:1:x",  # non-numeric hop
        ],
    )
    def test_parse_rejects_junk(self, junk):
        with pytest.raises(ValueError):
            TraceContext.parse(junk)


class TestWireEncoding:
    TREE = {
        "method": "cluster",
        "queries": 1,
        "total_seconds": 0.25,
        "stages": {"filter": 0.1, "rank": 0.05},
        "counts": {"candidates": 12},
        "notes": {"hop": "1"},
        "spans": [{"name": "scatter", "seconds": 0.2}],
    }

    def test_encode_decode_round_trip(self):
        assert decode_trace(encode_trace(self.TREE)) == self.TREE

    @pytest.mark.parametrize("junk", ["not base64!!", "aGVsbG8", "", "====="])
    def test_decode_rejects_bad_base64(self, junk):
        with pytest.raises(ValueError):
            decode_trace(junk)

    def test_decode_rejects_non_object_payload(self):
        import base64

        payload = base64.b64encode(b"[1,2,3]").decode()
        with pytest.raises(ValueError):
            decode_trace(payload)

    def test_split_trace_line(self):
        data = ["10 0.125000", "11 0.250000"]
        reply = data + [f"{TRACE_LINE_PREFIX}cafe01 {encode_trace(self.TREE)}"]
        lines, tree = split_trace_line(reply)
        assert lines == data
        assert tree["trace_id"] == "cafe01"
        assert tree["stages"] == self.TREE["stages"]

    def test_split_trace_line_without_trace(self):
        data = ["10 0.125000"]
        assert split_trace_line(data) == (data, None)
        assert split_trace_line([]) == ([], None)

    def test_split_trace_line_surfaces_corrupt_payload(self):
        with pytest.raises(ValueError):
            split_trace_line([f"{TRACE_LINE_PREFIX}cafe01 garbage!!"])


class TestTraceStore:
    def test_bounded_eviction_oldest_first(self):
        store = TraceStore(capacity=3)
        for i in range(5):
            store.put(f"t{i}", {"n": i})
        assert len(store) == 3
        assert store.ids() == ["t2", "t3", "t4"]
        assert store.get("t0") is None
        assert store.get("t4") == {"n": 4}

    def test_put_refreshes_recency(self):
        store = TraceStore(capacity=2)
        store.put("a", {})
        store.put("b", {})
        store.put("a", {"fresh": True})  # re-put: now newest
        store.put("c", {})
        assert store.get("b") is None
        assert store.get("a") == {"fresh": True}

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestActivation:
    def test_collect_requires_active_context(self):
        deactivate()
        assert current() is None
        assert collect(object()) is False
        ctx = TraceContext.generate()
        activate(ctx)
        try:
            assert current() == ctx
            marker = object()
            assert collect(marker) is True
        finally:
            collected = deactivate()
        assert collected == [marker]
        assert current() is None and deactivate() == []

    def test_context_is_thread_local(self):
        activate(TraceContext.generate())
        seen = {}

        def probe():
            seen["other_thread"] = current()

        try:
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        finally:
            deactivate()
        assert seen["other_thread"] is None


class TestRendering:
    STITCHED = {
        "trace_id": "cafe02",
        "method": "cluster",
        "queries": 1,
        "total_seconds": 0.030,
        "stages": {},
        "counts": {"shards_answered": 1},
        "notes": {"missing_shards": "1", "laggard": "0.0"},
        "spans": [
            {"name": "scatter", "seconds": 0.020},
            {"name": "gather", "seconds": 0.001},
            {"name": "node.0.0", "rpc": 0.018, "engine": 0.012},
        ],
        "nodes": {
            "0.0": {
                "method": "querysig",
                "total_seconds": 0.012,
                "rpc_seconds": 0.018,
                "stages": {"filter": 0.008, "rank": 0.003},
                "notes": {"hop": "1"},
            }
        },
    }

    def test_render_is_deterministic(self):
        assert render_trace_tree(self.STITCHED) == render_trace_tree(
            dict(self.STITCHED)
        )

    def test_render_names_partial_and_laggard(self):
        out = render_trace_tree(self.STITCHED)
        assert out[0] == (
            "trace cafe02 method=cluster total=30.00ms PARTIAL shards=1"
        )
        joined = "\n".join(out)
        assert "node 0.0 engine=12.00ms rpc=18.00ms net+queue=6.00ms" in joined
        assert "hop=1" in joined
        assert "filter 8.00ms" in joined and "rank 3.00ms" in joined
        assert "laggard 0.0" in joined
        # The raw node.* span is summarized by the branch, not repeated.
        assert "node.0.0" not in joined

    def test_trace_lines_flatten_node_subtrees(self):
        out = trace_lines(self.STITCHED)
        assert "trace_id cafe02" in out
        assert "node.0.0.stage.filter_seconds 0.008000" in out
        assert "note.laggard 0.0" in out
