"""Unit tests for the structured logger."""

import io

import pytest

from repro.observability import log as obslog
from repro.observability.log import StructuredLogger, get_logger, is_quiet, set_quiet, set_stream


@pytest.fixture()
def sink():
    stream = io.StringIO()
    set_stream(stream)
    yield stream
    set_stream(None)
    set_quiet(False)


class TestFormat:
    def test_line_shape(self, sink):
        get_logger("t").info("ready", port=7878, datatype="image")
        line = sink.getvalue().strip()
        stamp, level, name, event, rest = line.split(" ", 4)
        assert "T" in stamp  # iso-ish timestamp
        assert level == "INFO"
        assert name == "t"
        assert event == "ready"
        assert rest == "port=7878 datatype=image"

    def test_values_with_spaces_are_quoted(self, sink):
        get_logger("t").warning("fail", error="broken pipe: reset")
        assert 'error="broken pipe: reset"' in sink.getvalue()

    def test_empty_value_quoted(self, sink):
        get_logger("t").info("ev", x="")
        assert 'x=""' in sink.getvalue()

    def test_levels_rendered_uppercase(self, sink):
        logger = get_logger("t")
        logger.warning("w")
        logger.error("e")
        out = sink.getvalue()
        assert " WARNING t w" in out
        assert " ERROR t e" in out

    def test_debug_below_min_level(self, sink):
        get_logger("t").debug("noise")
        assert sink.getvalue() == ""


class TestQuiet:
    def test_quiet_suppresses_below_error(self, sink):
        set_quiet(True)
        assert is_quiet()
        logger = get_logger("t")
        logger.info("hidden")
        logger.warning("hidden")
        logger.error("shown")
        out = sink.getvalue()
        assert "hidden" not in out
        assert "shown" in out

    def test_unquiet_restores(self, sink):
        set_quiet(True)
        set_quiet(False)
        get_logger("t").info("back")
        assert "back" in sink.getvalue()


class TestPlumbing:
    def test_get_logger_caches(self):
        assert get_logger("same") is get_logger("same")
        assert get_logger("same") is not get_logger("other")

    def test_broken_sink_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("gone")

        set_stream(Broken())
        try:
            get_logger("t").error("event")  # must not raise
        finally:
            set_stream(None)

    def test_logger_is_slotted(self):
        logger = StructuredLogger("x")
        with pytest.raises(AttributeError):
            logger.extra = 1
