"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.observability import metrics as m
from repro.observability.metrics import (
    DEFAULT_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("a")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_disabled_is_noop(self, registry):
        c = registry.counter("a")
        registry.disable()
        c.inc(100)
        assert c.value == 0
        registry.enable()
        c.inc()
        assert c.value == 1

    def test_thread_safety(self, registry):
        c = registry.counter("a")

        def spin():
            for _ in range(5000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 20000


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("g")
        g.set(3.5)
        g.add(1.5)
        assert g.value == 5.0

    def test_disabled_is_noop(self, registry):
        g = registry.gauge("g")
        registry.disable()
        g.set(9)
        assert g.value == 0.0


class TestHistogram:
    def test_observe_counts_and_sum(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 10.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(12.0)
        snap = h.snapshot()
        # Cumulative: 0.5 <= 1, 1.5 <= 2, 10.0 above every bound.
        assert snap["le_1"] == 1
        assert snap["le_2"] == 2
        assert snap["le_5"] == 2
        assert snap["mean"] == pytest.approx(4.0)

    def test_bucket_validation(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("bad2", buckets=(2.0, 1.0))

    def test_render_expansion(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        lines = registry.render()
        assert "lat_count 1" in lines
        assert "lat_sum 0.5" in lines
        assert "lat_bucket_le_1 1" in lines
        assert "lat_bucket_le_2 1" in lines

    def test_count_buckets_default_sorted(self):
        assert list(DEFAULT_COUNT_BUCKETS) == sorted(DEFAULT_COUNT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_type_clash_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_empty_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("")

    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("c")
        g = registry.gauge("g")
        h = registry.histogram("h")
        c.inc(3)
        g.set(7)
        h.observe(0.1)
        registry.reset()
        # Same handles, zero values: import-time module handles survive.
        assert c is registry.counter("c")
        assert c.value == 0
        assert g.value == 0.0
        assert h.count == 0

    def test_value_convenience(self, registry):
        registry.counter("c").inc(2)
        assert registry.value("c") == 2
        assert registry.value("missing") == 0.0
        registry.histogram("h").observe(1.0)
        assert registry.value("h") == 0.0  # histograms have no single value

    def test_render_sorted_stable_format(self, registry):
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("c").set(1.5)
        lines = registry.render()
        assert lines == ["a 2", "b 1", "c 1.5"]
        for line in lines:
            name, value = line.split(" ")
            assert name and value

    def test_names_and_get(self, registry):
        registry.counter("one")
        registry.gauge("two")
        assert registry.names() == ["one", "two"]
        assert isinstance(registry.get("one"), Counter)
        assert isinstance(registry.get("two"), Gauge)
        assert registry.get("three") is None


class TestDefaultRegistry:
    def test_module_helpers_use_default_registry(self):
        c = m.counter("test.module_helper")
        assert m.get_registry().get("test.module_helper") is c
        assert isinstance(m.histogram("test.module_hist"), Histogram)
        assert isinstance(m.gauge("test.module_gauge"), Gauge)

    def test_set_enabled_round_trip(self):
        reg = m.get_registry()
        was = reg.enabled
        try:
            c = m.counter("test.master_switch")
            before = c.value
            m.set_enabled(False)
            c.inc()
            assert c.value == before
            m.set_enabled(True)
            c.inc()
            assert c.value == before + 1
        finally:
            reg.enabled = was
