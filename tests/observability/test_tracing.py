"""Unit tests for QueryTrace, SlowQueryLog, and TraceRecorder."""

import pytest

from repro.observability.tracing import QueryTrace, SlowQueryLog, TraceRecorder


class TestQueryTrace:
    def test_accumulation(self):
        t = QueryTrace("filtering", 2)
        t.add_stage("rank", 0.25)
        t.add_stage("rank", 0.25)
        t.add_count("candidates", 10)
        t.add_count("candidates", 5)
        t.note("scan", "serial")
        assert t.stages["rank"] == pytest.approx(0.5)
        assert t.counts["candidates"] == 15
        assert t.notes["scan"] == "serial"

    def test_stage_timer(self):
        t = QueryTrace("filtering")
        with t.stage("filter"):
            pass
        assert t.stages["filter"] >= 0.0

    def test_lines_format(self):
        t = QueryTrace("filtering", 3)
        t.total_seconds = 1.5
        t.add_stage("filter", 0.5)
        t.add_count("candidates", 7)
        t.note("scan", "parallel")
        lines = t.lines()
        assert lines[0] == "method filtering"
        assert lines[1] == "queries 3"
        assert lines[2] == "total_seconds 1.500000"
        assert "stage.filter_seconds 0.500000" in lines
        assert "count.candidates 7" in lines
        assert "note.scan parallel" in lines

    def test_to_dict(self):
        t = QueryTrace("lsh")
        t.add_count("candidates", 1)
        d = t.to_dict()
        assert d["method"] == "lsh"
        assert d["counts"] == {"candidates": 1}


def _trace(seconds, method="filtering"):
    t = QueryTrace(method)
    t.total_seconds = seconds
    return t


class TestSlowQueryLog:
    def test_threshold(self):
        log = SlowQueryLog(capacity=4, threshold_seconds=0.5)
        assert not log.offer(_trace(0.4))
        assert log.offer(_trace(0.6))
        assert len(log) == 1
        assert log.total_recorded == 1

    def test_ring_buffer_rotation(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        for i in range(5):
            log.offer(_trace(float(i) + 1.0))
        assert len(log) == 2
        assert log.total_recorded == 5  # rotated-out entries stay counted
        assert [t.total_seconds for t in log.entries()] == [4.0, 5.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_clear(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        log.offer(_trace(1.0))
        log.clear()
        assert len(log) == 0


class TestTraceRecorder:
    def test_disabled_begin_returns_none(self):
        rec = TraceRecorder()
        assert rec.begin("filtering") is None
        rec.set_enabled(True)
        assert rec.begin("filtering") is not None

    def test_finish_publishes_last_and_slow_log(self):
        rec = TraceRecorder(enabled=True, slow_threshold_seconds=0.5)
        t = rec.begin("filtering")
        rec.finish(t, 0.9)
        assert rec.last is t
        assert rec.last.total_seconds == pytest.approx(0.9)
        assert rec.slow_log.total_recorded == 1

    def test_fast_query_not_slow_logged(self):
        rec = TraceRecorder(enabled=True, slow_threshold_seconds=0.5)
        rec.finish(rec.begin("filtering"), 0.1)
        assert rec.slow_log.total_recorded == 0

    def test_observe_total_catches_untraced_slow_queries(self):
        rec = TraceRecorder(enabled=False, slow_threshold_seconds=0.5)
        rec.observe_total("filtering", 1, 0.1)
        rec.observe_total("filtering", 4, 2.0)
        assert rec.slow_log.total_recorded == 1
        entry = rec.slow_log.entries()[0]
        assert entry.num_queries == 4
        assert entry.notes["detail"] == "untraced"

    def test_slow_threshold_validation(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.set_slow_threshold(0.0)
        rec.set_slow_threshold(0.25)
        assert rec.slow_log.threshold_seconds == 0.25

    def test_clear(self):
        rec = TraceRecorder(enabled=True, slow_threshold_seconds=0.01)
        rec.finish(rec.begin("filtering"), 1.0)
        rec.clear()
        assert rec.last is None
        assert len(rec.slow_log) == 0


class TestQueryTraceSpans:
    def test_add_span_renders_in_lines(self):
        t = QueryTrace("filtering")
        t.total_seconds = 1.0
        t.add_span("worker.0", queue_wait=0.001, compute=0.5, reply=0.002)
        t.add_span("worker.1", queue_wait=0.002, compute=0.25, reply=0.001)
        lines = t.lines()
        assert "span.worker.0.compute_seconds 0.500000" in lines
        assert "span.worker.0.queue_wait_seconds 0.001000" in lines
        assert "span.worker.0.reply_seconds 0.002000" in lines
        assert "span.worker.1.compute_seconds 0.250000" in lines
        # spans render in insertion order, after stages/counts/notes
        w0 = lines.index("span.worker.0.compute_seconds 0.500000")
        w1 = lines.index("span.worker.1.compute_seconds 0.250000")
        assert w0 < w1

    def test_to_dict_includes_spans(self):
        t = QueryTrace("filtering")
        t.add_span("worker.3", compute=0.125)
        d = t.to_dict()
        assert d["spans"] == [{"name": "worker.3", "compute": 0.125}]
        # the dict is a copy: mutating it must not touch the trace
        d["spans"][0]["compute"] = 99.0
        assert t.spans[0]["compute"] == 0.125


class TestSlowQueryLogWraparound:
    def test_deterministic_wraparound_order(self):
        """Entries past capacity drop oldest-first, and the survivors
        keep arrival order across several full wraps of the ring."""
        log = SlowQueryLog(capacity=3, threshold_seconds=0.0)
        for i in range(10):
            assert log.offer(_trace(float(i)))
            kept = [t.total_seconds for t in log.entries()]
            assert kept == [float(j) for j in range(max(0, i - 2), i + 1)]
        assert log.total_recorded == 10
        assert len(log) == 3

    def test_threaded_record_and_read(self):
        """Concurrent offer() and entries()/len() never corrupt the ring:
        every snapshot is a contiguous, in-order window of offers."""
        import threading

        log = SlowQueryLog(capacity=8, threshold_seconds=0.0)
        writers = 4
        per_writer = 500
        stop = threading.Event()
        snapshots = []

        def write(writer_id):
            for i in range(per_writer):
                log.offer(_trace(float(writer_id * per_writer + i)))

        def read():
            while not stop.is_set():
                entries = log.entries()
                assert len(entries) <= 8
                snapshots.append(len(entries))
                assert len(log) <= 8

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(writers)
        ]
        reader = threading.Thread(target=read)
        reader.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        reader.join()
        assert log.total_recorded == writers * per_writer
        assert len(log) == 8
        assert snapshots  # the reader actually observed mid-flight states


class TestAutoProfile:
    def test_slow_query_triggers_stack_capture(self):
        rec = TraceRecorder(enabled=True, slow_threshold_seconds=0.01)
        rec.finish(rec.begin("filtering"), 0.5)
        stats = rec.profiler.stats()
        assert stats["slow_captures"] == 1
        assert stats["unique_stacks"] >= 1
        assert rec.profiler.collapsed()  # at least this thread's stack

    def test_untraced_slow_query_also_captures(self):
        rec = TraceRecorder(enabled=False, slow_threshold_seconds=0.01)
        rec.observe_total("filtering", 1, 0.5)
        assert rec.profiler.stats()["slow_captures"] == 1

    def test_auto_profile_opt_out(self):
        rec = TraceRecorder(enabled=True, slow_threshold_seconds=0.01)
        rec.auto_profile = False
        rec.finish(rec.begin("filtering"), 0.5)
        assert rec.profiler.stats()["slow_captures"] == 0
