"""Cluster telemetry plane: traces, federation, and the event journal.

The acceptance drills for the observability tier, against *real*
backend subprocesses wherever a claim involves the wire:

1. a traced query through a 2-shard x 2-replica cluster yields ONE
   stitched trace — coordinator scatter/gather spans plus engine
   (filter/rank) stages from every contacted node, each labelled with
   its hop count and rpc/engine/net+queue split;
2. a traced query answered PARTIAL names the missing shards in the
   trace itself (and only live shards contribute subtrees);
3. a SIGKILL drill produces the postmortem sequence in the event
   journal — ``node_kill`` then ``breaker_transition`` (to open) then
   ``failover`` accounting, then ``backend_readmitted`` after restart —
   in provable seq order;
4. metric federation keeps working with a node down: ``nodes_up``
   drops, no exception, live nodes still contribute ``node.<i>.*``;
5. concurrent breaker flips produce a duplicate-free total order in
   the journal (the lock-assigned sequence numbers hold up).
"""

import threading
import time

import pytest

from repro.cluster import (
    BreakerState,
    ClusterConfig,
    ClusterSupervisor,
    FerretCoordinator,
)
from repro.cluster.service import ClusterCommandProcessor
from repro.observability import metrics as _metrics
from repro.observability.events import EventLog, get_event_log, set_event_log
from repro.server.client import FerretClient, PartialResultWarning
from repro.server.protocol import parse_command
from repro.server.server import serve_background

DATATYPE, SIZE, SEED = "sensor", 48, 42


@pytest.fixture()
def journal():
    """A fresh process-wide journal for the duration of one test."""
    previous = set_event_log(EventLog())
    try:
        yield get_event_log()
    finally:
        set_event_log(previous)


def make_coordinator(supervisor, **overrides):
    settings = dict(
        replication=supervisor.shard_map.replication,
        backend_timeout=10.0,
        breaker_failures=2,
        breaker_cooldown=0.3,
        probe_interval=0.1,
        probe_timeout=2.0,
        # Telemetry drills re-ask seeds across faults; cached answers
        # would mask the degradation (and traced queries bypass the
        # cache anyway — keep both modes identical).
        cache_entries=0,
    )
    settings.update(overrides)
    return FerretCoordinator(
        supervisor.endpoints,
        num_shards=supervisor.shard_map.num_shards,
        config=ClusterConfig(**settings),
    )


def wait_until(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestStitchedTrace:
    def test_traced_query_stitches_every_contacted_node(self):
        with ClusterSupervisor(
            4, num_shards=2, replication=2,
            datatype=DATATYPE, size=SIZE, seed=SEED,
        ) as supervisor:
            coordinator = make_coordinator(supervisor)
            server = None
            try:
                server = serve_background(ClusterCommandProcessor(coordinator))
                host, port = server.server_address
                with FerretClient(host, port) as client:
                    results, tree = client.traced_query(0, top=5)
                    assert len(results) == 5
                    assert tree is not None, "no TRACE line piggybacked"

                    # One stitched tree: coordinator spans + every shard.
                    span_names = {span["name"] for span in tree["spans"]}
                    assert {"scatter", "gather"} <= span_names
                    nodes = tree["nodes"]
                    assert {int(key.split(".")[0]) for key in nodes} == {0, 1}
                    for key, subtree in nodes.items():
                        stages = subtree["stages"]
                        assert {"filter", "rank"} <= set(stages), (
                            f"node {key} shipped no engine stages"
                        )
                        assert subtree["notes"]["hop"] == "1"
                        assert (
                            subtree["rpc_seconds"]
                            >= subtree["total_seconds"] > 0.0
                        )
                        assert f"node.{key}" in span_names

                    # The stitched tree is fetchable + renderable later.
                    rendered = client.trace_tree(tree["trace_id"])
                    assert rendered[0].startswith(
                        f"trace {tree['trace_id']} method=cluster"
                    )
                    joined = "\n".join(rendered)
                    for key in nodes:
                        assert f"node {key} engine=" in joined
                    assert "laggard" in joined
            finally:
                if server is not None:
                    server.shutdown()
                    server.server_close()
                coordinator.close()

    def test_untraced_query_piggybacks_nothing(self):
        with ClusterSupervisor(
            2, replication=1, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(supervisor, replication=1)
            try:
                processor = ClusterCommandProcessor(coordinator)
                lines = processor.execute(parse_command("query 0 top=5"))
                assert not any(line.startswith("TRACE ") for line in lines)
                assert len(coordinator.trace_store) == 0
            finally:
                coordinator.close()


class TestPartialTrace:
    def test_partial_trace_names_missing_shards(self):
        with ClusterSupervisor(
            2, replication=1, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(
                supervisor, replication=1, breaker_failures=1
            )
            server = None
            try:
                server = serve_background(ClusterCommandProcessor(coordinator))
                host, port = server.server_address
                supervisor.backends[1].kill()
                with FerretClient(host, port) as client:
                    with pytest.warns(PartialResultWarning):
                        # Seed 0 lives on the surviving shard 0.
                        results, tree = client.traced_query(0, top=5)
                    assert client.last_partial_shards == (1,)
                    assert results  # live shards still answer
                    assert tree is not None
                    assert tree["notes"]["missing_shards"] == "1"
                    # Only the live shard contributed a subtree.
                    assert {
                        int(key.split(".")[0]) for key in tree["nodes"]
                    } == {0}
                    rendered = client.trace_tree(tree["trace_id"])
                    assert "PARTIAL shards=1" in rendered[0]
            finally:
                if server is not None:
                    server.shutdown()
                    server.server_close()
                coordinator.close()


class TestEventJournalDrill:
    def test_kill_drill_produces_ordered_postmortem(self, journal):
        with ClusterSupervisor(
            3, replication=2, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(supervisor)
            coordinator.start_probes()
            try:
                coordinator.query(0, top_k=5)
                mark = journal.total_recorded - 1

                supervisor.backends[0].kill()

                def breaker_open():
                    for seed in range(6):
                        coordinator.query(seed, top_k=5)
                    return (
                        coordinator.handles[0].breaker.state
                        is BreakerState.OPEN
                    )

                assert wait_until(breaker_open), "breaker never opened"

                supervisor.backends[0].restart()
                assert wait_until(
                    lambda: any(
                        e.kind == "backend_readmitted"
                        for e in journal.since(mark)
                    )
                ), "prober never re-admitted the restarted backend"
                assert wait_until(
                    lambda: all(
                        h.breaker.state is BreakerState.CLOSED
                        for h in coordinator.handles
                    )
                )

                events = journal.since(mark)
                seqs = [e.seq for e in events]
                assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

                def first_seq(predicate):
                    matches = [e.seq for e in events if predicate(e)]
                    assert matches, "expected event missing from journal"
                    return matches[0]

                kill_seq = first_seq(lambda e: e.kind == "node_kill")
                open_seq = first_seq(
                    lambda e: e.kind == "breaker_transition"
                    and e.fields["backend"] == 0
                    and e.fields["new"] == "open"
                )
                failover_seq = first_seq(
                    lambda e: e.kind == "failover" and e.fields["primary"] == 0
                )
                readmit_seq = first_seq(
                    lambda e: e.kind == "backend_readmitted"
                )
                # The postmortem story, in provable order: the kill
                # happened, the breaker opened, traffic failed over,
                # and the node came back.
                assert kill_seq < open_seq < readmit_seq
                assert kill_seq < failover_seq
                assert any(e.kind == "node_restart" for e in events)

                # And it is queryable over the command surface.
                processor = ClusterCommandProcessor(coordinator)
                lines = processor.execute(parse_command("events 100"))
                assert lines[0].startswith("events_total ")
                assert any(" breaker_transition " in line for line in lines)
                assert any(" failover " in line for line in lines)
            finally:
                coordinator.close()


class TestFederation:
    def test_federation_survives_node_down(self):
        with ClusterSupervisor(
            3, replication=1, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(
                supervisor, replication=1, breaker_failures=1
            )
            try:
                coordinator.query(0, top_k=5)
                assert coordinator.collect_node_metrics() == 3
                registry = _metrics.get_registry()
                assert registry.value("cluster.nodes_up") == 3
                snapshot = registry.snapshot()
                assert any(name.startswith("node.0.") for name in snapshot)

                supervisor.backends[2].kill()
                # No exception with a dead node; the count just drops.
                assert coordinator.collect_node_metrics() == 2
                assert registry.value("cluster.nodes_up") == 2
            finally:
                coordinator.close()


class TestConcurrentBreakerFlips:
    ENDPOINTS = [("127.0.0.1", 21301 + i) for i in range(6)]

    def test_concurrent_flips_keep_total_order(self, journal):
        # No live backends needed: breakers flip locally, and each
        # transition records one journal entry from its calling thread.
        coordinator = FerretCoordinator(
            self.ENDPOINTS,
            num_shards=6,
            config=ClusterConfig(replication=1, breaker_failures=1),
        )
        try:
            mark = journal.total_recorded - 1
            barrier = threading.Barrier(len(coordinator.handles))

            def flip(handle):
                barrier.wait()
                handle.breaker.record_failure()

            threads = [
                threading.Thread(target=flip, args=(handle,))
                for handle in coordinator.handles
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            events = [
                e for e in journal.since(mark)
                if e.kind == "breaker_transition"
            ]
            assert len(events) == len(coordinator.handles)
            seqs = [e.seq for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            assert {e.fields["backend"] for e in events} == set(
                range(len(coordinator.handles))
            )
            assert all(e.fields["new"] == "open" for e in events)
            # The gauges agree with the journal's end state.
            for i in range(len(coordinator.handles)):
                assert (
                    _metrics.get_registry().value(f"cluster.breaker.state.{i}")
                    == 2
                )
        finally:
            coordinator.close()
