"""Node-kill drills: real backend subprocesses killed, hung, and
restarted mid-workload.

These are the acceptance drills for the cluster tier.  Every test runs
a :class:`ClusterSupervisor` fleet of *actual* ``repro.cluster.backend``
processes and disturbs them with process signals (SIGKILL / SIGSTOP /
SIGCONT) while a coordinator serves a query or insert workload.  The
invariants, against a ground-truth single engine built in-process:

1. **zero wrong results** — every answer matches the single-engine
   answer (ids exactly; distances at wire precision);
2. **no query lost to a single node failure at R=2** — the workload
   loop raises nothing, answers stay full (never partial);
3. **PARTIAL only while a whole shard is unreachable** — and exactly
   the dead shard is reported missing;
4. **automatic recovery** — after a restart the background prober
   re-admits the backend without intervention, visible in
   ``cluster.*`` metrics and in the primary serving its shard again;
5. acked inserts stay visible, checked through the recovery oracle
   (:class:`~repro.faults.nodes.ShardLedger`).
"""

import time

import numpy as np
import pytest

from repro.cluster import (
    BreakerState,
    ClusterConfig,
    ClusterError,
    ClusterSupervisor,
    FerretCoordinator,
)
from repro.datatypes import build_demo_engine
from repro.faults import NodeFault, NodeFaultPlan, ShardLedger
from repro.observability import metrics as _metrics

DATATYPE, SIZE, SEED = "sensor", 48, 42
# build_demo_engine's ``size`` scales the generator, not the object
# count: sensor/48 yields 6 sequences x 5 subjects = 30 objects.
NUM_OBJECTS = 30


@pytest.fixture(scope="module")
def full_engine():
    engine, _bench = build_demo_engine(DATATYPE, size=SIZE, seed=SEED)
    assert len(engine) == NUM_OBJECTS
    return engine


def make_coordinator(supervisor, **overrides):
    settings = dict(
        replication=supervisor.shard_map.replication,
        backend_timeout=10.0,
        breaker_failures=2,
        breaker_cooldown=0.3,
        probe_interval=0.1,
        probe_timeout=2.0,
        # Fault drills re-ask the same seeds across kills/restarts; the
        # result cache would answer from before the fault and mask the
        # degradation these tests assert on.
        cache_entries=0,
    )
    settings.update(overrides)
    return FerretCoordinator(
        supervisor.endpoints,
        num_shards=supervisor.shard_map.num_shards,
        config=ClusterConfig(**settings),
    )


def wait_until(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def assert_matches_ground_truth(result, full_engine, seed_id, top_k):
    want = full_engine.query(
        full_engine.get_object(seed_id), top_k=top_k, exclude_self=True
    )
    assert [r.object_id for r in result.results] == [
        r.object_id for r in want
    ], f"wrong results for seed {seed_id}"
    for got, expected in zip(result.results, want):
        assert got.distance == pytest.approx(expected.distance, abs=1e-4)


def all_breakers_closed(coordinator):
    return all(
        handle.breaker.state is BreakerState.CLOSED
        for handle in coordinator.handles
    )


class TestKillRestartDrill:
    def test_workload_survives_kill_and_recovers_after_restart(
        self, full_engine
    ):
        plan = NodeFaultPlan(
            [
                NodeFault(at_op=4, action="kill", backend=0),
                NodeFault(at_op=10, action="restart", backend=0),
            ]
        )
        failovers = _metrics.counter("cluster.failovers")
        readmitted = _metrics.counter("cluster.backends_readmitted")
        breaker_gauge = _metrics.gauge("cluster.backend.0.breaker_state")
        failovers_before = failovers.value
        readmitted_before = readmitted.value
        with ClusterSupervisor(
            3, replication=2, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(supervisor)
            coordinator.start_probes()
            try:
                observed_states = set()
                # The loop body raising would fail the test, which IS
                # invariant 2: zero queries lost to the node kill.
                for op in range(16):
                    plan.fire_due(op, supervisor)
                    seed_id = (op * 5) % NUM_OBJECTS
                    result = coordinator.query(seed_id, top_k=5)
                    observed_states.add(breaker_gauge.value)
                    assert_matches_ground_truth(
                        result, full_engine, seed_id, 5
                    )
                    # R=2 and one dead node: full answers throughout.
                    assert not result.partial
                assert plan.done
                assert plan.disturbed_backends() == frozenset({0})
                # The kill was actually absorbed, not routed around by luck:
                assert failovers.value > failovers_before
                # ...and the breaker opening was visible mid-drill.
                assert 2.0 in observed_states
                # Automatic recovery: the prober re-admits backend 0.
                assert wait_until(lambda: all_breakers_closed(coordinator))
                assert readmitted.value > readmitted_before
                result = coordinator.query(0, top_k=5)
                assert not result.partial
                assert_matches_ground_truth(result, full_engine, 0, 5)
                # The restarted primary serves its own shard again.
                assert result.served_by[0] == 0
            finally:
                coordinator.close()


class TestHangDrill:
    def test_hung_backend_times_out_and_fails_over(self, full_engine):
        with ClusterSupervisor(
            3, replication=2, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            # Short timeout so the SIGSTOPped backend — which accepts
            # connections but never answers (a gray failure) — is cut
            # off quickly instead of stalling the scatter.
            coordinator = make_coordinator(supervisor, backend_timeout=1.0)
            try:
                warm = coordinator.query(1, top_k=5)
                assert warm.served_by[1] == 1
                supervisor.backends[1].hang()
                result = coordinator.query(1, top_k=5)
                assert not result.partial
                assert_matches_ground_truth(result, full_engine, 1, 5)
                assert result.served_by[1] != 1
                assert coordinator.handles[1].breaker.total_failures > 0

                supervisor.backends[1].resume()
                coordinator.start_probes()
                assert wait_until(lambda: all_breakers_closed(coordinator))
                recovered = coordinator.query(1, top_k=5)
                assert not recovered.partial
                assert recovered.served_by[1] == 1
            finally:
                coordinator.close()


class TestWholeShardLoss:
    def test_partial_only_while_shard_unreachable(self, full_engine):
        partials = _metrics.counter("cluster.partial_results")
        with ClusterSupervisor(
            3, replication=2, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(supervisor)
            try:
                # Shard 1 lives on backends 1 and 2 (R=2).  Killing both
                # makes shard 1 unreachable; shards 0 and 2 keep a live
                # replica on backend 0.
                supervisor.backends[1].kill()
                supervisor.backends[2].kill()
                partials_before = partials.value
                result = coordinator.query(0, top_k=10)
                assert result.partial
                assert result.missing_shards == (1,)
                assert partials.value > partials_before
                # The live shards' merge is still exactly right.
                live = [
                    oid for oid in full_engine.objects if oid % 3 != 1
                ]
                want = full_engine.query(
                    full_engine.get_object(0),
                    top_k=10,
                    exclude_self=True,
                    restrict_to=live,
                )
                assert [r.object_id for r in result.results] == [
                    r.object_id for r in want
                ]

                supervisor.backends[1].restart()
                supervisor.backends[2].restart()
                coordinator.start_probes()
                assert wait_until(lambda: all_breakers_closed(coordinator))
                recovered = coordinator.query(0, top_k=10)
                assert not recovered.partial
                assert_matches_ground_truth(recovered, full_engine, 0, 10)
            finally:
                coordinator.close()


class TestInsertLedger:
    @pytest.fixture()
    def recording_files(self, tmp_path):
        from repro.datatypes.sensor.synthetic import (
            random_recording,
            random_subject,
            synthesize_recording,
        )

        paths = []
        for i in range(6):
            rng = np.random.default_rng(100 + i)
            signal, _spans = synthesize_recording(
                random_recording(rng), random_subject(rng), rng
            )
            path = tmp_path / f"recording{i}.npy"
            np.save(path, signal)
            paths.append(str(path))
        return paths

    def test_acked_inserts_stay_visible_through_kill(self, recording_files):
        plan = NodeFaultPlan([NodeFault(at_op=3, action="kill", backend=2)])
        under = _metrics.counter("cluster.under_replicated_writes")
        with ClusterSupervisor(
            3, replication=2, datatype=DATATYPE, size=SIZE, seed=SEED
        ) as supervisor:
            coordinator = make_coordinator(supervisor)
            ledger = ShardLedger(supervisor.shard_map.num_shards)
            try:
                under_before = under.value
                for op, path in enumerate(recording_files):
                    plan.fire_due(op, supervisor)
                    object_id = coordinator.insert_file(path)
                    ledger.record_ack(object_id)
                # Ids run 30..35 (shards 0,1,2,0,1,2); the two post-kill
                # inserts whose shards involve backend 2 — 34 (shard 1)
                # and 35 (shard 2) — got a single ack each.
                assert under.value == under_before + 2
                # Visibility through the cluster: an id is visible when
                # its owning shard can produce its signature.
                visible = []
                for sequence in ledger.acked.values():
                    for object_id in sequence:
                        try:
                            coordinator._fetch_signature(object_id)
                        except ClusterError:
                            continue
                        visible.append(object_id)
                # R=2 with one dead backend: every shard kept a live
                # replica, so the oracle requires every ack visible.
                matched = ledger.verify(
                    visible,
                    undisturbed_shards=range(
                        supervisor.shard_map.num_shards
                    ),
                )
                assert matched == {
                    shard: len(sequence)
                    for shard, sequence in ledger.acked.items()
                }
            finally:
                coordinator.close()
