"""Coordinator query-result cache: epoch semantics, unit-level.

No real backends: ``_fetch_signature`` / ``_scatter`` /
``_call_backend`` are stubbed so each test controls exactly what the
cluster "answers" and counts how often the coordinator actually fans
out.  The contract under test:

1. a repeated full-answer query is served from the cache — zero
   scatters, identical ``ClusterResult``;
2. PARTIAL answers are never cached (missing shards must re-resolve);
3. an acknowledged insert moves the write epoch and flushes the cache;
4. a breaker transition moves the topology epoch and flushes the cache
   (a failover may change which replica — and which objects — answers);
5. an epoch that moves mid-flight suppresses the store entirely;
6. ``query_many`` shares the cache with ``query`` per seed;
7. it all shows up under ``cluster.cache.*`` and ``status_lines()``.
"""

import pytest

from repro.cluster import BreakerState, ClusterConfig, FerretCoordinator
from repro.observability import metrics as _metrics

ENDPOINTS = [("127.0.0.1", 20101), ("127.0.0.1", 20102)]


def _value(name):
    return _metrics.get_registry().value(name)


class FakeCluster:
    """Installs scripted answers on a coordinator and counts fan-outs."""

    def __init__(self, coordinator, missing=()):
        self.coordinator = coordinator
        self.missing = tuple(missing)
        self.scatters = 0
        self.sig_fetches = 0
        coordinator._fetch_signature = self._fetch_signature
        coordinator._scatter = self._scatter

    def _fetch_signature(self, object_id):
        self.sig_fetches += 1
        return f"sig{object_id}"

    def _scatter(self, line_for_shard, parse, trace, trace_ctx=None):
        self.scatters += 1
        line = line_for_shard(0)
        if line.startswith("querysigmany"):
            n_seeds = len(line.split()[1].split(","))
            payload = [
                [(10 + i, 0.125 * (i + 1))] for i in range(n_seeds)
            ]
        else:
            payload = [(10, 0.125), (11, 0.25)]
        per_shard = {
            shard: payload
            for shard in range(self.coordinator.shard_map.num_shards)
            if shard not in self.missing
        }
        served_by = {shard: shard % 2 for shard in per_shard}
        return per_shard, self.missing, served_by, {}


def make_coordinator(**overrides):
    settings = dict(
        replication=1,
        breaker_failures=1,
        breaker_cooldown=60.0,
        cache_entries=32,
    )
    settings.update(overrides)
    return FerretCoordinator(
        ENDPOINTS, num_shards=2, config=ClusterConfig(**settings)
    )


def test_repeat_query_served_from_cache():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator)
    hits_before = _value("cluster.cache.hits")
    first = coordinator.query(3, top_k=4)
    assert fake.scatters == 1 and not first.partial
    again = coordinator.query(3, top_k=4)
    assert fake.scatters == 1  # no second fan-out
    assert fake.sig_fetches == 1  # not even the seed fetch
    assert [r.object_id for r in again.results] == [
        r.object_id for r in first.results
    ]
    assert again.served_by == first.served_by
    assert _value("cluster.cache.hits") == hits_before + 1
    # Different top_k / seed / method are distinct keys.
    coordinator.query(3, top_k=5)
    assert fake.scatters == 2
    coordinator.query(4, top_k=4)
    assert fake.scatters == 3


def test_cached_result_is_a_fresh_copy():
    coordinator = make_coordinator()
    FakeCluster(coordinator)
    first = coordinator.query(1, top_k=4)
    n_results = len(first.results)
    first.results.pop()
    first.served_by.clear()
    again = coordinator.query(1, top_k=4)
    assert len(again.results) == n_results and again.served_by


def test_partial_results_never_cached():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator, missing=(1,))
    result = coordinator.query(2, top_k=4)
    assert result.partial and result.missing_shards == (1,)
    coordinator.query(2, top_k=4)
    assert fake.scatters == 2  # PARTIAL is re-resolved every time


def test_insert_moves_write_epoch_and_flushes():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator)
    coordinator._call_backend = lambda backend_id, line, timeout=None: ["0"]
    coordinator.query(1, top_k=4)
    invalidations_before = _value("cluster.cache.invalidations")
    coordinator.insert_file("/tmp/x.dat")
    assert coordinator._cache_epoch()[0] == 1
    coordinator.query(1, top_k=4)
    assert fake.scatters == 2  # cached answer was flushed
    assert _value("cluster.cache.invalidations") == invalidations_before + 1


def test_breaker_transition_moves_topology_epoch_and_flushes():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator)
    coordinator.query(1, top_k=4)
    # One failure opens the breaker (breaker_failures=1): a failover to
    # another replica may change which objects answer shard 0.
    coordinator.handles[0].breaker.record_failure()
    assert coordinator.handles[0].breaker.state is BreakerState.OPEN
    assert coordinator._cache_epoch()[1] >= 1
    coordinator.query(1, top_k=4)
    assert fake.scatters == 2


def test_midflight_epoch_move_suppresses_store():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator)
    inner = fake._scatter

    def scatter_during_write(line_for_shard, parse, trace, trace_ctx=None):
        # A write lands while the scatter is in flight: the answer being
        # assembled may already be stale and must not be cached.
        coordinator._write_epoch += 1
        return inner(line_for_shard, parse, trace, trace_ctx=trace_ctx)

    coordinator._scatter = scatter_during_write
    coordinator.query(1, top_k=4)
    coordinator.query(1, top_k=4)
    assert fake.scatters == 2


def test_query_many_shares_cache_with_query():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator)
    first = coordinator.query(1, top_k=4)
    assert fake.scatters == 1
    # Seed 1 hits; only seed 2 goes to the backends.
    results = coordinator.query_many([1, 2], top_k=4)
    assert fake.scatters == 2
    assert len(results) == 2 and not results[0].partial
    assert [r.object_id for r in results[0].results] == [
        r.object_id for r in first.results
    ]
    # Now everything is cached: a mixed batch costs zero fan-outs.
    again = coordinator.query_many([2, 1], top_k=4)
    assert fake.scatters == 2
    assert [r.object_id for r in again[1].results] == [
        r.object_id for r in first.results
    ]
    assert [r.object_id for r in again[0].results] == [
        r.object_id for r in results[1].results
    ]


def test_query_many_partial_not_cached():
    coordinator = make_coordinator()
    fake = FakeCluster(coordinator, missing=(1,))
    results = coordinator.query_many([5, 6], top_k=4)
    assert all(r.partial for r in results)
    coordinator.query_many([5, 6], top_k=4)
    assert fake.scatters == 2


def test_cache_disabled_by_config():
    coordinator = make_coordinator(cache_entries=0)
    fake = FakeCluster(coordinator)
    coordinator.query(1, top_k=4)
    coordinator.query(1, top_k=4)
    assert fake.scatters == 2


def test_status_lines_report_cache():
    coordinator = make_coordinator()
    FakeCluster(coordinator)
    coordinator.query(1, top_k=4)
    coordinator.query(1, top_k=4)
    lines = coordinator.status_lines()
    joined = "\n".join(lines)
    assert "cache_entries 1/32" in joined
    assert "cache_hits" in joined and "cache_misses" in joined
    assert "cache_invalidations" in joined
