"""Coordinator correctness and robustness over in-process backends.

These tests run real ``FerretServer`` instances (threaded, ephemeral
ports) but in-process, so they are fast and deterministic; the
process-level kill/hang drills live in ``test_node_faults.py``.
"""

import socket
import threading

import pytest

from repro.cluster import (
    BreakerState,
    ClusterConfig,
    ClusterError,
    FerretCoordinator,
    ShardMap,
)
from repro.cluster.backend import build_backend_processor
from repro.cluster.coordinator import BackendHandle
from repro.cluster.service import ClusterCommandProcessor
from repro.datatypes import build_demo_engine
from repro.observability import metrics as _metrics
from repro.server.client import ClientError, FerretClient, PartialResultWarning
from repro.server.server import FerretServer, serve_background

DATATYPE, SIZE, SEED = "sensor", 48, 42


@pytest.fixture(scope="module")
def full_engine():
    engine, _bench = build_demo_engine(DATATYPE, size=SIZE, seed=SEED)
    return engine


class _Server(FerretServer):
    """FerretServer that remembers live connections so ``stop`` can
    sever them — closing only the listener would leave the
    coordinator's pooled connections answering from handler threads."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._conns = []

    def process_request(self, request, client_address):
        self._conns.append(request)
        super().process_request(request, client_address)


def serve(processor, host="127.0.0.1", port=0):
    server = _Server(processor, host, port)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def start_cluster(num_backends=3, num_shards=3, replication=2):
    smap = ShardMap(num_shards, num_backends, replication)
    servers = []
    for index in range(num_backends):
        processor = build_backend_processor(
            index, smap, datatype=DATATYPE, size=SIZE, seed=SEED
        )
        servers.append(serve(processor))
    return smap, servers, [s.server_address for s in servers]


def stop(server):
    server.shutdown()
    for conn in getattr(server, "_conns", []):
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass
    server.server_close()


@pytest.fixture()
def cluster():
    smap, servers, endpoints = start_cluster()
    coordinator = FerretCoordinator(
        endpoints,
        num_shards=smap.num_shards,
        config=ClusterConfig(
            replication=smap.replication,
            backend_timeout=10.0,
            breaker_failures=2,
            breaker_cooldown=0.2,
            # These tests re-ask the same seeds across induced failures;
            # the result cache would mask the failover/PARTIAL paths
            # under test (cache behavior has its own suite in
            # test_coordinator_cache.py).
            cache_entries=0,
        ),
    )
    yield smap, servers, coordinator
    coordinator.close()
    for server in servers:
        try:
            stop(server)
        except OSError:
            pass


class TestMerge:
    def test_merge_is_deterministic_on_ties(self):
        shard_a = [(3, 1.0), (7, 2.0)]
        shard_b = [(5, 2.0), (9, 2.0)]
        merged = FerretCoordinator.merge_ranked([shard_a, shard_b], 3)
        # Boundary ties at 2.0 admit ascending ids: 5 and 7, never 9.
        assert [r.object_id for r in merged] == [3, 5, 7]

    def test_merge_independent_of_shard_split(self):
        pairs = [(i, float((i * 7) % 5)) for i in range(20)]
        split_a = [pairs[:10], pairs[10:]]
        split_b = [pairs[::2], pairs[1::2]]
        merged_a = FerretCoordinator.merge_ranked(split_a, 6)
        merged_b = FerretCoordinator.merge_ranked(split_b, 6)
        assert [(r.object_id, r.distance) for r in merged_a] == [
            (r.object_id, r.distance) for r in merged_b
        ]

    def test_merge_empty(self):
        assert FerretCoordinator.merge_ranked([], 5) == []


class TestQueries:
    def test_query_matches_single_engine(self, cluster, full_engine):
        _, _, coordinator = cluster
        for seed_id in (0, 7, 13):
            got = coordinator.query(seed_id, top_k=5)
            assert not got.partial
            want = full_engine.query(
                full_engine.get_object(seed_id), top_k=5, exclude_self=True
            )
            assert [r.object_id for r in got.results] == [
                r.object_id for r in want
            ]
            for a, b in zip(got.results, want):
                assert a.distance == pytest.approx(b.distance, abs=1e-4)

    def test_query_many_matches_single_engine(self, cluster, full_engine):
        _, _, coordinator = cluster
        seeds = [1, 2, 5, 8]
        batch = coordinator.query_many(seeds, top_k=4)
        assert len(batch) == len(seeds)
        for seed_id, got in zip(seeds, batch):
            want = full_engine.query(
                full_engine.get_object(seed_id), top_k=4, exclude_self=True
            )
            assert [r.object_id for r in got.results] == [
                r.object_id for r in want
            ]

    def test_count_does_not_double_count_replicas(self, cluster, full_engine):
        _, _, coordinator = cluster
        total, missing = coordinator.count()
        assert missing == ()
        assert total == len(full_engine)

    def test_served_by_maps_every_shard(self, cluster):
        smap, _, coordinator = cluster
        result = coordinator.query(0, top_k=3)
        assert sorted(result.served_by) == list(range(smap.num_shards))


class TestFailover:
    def test_replica_serves_when_primary_dies(self, cluster, full_engine):
        smap, servers, coordinator = cluster
        failovers = _metrics.counter("cluster.failovers")
        before = failovers.value
        want = coordinator.query(0, top_k=5)
        stop(servers[0])
        got = coordinator.query(0, top_k=5)
        # Full answer, zero missing shards: every shard backend 0
        # hosted has a live replica at R=2.
        assert not got.partial
        assert [r.object_id for r in got.results] == [
            r.object_id for r in want.results
        ]
        assert failovers.value > before

    def test_breaker_opens_and_sheds_dead_backend(self, cluster):
        _, servers, coordinator = cluster
        stop(servers[0])
        for _ in range(3):  # breaker_failures=2
            coordinator.query(0, top_k=3)
        assert coordinator.handles[0].breaker.state is not BreakerState.CLOSED
        gauge = _metrics.gauge("cluster.backend.0.breaker_state")
        assert gauge.value == 2.0  # open
        available = _metrics.gauge("cluster.backends_available")
        assert available.value == 2.0

    def test_readmission_after_restart(self, cluster):
        smap, servers, coordinator = cluster
        host, port = servers[0].server_address
        stop(servers[0])
        for _ in range(3):
            coordinator.query(0, top_k=3)
        assert coordinator.handles[0].breaker.state is BreakerState.OPEN

        processor = build_backend_processor(
            0, smap, datatype=DATATYPE, size=SIZE, seed=SEED
        )
        servers[0] = serve(processor, host, port)
        readmitted = 0
        deadline = 50
        while readmitted == 0 and deadline > 0:
            import time

            time.sleep(0.05)  # wait out breaker_cooldown=0.2
            readmitted = coordinator.probe_once()
            deadline -= 1
        assert readmitted == 1
        assert coordinator.handles[0].breaker.state is BreakerState.CLOSED
        result = coordinator.query(0, top_k=3)
        assert not result.partial


class TestPartialResults:
    def test_losing_every_replica_tags_partial(self, full_engine):
        smap, servers, endpoints = start_cluster(
            num_backends=3, num_shards=3, replication=1
        )
        coordinator = FerretCoordinator(
            endpoints,
            num_shards=3,
            config=ClusterConfig(
                replication=1, backend_timeout=10.0,
                breaker_failures=2, breaker_cooldown=60.0,
            ),
        )
        try:
            stop(servers[1])  # R=1: shard 1 now has no replica at all
            result = coordinator.query(0, top_k=10)
            assert result.partial
            assert result.missing_shards == (1,)
            # Still correct for live shards: equals the single-engine
            # answer restricted to objects of shards 0 and 2.
            live = [
                oid for oid in full_engine.objects if oid % 3 != 1
            ]
            want = full_engine.query(
                full_engine.get_object(0),
                top_k=10,
                exclude_self=True,
                restrict_to=sorted(live),
            )
            assert [r.object_id for r in result.results] == [
                r.object_id for r in want
            ]
        finally:
            coordinator.close()
            for index, server in enumerate(servers):
                if index != 1:
                    stop(server)

    def test_losing_seed_shard_raises(self):
        smap, servers, endpoints = start_cluster(
            num_backends=3, num_shards=3, replication=1
        )
        coordinator = FerretCoordinator(
            endpoints,
            num_shards=3,
            config=ClusterConfig(
                replication=1, backend_timeout=10.0,
                breaker_failures=1, breaker_cooldown=60.0,
            ),
        )
        try:
            stop(servers[0])
            with pytest.raises(ClusterError):
                coordinator.query(0, top_k=5)  # object 0 lives on shard 0
        finally:
            coordinator.close()
            for index, server in enumerate(servers):
                if index != 0:
                    stop(server)


class TestWrites:
    @pytest.fixture()
    def recording_file(self, tmp_path):
        import numpy as np

        from repro.datatypes.sensor.synthetic import (
            random_recording,
            random_subject,
            synthesize_recording,
        )

        rng = np.random.default_rng(7)
        signal, _spans = synthesize_recording(
            random_recording(rng), random_subject(rng), rng
        )
        path = tmp_path / "recording.npy"
        np.save(path, signal)
        return str(path)

    def test_insert_goes_to_every_replica(self, cluster, recording_file):
        smap, servers, coordinator = cluster
        object_id = coordinator.insert_file(recording_file)
        shard = smap.shard_of(object_id)
        for backend_id in range(smap.num_backends):
            engine = servers[backend_id].processor.engine
            if backend_id in smap.replicas(shard):
                assert object_id in engine
            else:
                assert object_id not in engine
        # The new object is immediately searchable cluster-wide.
        result = coordinator.query(object_id, top_k=3)
        assert not result.partial

    def test_under_replicated_write_is_acked_and_counted(
        self, cluster, recording_file
    ):
        smap, servers, coordinator = cluster
        under = _metrics.counter("cluster.under_replicated_writes")
        before = under.value
        # The next id's shard has replicas; kill the *second* one so the
        # primary still acks.
        next_id = coordinator._seed_next_id()
        shard = smap.shard_of(next_id)
        stop(servers[smap.replicas(shard)[1]])
        object_id = coordinator.insert_file(recording_file)
        assert object_id == next_id
        assert under.value == before + 1
        assert coordinator.health.degraded_components().get("replication")


class TestServiceFrontEnd:
    def test_wire_contract_full_and_partial(self, full_engine):
        smap, servers, endpoints = start_cluster(
            num_backends=3, num_shards=3, replication=1
        )
        coordinator = FerretCoordinator(
            endpoints,
            num_shards=3,
            config=ClusterConfig(
                replication=1, backend_timeout=10.0,
                breaker_failures=2, breaker_cooldown=60.0,
                # The same seed is re-asked after a backend stop; a
                # cached full answer would suppress the PARTIAL warning.
                cache_entries=0,
            ),
        )
        front = serve_background(ClusterCommandProcessor(coordinator))
        client = FerretClient(*front.server_address, timeout=10.0)
        try:
            assert client.ping()
            status = client.cluster_status()
            assert status["shards"] == "3"
            assert status["backends"] == "3"

            results = client.query(0, top=5)
            assert client.last_partial_shards == ()
            want = full_engine.query(
                full_engine.get_object(0), top_k=5, exclude_self=True
            )
            assert [oid for oid, _ in results] == [r.object_id for r in want]

            stop(servers[1])
            with pytest.warns(PartialResultWarning) as record:
                partial = client.query(0, top=5)
            assert client.last_partial_shards == (1,)
            assert record[0].message.missing_shards == (1,)
            assert all(oid % 3 != 1 for oid, _ in partial)

            # querymany carries the same tag once, before all groups.
            with pytest.warns(PartialResultWarning):
                groups = client.querymany([0, 3], top=4)
            assert len(groups) == 2
        finally:
            client.close()
            coordinator.close()
            stop(front)
            for index, server in enumerate(servers):
                if index != 1:
                    stop(server)

    def test_bad_requests_answer_err_not_failure(self, cluster):
        _, _, coordinator = cluster
        front = serve_background(ClusterCommandProcessor(coordinator))
        client = FerretClient(*front.server_address, timeout=10.0)
        try:
            with pytest.raises(ClientError):
                client.send("query notanid")
            with pytest.raises(ClientError):
                client.send("nosuchcommand")
            with pytest.raises(ClientError):
                client.send("query 999999 top=3")  # unknown object
            # The connection survives well-formed ERR answers.
            assert client.ping()
            # And bad requests never tripped a breaker.
            assert all(
                handle.breaker.state is BreakerState.CLOSED
                for handle in coordinator.handles
            )
        finally:
            client.close()
            stop(front)


class TestPooling:
    def test_handle_reuses_clean_connections(self, cluster):
        _, _, coordinator = cluster
        handle = coordinator.handles[0]
        assert handle.send("ping") == ["pong"]
        pooled = len(handle._idle)
        assert pooled >= 1
        assert handle.send("ping") == ["pong"]
        assert len(handle._idle) == pooled  # reused, not regrown
