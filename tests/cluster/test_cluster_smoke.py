"""Minimal end-to-end cluster drill for CI (``make cluster-smoke``).

Three real backend subprocesses at R=1 — so killing one provably
removes a whole shard — must produce: full answers, then a PARTIAL
answer naming exactly the dead shard, then full answers again after the
backend restarts and the prober re-admits it.
"""

import time

from repro.cluster import (
    BreakerState,
    ClusterConfig,
    ClusterSupervisor,
    FerretCoordinator,
)


def test_kill_partial_restart_full():
    with ClusterSupervisor(3, replication=1, size=48) as supervisor:
        coordinator = FerretCoordinator(
            supervisor.endpoints,
            num_shards=3,
            config=ClusterConfig(
                replication=1,
                backend_timeout=10.0,
                breaker_failures=1,
                breaker_cooldown=0.2,
                probe_interval=0.1,
                # This drill re-asks the same seed across a kill; a
                # cached full answer would mask the PARTIAL under test.
                cache_entries=0,
            ),
        )
        try:
            full = coordinator.query(0, top_k=5)
            assert not full.partial and len(full.results) == 5

            supervisor.backends[1].kill()
            partial = coordinator.query(0, top_k=5)
            assert partial.partial
            assert partial.missing_shards == (1,)
            assert all(r.object_id % 3 != 1 for r in partial.results)

            supervisor.backends[1].restart()
            coordinator.start_probes()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if all(
                    handle.breaker.state is BreakerState.CLOSED
                    for handle in coordinator.handles
                ):
                    break
                time.sleep(0.1)
            recovered = coordinator.query(0, top_k=5)
            assert not recovered.partial
            assert [r.object_id for r in recovered.results] == [
                r.object_id for r in full.results
            ]
        finally:
            coordinator.close()
