"""Circuit breaker state machine, driven by an injectable clock."""

import threading

import pytest

from repro.cluster import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def make(clock, threshold=3, cooldown=2.0, transitions=None):
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_seconds=cooldown,
        clock=clock,
        on_transition=(
            None
            if transitions is None
            else lambda old, new: transitions.append((old, new))
        ),
    )


class TestClosed:
    def test_starts_closed_and_allows(self, clock):
        breaker = make(clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_sporadic_failures_do_not_trip(self, clock):
        breaker = make(clock, threshold=3)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # resets the consecutive run
        assert breaker.state is BreakerState.CLOSED

    def test_consecutive_failures_trip_open(self, clock):
        breaker = make(clock, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1


class TestOpenToHalfOpen:
    def test_cooldown_elapses_to_half_open(self, clock):
        breaker = make(clock, threshold=1, cooldown=2.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_grants_single_probe(self, clock):
        breaker = make(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent request: refused
        assert not breaker.allow()

    def test_probe_success_closes(self, clock):
        breaker = make(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow() and breaker.allow()  # traffic flows again

    def test_probe_failure_reopens_and_rearms_cooldown(self, clock):
        breaker = make(clock, threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(0.5)
        assert not breaker.allow()  # cooldown restarted at re-open
        clock.advance(0.6)
        assert breaker.allow()


class TestForceOpen:
    def test_force_open_skips_threshold(self, clock):
        breaker = make(clock, threshold=5)
        breaker.force_open()
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1


class TestTransitions:
    def test_callback_sees_ordered_transitions(self, clock):
        transitions = []
        breaker = make(clock, threshold=1, cooldown=1.0, transitions=transitions)
        breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        breaker.record_success()
        assert transitions == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_callback_may_read_state_without_deadlock(self, clock):
        # Regression: the coordinator's callback reads .state to refresh
        # an availability gauge; fired under the lock this deadlocks.
        seen = []
        breaker = None

        def callback(old, new):
            seen.append(breaker.state)  # re-enters the breaker

        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=1.0,
            clock=clock, on_transition=callback,
        )
        finished = threading.Event()

        def trip():
            breaker.record_failure()
            finished.set()

        thread = threading.Thread(target=trip, daemon=True)
        thread.start()
        assert finished.wait(5.0), "breaker deadlocked firing its callback"
        assert seen and seen[0] is BreakerState.OPEN

    def test_gauge_values_stable(self):
        assert BreakerState.CLOSED.gauge_value == 0
        assert BreakerState.HALF_OPEN.gauge_value == 1
        assert BreakerState.OPEN.gauge_value == 2


class TestValidation:
    def test_bad_threshold(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)

    def test_bad_cooldown(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0, clock=clock)
