"""Shard placement: deterministic, disjoint, replica-consistent."""

import pytest

from repro.cluster import ShardMap


class TestPlacement:
    def test_shard_of_is_mod(self):
        smap = ShardMap(4, 4, 2)
        assert [smap.shard_of(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_replicas_primary_first_round_robin(self):
        smap = ShardMap(3, 3, 2)
        assert smap.replicas(0) == (0, 1)
        assert smap.replicas(1) == (1, 2)
        assert smap.replicas(2) == (2, 0)

    def test_every_shard_has_r_distinct_replicas(self):
        smap = ShardMap(5, 4, 3)
        for shard in range(5):
            replicas = smap.replicas(shard)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_shards_on_inverts_replicas(self):
        smap = ShardMap(6, 4, 2)
        for backend in range(4):
            for shard in smap.shards_on(backend):
                assert backend in smap.replicas(shard)
        for shard in range(6):
            for backend in smap.replicas(shard):
                assert shard in smap.shards_on(backend)

    def test_owns(self):
        smap = ShardMap(3, 3, 2)
        # object 4 -> shard 1 -> backends (1, 2)
        assert not smap.owns(0, 4)
        assert smap.owns(1, 4)
        assert smap.owns(2, 4)

    def test_layout_is_pure_function(self):
        # Two independently constructed maps agree everywhere — the
        # property that lets coordinator, backends, and tests derive
        # placement without exchanging state.
        a, b = ShardMap(7, 5, 2), ShardMap(7, 5, 2)
        for shard in range(7):
            assert a.replicas(shard) == b.replicas(shard)


class TestValidation:
    def test_replication_cannot_exceed_backends(self):
        with pytest.raises(ValueError):
            ShardMap(3, 2, 3)

    def test_replication_one_allowed(self):
        assert ShardMap(3, 3, 1).replicas(0) == (0,)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            ShardMap(0, 3)
        with pytest.raises(ValueError):
            ShardMap(3, 0)

    def test_range_checks(self):
        smap = ShardMap(3, 3, 2)
        with pytest.raises(ValueError):
            smap.shard_of(-1)
        with pytest.raises(ValueError):
            smap.replicas(3)
        with pytest.raises(ValueError):
            smap.shards_on(5)
