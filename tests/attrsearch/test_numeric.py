"""Tests for numeric attribute indexing and range queries."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.attrsearch import AttributeSearcher, MemoryIndex, PersistentIndex, QueryError, parse_query
from repro.attrsearch.numeric import (
    MemoryNumericIndex,
    PersistentNumericIndex,
    decode_sortable_float,
    encode_sortable_float,
    parse_number,
)
from repro.storage import KVStore

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestSortableFloatEncoding:
    def test_roundtrip(self):
        for value in (0.0, -0.0, 1.5, -1.5, 1e300, -1e300, 1e-300, 42.0):
            assert decode_sortable_float(encode_sortable_float(value)) == value

    def test_order_preserving_known(self):
        values = [-1e10, -3.5, -1.0, -1e-10, 0.0, 1e-10, 2.0, 7.25, 1e10]
        encoded = [encode_sortable_float(v) for v in values]
        assert encoded == sorted(encoded)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            encode_sortable_float(float("nan"))

    @settings(max_examples=300)
    @given(_finite, _finite)
    def test_property_order_preserving(self, a, b):
        ea, eb = encode_sortable_float(a), encode_sortable_float(b)
        if a < b:
            assert ea < eb
        elif a > b:
            assert ea > eb

    @settings(max_examples=100)
    @given(_finite)
    def test_property_roundtrip(self, value):
        assert decode_sortable_float(encode_sortable_float(value)) == value


class TestParseNumber:
    def test_accepts_numbers(self):
        assert parse_number("42") == 42.0
        assert parse_number("-3.5") == -3.5
        assert parse_number(" 1e3 ") == 1000.0

    def test_rejects_non_numbers(self):
        assert parse_number("dog") is None
        assert parse_number("") is None
        assert parse_number("nan") is None
        assert parse_number("inf") is None


def _make_numeric_indexes(tmp_path):
    store = KVStore(str(tmp_path / "nidx"))
    return [MemoryNumericIndex(), PersistentNumericIndex(store)], store


class TestNumericIndexes:
    def test_range_lookup_both_backends(self, tmp_path):
        indexes, store = _make_numeric_indexes(tmp_path)
        for index in indexes:
            for oid, year in ((1, "2003"), (2, "2005"), (3, "2007"), (4, "no")):
                index.add(oid, {"year": year})
            assert index.range_lookup("year", 2004, 2008) == {2, 3}
            assert index.range_lookup("year", 2003, 2003) == {1}
            assert index.range_lookup("year", 2003, 2005, include_low=False) == {2}
            assert index.range_lookup("year", 2003, 2005, include_high=False) == {1}
            assert index.range_lookup("year", -math.inf, math.inf) == {1, 2, 3}
            assert index.range_lookup("other", 0, 10) == set()
        store.close()

    def test_remove_both_backends(self, tmp_path):
        indexes, store = _make_numeric_indexes(tmp_path)
        for index in indexes:
            index.add(1, {"size": "10"})
            index.add(2, {"size": "20"})
            index.remove(1, {"size": "10"})
            assert index.range_lookup("size", 0, 100) == {2}
        store.close()

    def test_negative_values(self, tmp_path):
        indexes, store = _make_numeric_indexes(tmp_path)
        for index in indexes:
            for oid, temp in ((1, "-40"), (2, "-10.5"), (3, "0"), (4, "25")):
                index.add(oid, {"temp": temp})
            assert index.range_lookup("temp", -50, -5) == {1, 2}
            assert index.range_lookup("temp", -10.5, 0) == {2, 3}
        store.close()

    def test_persistent_survives_reopen(self, tmp_path):
        path = str(tmp_path / "p")
        store = KVStore(path)
        PersistentNumericIndex(store).add(1, {"lat": "40.5"})
        store.close()
        store = KVStore(path)
        assert PersistentNumericIndex(store).range_lookup("lat", 40, 41) == {1}
        store.close()


class TestRangeQueryLanguage:
    def _searcher(self):
        index = MemoryIndex()
        index.add(1, {"name": "alpha", "year": "2003", "size": "12"})
        index.add(2, {"name": "beta", "year": "2005", "size": "90"})
        index.add(3, {"name": "gamma", "year": "2007", "size": "55"})
        return AttributeSearcher(index)

    def test_comparisons(self):
        s = self._searcher()
        assert s.search("year>2004") == {2, 3}
        assert s.search("year>=2005") == {2, 3}
        assert s.search("year<2005") == {1}
        assert s.search("year<=2005") == {1, 2}
        assert s.search("year=2007") == {3}

    def test_dotdot_range(self):
        s = self._searcher()
        assert s.search("size:10..60") == {1, 3}

    def test_combined_with_keywords(self):
        s = self._searcher()
        assert s.search("year>2003 AND NOT name:gamma") == {2}
        assert s.search("name:alpha OR size>80") == {1, 2}

    def test_bad_comparison_value(self):
        with pytest.raises(QueryError):
            parse_query("year>dog")

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            parse_query("size:9..3")

    def test_range_repr(self):
        node = parse_query("size:1..5")
        assert "Range" in repr(node)

    def test_keyword_colon_terms_still_work(self):
        s = self._searcher()
        assert s.search("name:beta") == {2}
