"""Tests for attribute-based search: analyzer, indexes, query language."""

import pytest

from repro.attrsearch import (
    AttributeSearcher,
    MemoryIndex,
    PersistentIndex,
    QueryError,
    analyze_attributes,
    parse_query,
    tokenize,
)
from repro.storage import KVStore


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_punctuation_split(self):
        assert tokenize("dog.jpg,corel-2004") == ["dog", "jpg", "corel", "2004"]

    def test_stopwords_removed(self):
        assert tokenize("a dog in the park") == ["dog", "park"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("the and of") == []


class TestAnalyzeAttributes:
    def test_bare_and_qualified_terms(self):
        terms = analyze_attributes({"category": "Dog Park"})
        assert "dog" in terms
        assert "park" in terms
        assert "category:dog" in terms
        assert "category:park" in terms

    def test_field_lowercased(self):
        terms = analyze_attributes({"Category": "X"})
        assert "category:x" in terms


def _make_indexes(tmp_path):
    store = KVStore(str(tmp_path / "idx"))
    return [MemoryIndex(), PersistentIndex(store)], store


class TestIndexes:
    """Behavioral contract shared by both index implementations."""

    def test_add_lookup_remove(self, tmp_path):
        indexes, store = _make_indexes(tmp_path)
        for index in indexes:
            index.add(1, {"kind": "dog"})
            index.add(2, {"kind": "cat"})
            assert index.lookup("dog") == {1}
            assert index.lookup("kind:cat") == {2}
            assert index.all_ids() == {1, 2}
            index.remove(1, {"kind": "dog"})
            assert index.lookup("dog") == set()
            assert index.all_ids() == {2}
        store.close()

    def test_lookup_case_insensitive(self, tmp_path):
        indexes, store = _make_indexes(tmp_path)
        for index in indexes:
            index.add(1, {"kind": "Dog"})
            assert index.lookup("DOG") == {1}
        store.close()

    def test_multiple_objects_per_term(self, tmp_path):
        indexes, store = _make_indexes(tmp_path)
        for index in indexes:
            for oid in range(5):
                index.add(oid, {"tag": "shared"})
            assert index.lookup("shared") == set(range(5))
        store.close()

    def test_persistent_index_survives_reopen(self, tmp_path):
        path = str(tmp_path / "pidx")
        store = KVStore(path)
        index = PersistentIndex(store)
        index.add(1, {"kind": "dog"})
        store.close()
        store = KVStore(path)
        index = PersistentIndex(store)
        assert index.lookup("dog") == {1}
        assert index.all_ids() == {1}
        store.close()


class TestQueryParser:
    def _index(self):
        index = MemoryIndex()
        index.add(1, {"kind": "dog", "collection": "corel"})
        index.add(2, {"kind": "cat", "collection": "corel"})
        index.add(3, {"kind": "dog", "collection": "web"})
        index.add(4, {"kind": "sunset beach"})
        return index

    def search(self, expr):
        return AttributeSearcher(self._index()).search(expr)

    def test_single_term(self):
        assert self.search("dog") == {1, 3}

    def test_field_qualified(self):
        assert self.search("collection:corel") == {1, 2}

    def test_implicit_and(self):
        assert self.search("dog corel") == {1}

    def test_explicit_and(self):
        assert self.search("dog AND corel") == {1}

    def test_or(self):
        assert self.search("cat OR sunset") == {2, 4}

    def test_not(self):
        assert self.search("NOT dog") == {2, 4}

    def test_and_not(self):
        assert self.search("corel NOT cat") == {1}

    def test_parentheses(self):
        assert self.search("(cat OR dog) AND corel") == {1, 2}

    def test_nested_not(self):
        assert self.search("NOT NOT dog") == {1, 3}

    def test_no_match(self):
        assert self.search("zebra") == set()

    def test_case_insensitive_keywords(self):
        assert self.search("cat or sunset") == {2, 4}
        assert self.search("dog and corel") == {1}

    @pytest.mark.parametrize("bad", ["", "AND dog", "dog AND", "(dog", "dog)", "()"])
    def test_malformed_queries(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad) if bad else parse_query(bad)

    def test_repr_smoke(self):
        node = parse_query("(a OR b) AND NOT c")
        assert "Or" in repr(node) and "Not" in repr(node)
