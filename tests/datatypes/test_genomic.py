"""Tests for the genomic microarray data type."""

import numpy as np
import pytest

from repro.core import (
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    meta_from_dataset,
)
from repro.datatypes.genomic import (
    GENOMIC_DISTANCES,
    dataset_from_expression,
    generate_expression_matrix,
    generate_genomic_benchmark,
    make_genomic_plugin,
)
from repro.evaltool import evaluate_engine


class TestExpressionGenerator:
    def test_matrix_shape(self):
        data = generate_expression_matrix(
            num_modules=5, genes_per_module=4, num_background=10,
            num_experiments=30, seed=0,
        )
        assert data.matrix.shape == (30, 30)
        assert data.num_genes == 30
        assert data.num_experiments == 30

    def test_module_labels(self):
        data = generate_expression_matrix(
            num_modules=3, genes_per_module=4, num_background=5, seed=1
        )
        modules = data.modules()
        assert len(modules) == 3
        assert all(len(members) == 4 for members in modules.values())
        assert (data.module_of == -1).sum() == 5

    def test_module_genes_correlated(self):
        data = generate_expression_matrix(
            num_modules=4, genes_per_module=5, num_background=20,
            noise=0.15, seed=2,
        )
        modules = data.modules()
        within, across = [], []
        for module, members in modules.items():
            for i in members:
                for j in members:
                    if i < j:
                        r = abs(np.corrcoef(data.matrix[i], data.matrix[j])[0, 1])
                        within.append(r)
        rng = np.random.default_rng(0)
        flat = [g for members in modules.values() for g in members]
        for _ in range(50):
            i, j = rng.choice(flat, 2, replace=False)
            if data.module_of[i] != data.module_of[j]:
                across.append(abs(np.corrcoef(data.matrix[i], data.matrix[j])[0, 1]))
        assert np.mean(within) > np.mean(across) + 0.2

    def test_gene_names_unique(self):
        data = generate_expression_matrix(seed=3)
        assert len(set(data.gene_names)) == data.num_genes


class TestPlugin:
    def test_all_distances_available(self):
        assert set(GENOMIC_DISTANCES) == {"pearson", "spearman", "l1"}
        for name in GENOMIC_DISTANCES:
            plugin = make_genomic_plugin(20, distance=name)
            assert plugin.meta.dim == 20

    def test_unknown_distance_rejected(self):
        with pytest.raises(KeyError):
            make_genomic_plugin(20, distance="euclid")

    def test_dataset_from_expression_ids_are_rows(self):
        data = generate_expression_matrix(
            num_modules=2, genes_per_module=3, num_background=4, seed=4
        )
        ds = dataset_from_expression(data)
        assert len(ds) == 10
        assert np.allclose(ds[3].features[0], data.matrix[3])

    @pytest.mark.parametrize("distance", ["pearson", "spearman", "l1"])
    def test_quality_by_distance(self, genomic_benchmark, distance):
        """All three distances find co-regulated genes on clean modules;
        correlation distances are the domain standard and should do well."""
        meta = meta_from_dataset(genomic_benchmark.dataset)
        plugin = make_genomic_plugin(
            genomic_benchmark.expression.num_experiments, distance=distance,
            meta=meta,
        )
        engine = SimilaritySearchEngine(plugin, SketchParams(256, meta, seed=0))
        for obj in genomic_benchmark.dataset:
            engine.insert(obj)
        result = evaluate_engine(
            engine, genomic_benchmark.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        )
        floor = 0.5 if distance == "l1" else 0.7
        assert result.quality.average_precision > floor

    def test_filtering_works_on_genomic(self, genomic_benchmark):
        meta = meta_from_dataset(genomic_benchmark.dataset)
        plugin = make_genomic_plugin(
            genomic_benchmark.expression.num_experiments, distance="l1", meta=meta
        )
        engine = SimilaritySearchEngine(plugin, SketchParams(256, meta, seed=0))
        for obj in genomic_benchmark.dataset:
            engine.insert(obj)
        filtered = evaluate_engine(
            engine, genomic_benchmark.suite, SearchMethod.FILTERING
        )
        brute = evaluate_engine(
            engine, genomic_benchmark.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        )
        assert filtered.quality.average_precision > 0.7 * brute.quality.average_precision
