"""Tests for the video data type (toolkit extension)."""

import numpy as np
import pytest

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams, meta_from_dataset
from repro.datatypes.video import (
    FRAME_RATE,
    VIDEO_DIM,
    detect_shots,
    frame_differences,
    generate_video_benchmark,
    make_video_plugin,
    perturb_video,
    random_video,
    render_video,
    shot_feature,
    signature_from_video,
    video_feature_meta,
)
from repro.evaltool import evaluate_engine


@pytest.fixture(scope="module")
def video_benchmark():
    return generate_video_benchmark(
        num_videos=6, renditions_per_video=3, num_distractors=15, seed=7
    )


class TestSynthesis:
    def test_render_shapes(self):
        rng = np.random.default_rng(0)
        video = random_video(rng, num_shots=3)
        frames, spans = render_video(video, 24, 24, rng)
        assert frames.ndim == 4 and frames.shape[1:] == (24, 24, 3)
        assert len(spans) == 3
        assert spans[-1][1] == frames.shape[0]

    def test_duration_maps_to_frames(self):
        rng = np.random.default_rng(1)
        video = random_video(rng, num_shots=2)
        frames, spans = render_video(video, 16, 16, rng)
        for shot, (s, e) in zip(video.shots, spans):
            assert e - s == max(2, int(shot.duration * FRAME_RATE))

    def test_perturbation_keeps_most_shots(self):
        rng = np.random.default_rng(2)
        video = random_video(rng, num_shots=5)
        variant = perturb_video(video, rng)
        assert len(variant.shots) >= 4
        # velocities stay aligned with the (possibly reduced) region count
        for shot in variant.shots:
            assert len(shot.velocities) == len(shot.scene.regions)


class TestShotDetection:
    def test_detects_exact_cut_count(self):
        rng = np.random.default_rng(3)
        for num_shots in (2, 4, 6):
            video = random_video(rng, num_shots=num_shots)
            frames, _ = render_video(video, 24, 24, rng)
            assert len(detect_shots(frames)) == num_shots

    def test_single_shot_video(self):
        rng = np.random.default_rng(4)
        video = random_video(rng, num_shots=1)
        frames, _ = render_video(video, 24, 24, rng)
        assert detect_shots(frames) == [(0, frames.shape[0])]

    def test_empty_and_tiny_inputs(self):
        assert detect_shots(np.zeros((0, 8, 8, 3))) == []
        assert detect_shots(np.zeros((1, 8, 8, 3))) == [(0, 1)]
        assert len(frame_differences(np.zeros((1, 8, 8, 3)))) == 0

    def test_spans_partition_frames(self):
        rng = np.random.default_rng(5)
        video = random_video(rng, num_shots=4)
        frames, _ = render_video(video, 24, 24, rng)
        spans = detect_shots(frames)
        assert spans[0][0] == 0
        assert spans[-1][1] == frames.shape[0]
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            assert e0 == s1


class TestFeatures:
    def test_dimension_and_bounds(self):
        rng = np.random.default_rng(6)
        video = random_video(rng, num_shots=2)
        frames, _ = render_video(video, 24, 24, rng)
        sig = signature_from_video(frames)
        meta = video_feature_meta()
        assert sig.features.shape[1] == VIDEO_DIM
        assert np.all(sig.features >= meta.min_values - 1e-9)
        assert np.all(sig.features <= meta.max_values + 1e-9)

    def test_motion_features_reflect_movement(self):
        static = np.broadcast_to(
            np.random.default_rng(7).random((1, 16, 16, 3)), (10, 16, 16, 3)
        ).copy()
        moving = static.copy()
        moving += np.random.default_rng(8).normal(0, 0.05, moving.shape)
        f_static = shot_feature(static)
        f_moving = shot_feature(np.clip(moving, 0, 1))
        assert f_moving[21] > f_static[21]  # mean inter-frame difference

    def test_weights_track_shot_length(self):
        rng = np.random.default_rng(9)
        frames = rng.random((30, 16, 16, 3))
        sig = signature_from_video(frames, spans=[(0, 10), (10, 30)])
        assert sig.weights[1] == pytest.approx(2 * sig.weights[0])

    def test_no_shots_rejected(self):
        with pytest.raises(ValueError):
            signature_from_video(np.zeros((5, 8, 8, 3)), spans=[])


class TestRetrieval:
    def test_renditions_rank_high(self, video_benchmark):
        bench = video_benchmark
        meta = meta_from_dataset(bench.dataset)
        plugin = make_video_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(128, meta, seed=0))
        for obj in bench.dataset:
            engine.insert(obj)
        result = evaluate_engine(
            engine, bench.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        )
        assert result.quality.average_precision > 0.6

    def test_shot_reordering_tolerated(self):
        """EMD over shots: the same shots in a different cut order still
        match (the video analogue of the audio word-order claim)."""
        rng = np.random.default_rng(10)
        video = random_video(rng, num_shots=4)
        from repro.datatypes.video.synthetic import VideoSpec

        reordered = VideoSpec(tuple(reversed(video.shots)))
        frames_a, _ = render_video(video, 24, 24, np.random.default_rng(1))
        frames_b, _ = render_video(reordered, 24, 24, np.random.default_rng(2))
        other, _ = render_video(random_video(rng, num_shots=4), 24, 24, rng)
        plugin = make_video_plugin()
        sig_a = signature_from_video(frames_a)
        sig_b = signature_from_video(frames_b)
        sig_o = signature_from_video(other)
        assert plugin.obj_distance(sig_a, sig_b) < plugin.obj_distance(sig_a, sig_o)

    def test_plugin_extracts_npy(self, tmp_path):
        rng = np.random.default_rng(11)
        frames, _ = render_video(random_video(rng, 2), 24, 24, rng)
        path = str(tmp_path / "clip.npy")
        np.save(path, frames)
        plugin = make_video_plugin()
        assert plugin.extract(path).dim == VIDEO_DIM
