"""Tests for the sensor data type (toolkit extension)."""

import numpy as np
import pytest

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams, meta_from_dataset
from repro.datatypes.sensor import (
    NUM_CHANNELS,
    SENSOR_DIM,
    SENSOR_RATE,
    episode_feature,
    generate_sensor_benchmark,
    make_sensor_plugin,
    random_recording,
    random_subject,
    segment_episodes,
    sensor_feature_meta,
    signature_from_recording,
    synthesize_recording,
)
from repro.evaltool import evaluate_engine


@pytest.fixture(scope="module")
def sensor_benchmark():
    return generate_sensor_benchmark(
        num_sequences=8, subjects_per_sequence=4, seed=11
    )


class TestSynthesis:
    def test_signal_shape_and_spans(self):
        rng = np.random.default_rng(0)
        spec = random_recording(rng, num_activities=4)
        signal, spans = synthesize_recording(spec, random_subject(rng), rng)
        assert signal.shape[1] == NUM_CHANNELS
        assert len(spans) == 4
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            assert s0 < e0 <= s1

    def test_subjects_differ(self):
        rng = np.random.default_rng(1)
        spec = random_recording(rng, num_activities=3)
        a, _ = synthesize_recording(spec, random_subject(rng), rng)
        b, _ = synthesize_recording(spec, random_subject(rng), rng)
        assert a.shape != b.shape or not np.allclose(a, b)


class TestSegmentation:
    def test_recovers_episode_count(self):
        rng = np.random.default_rng(2)
        spec = random_recording(rng, num_activities=5)
        signal, true_spans = synthesize_recording(spec, random_subject(rng), rng)
        spans = segment_episodes(signal)
        assert len(spans) == len(true_spans)

    def test_silence_only(self):
        assert segment_episodes(np.zeros((500, NUM_CHANNELS))) == []

    def test_spans_cover_activity(self):
        rng = np.random.default_rng(3)
        spec = random_recording(rng, num_activities=3)
        signal, true_spans = synthesize_recording(spec, random_subject(rng), rng)
        detected = segment_episodes(signal)
        # Each true episode midpoint falls inside some detected span.
        for s, e in true_spans:
            mid = (s + e) // 2
            assert any(ds <= mid < de for ds, de in detected)


class TestFeatures:
    def test_dimension(self):
        rng = np.random.default_rng(4)
        episode = rng.normal(size=(300, NUM_CHANNELS))
        assert episode_feature(episode).shape == (SENSOR_DIM,)

    def test_dominant_frequency_detected(self):
        t = np.arange(400) / SENSOR_RATE
        episode = np.stack([np.sin(2 * np.pi * 5.0 * t)] * NUM_CHANNELS, axis=1)
        features = episode_feature(episode)
        # dominant-frequency slot of channel 0 is index 4
        assert features[4] == pytest.approx(5.0, abs=0.5)

    def test_within_declared_bounds(self):
        meta = sensor_feature_meta()
        rng = np.random.default_rng(5)
        spec = random_recording(rng)
        signal, _ = synthesize_recording(spec, random_subject(rng), rng)
        sig = signature_from_recording(signal)
        assert np.all(sig.features >= meta.min_values - 1e-9)
        assert np.all(sig.features <= meta.max_values + 1e-9)

    def test_weights_track_length(self):
        rng = np.random.default_rng(6)
        signal = rng.normal(size=(900, NUM_CHANNELS))
        sig = signature_from_recording(signal, spans=[(0, 300), (300, 900)])
        assert sig.weights[1] == pytest.approx(2 * sig.weights[0])

    def test_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            signature_from_recording(np.zeros((100, NUM_CHANNELS)))


class TestRetrievalQuality:
    def test_same_sequence_ranks_high(self, sensor_benchmark):
        bench = sensor_benchmark
        meta = meta_from_dataset(bench.dataset)
        plugin = make_sensor_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(192, meta, seed=0))
        for obj in bench.dataset:
            engine.insert(obj)
        result = evaluate_engine(
            engine, bench.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        )
        assert result.quality.average_precision > 0.6

    def test_filtering_close_to_brute_force(self, sensor_benchmark):
        bench = sensor_benchmark
        meta = meta_from_dataset(bench.dataset)
        plugin = make_sensor_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(192, meta, seed=0))
        for obj in bench.dataset:
            engine.insert(obj)
        brute = evaluate_engine(
            engine, bench.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        ).quality.average_precision
        filtered = evaluate_engine(
            engine, bench.suite, SearchMethod.FILTERING
        ).quality.average_precision
        assert filtered > 0.75 * brute

    def test_plugin_extracts_npy(self, tmp_path):
        rng = np.random.default_rng(7)
        spec = random_recording(rng)
        signal, _ = synthesize_recording(spec, random_subject(rng), rng)
        path = str(tmp_path / "rec.npy")
        np.save(path, signal)
        plugin = make_sensor_plugin()
        obj = plugin.extract(path)
        assert obj.dim == SENSOR_DIM
