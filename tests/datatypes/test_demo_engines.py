"""Matrix test: build_demo_engine works for every registered data type."""

import pytest

from repro.core import SearchMethod
from repro.datatypes import DEFAULT_SKETCH_BITS, build_demo_engine
from repro.evaltool import evaluate_engine

# Small sizes keep the matrix fast; image/audio/video render real data.
_SIZES = {
    "image": 50,
    "audio": 28,
    "shape": 30,
    "genomic": 48,
    "sensor": 32,
    "video": 36,
}


@pytest.mark.parametrize("datatype", sorted(DEFAULT_SKETCH_BITS))
def test_demo_engine_end_to_end(datatype):
    engine, bench = build_demo_engine(datatype, size=_SIZES[datatype], seed=5)
    assert len(engine) > 0
    assert engine.sketcher.n_bits == DEFAULT_SKETCH_BITS[datatype]

    # Self-query sanity for every data type.
    first = next(iter(engine.objects))
    results = engine.query_by_id(first, top_k=3)
    assert results[0].object_id == first

    # The generated gold standard must be usable and score above chance.
    result = evaluate_engine(engine, bench.suite, SearchMethod.FILTERING)
    chance = 1.0 / len(engine)
    assert result.quality.average_precision > 5 * chance


def test_custom_sketch_bits_override():
    engine, _bench = build_demo_engine("genomic", size=48, sketch_bits=64)
    assert engine.sketcher.n_bits == 64
