"""Tests for the audio data type: synthesis, MFCC, segmentation, plugin."""

import numpy as np
import pytest

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams, meta_from_dataset
from repro.datatypes.audio import (
    AUDIO_DIM,
    NUM_COEFFS,
    NUM_WINDOWS,
    SAMPLE_RATE,
    audio_feature_meta,
    frame_energy,
    hz_to_mel,
    make_audio_plugin,
    mel_filterbank,
    mel_to_hz,
    mfcc,
    random_sentence,
    random_speaker,
    segment_feature,
    segment_utterances,
    signature_from_sentence,
    synthesize_sentence,
    zero_crossings,
)
from repro.evaltool import evaluate_engine


class TestSynthesis:
    def test_boundaries_cover_words(self):
        rng = np.random.default_rng(0)
        sentence = random_sentence(rng, num_words=5)
        signal, boundaries = synthesize_sentence(sentence, random_speaker(rng), rng)
        assert len(boundaries) == 5
        for (s0, e0), (s1, _e1) in zip(boundaries, boundaries[1:]):
            assert s0 < e0 <= s1  # ordered, non-overlapping
        assert boundaries[-1][1] == len(signal)

    def test_speakers_differ(self):
        rng = np.random.default_rng(1)
        sentence = random_sentence(rng, num_words=3)
        sig_a, _ = synthesize_sentence(sentence, random_speaker(rng), rng)
        sig_b, _ = synthesize_sentence(sentence, random_speaker(rng), rng)
        assert len(sig_a) != len(sig_b) or not np.allclose(sig_a, sig_b)

    def test_rate_scales_duration(self):
        rng = np.random.default_rng(2)
        sentence = random_sentence(rng, num_words=4)
        slow = random_speaker(rng)._replace if False else None
        from repro.datatypes.audio.synthetic import SpeakerProfile

        fast = SpeakerProfile(150.0, 1.0, 1.5, 0.8, 0.01)
        slow = SpeakerProfile(150.0, 1.0, 0.7, 0.8, 0.01)
        sig_fast, _ = synthesize_sentence(sentence, fast, np.random.default_rng(0))
        sig_slow, _ = synthesize_sentence(sentence, slow, np.random.default_rng(0))
        assert len(sig_slow) > len(sig_fast)


class TestMFCC:
    def test_mel_scale_roundtrip(self):
        hz = np.array([100.0, 1000.0, 4000.0])
        assert np.allclose(mel_to_hz(hz_to_mel(hz)), hz)

    def test_mel_scale_monotonic(self):
        hz = np.linspace(10, 4000, 100)
        mel = hz_to_mel(hz)
        assert np.all(np.diff(mel) > 0)

    def test_filterbank_shape_and_coverage(self):
        bank = mel_filterbank(26, 512, SAMPLE_RATE)
        assert bank.shape == (26, 257)
        assert np.all(bank >= 0)
        assert bank.sum(axis=1).min() > 0  # every filter is non-empty

    def test_mfcc_output_shape(self):
        rng = np.random.default_rng(3)
        signal = rng.normal(size=4000)
        coeffs = mfcc(signal, SAMPLE_RATE)
        assert coeffs.shape == (NUM_WINDOWS, NUM_COEFFS)

    def test_short_segment_padded(self):
        coeffs = mfcc(np.ones(100), SAMPLE_RATE)
        assert coeffs.shape == (NUM_WINDOWS, NUM_COEFFS)
        assert np.all(np.isfinite(coeffs))

    def test_distinguishes_frequencies(self):
        t = np.arange(8000) / SAMPLE_RATE
        low = np.sin(2 * np.pi * 300 * t)
        high = np.sin(2 * np.pi * 2500 * t)
        c_low, c_high = mfcc(low, SAMPLE_RATE), mfcc(high, SAMPLE_RATE)
        c_low2 = mfcc(low * 0.9, SAMPLE_RATE)
        d_same = np.abs(c_low - c_low2).mean()
        d_diff = np.abs(c_low - c_high).mean()
        assert d_diff > 3 * d_same


class TestUtteranceSegmentation:
    def test_detects_utterances_between_pauses(self):
        rng = np.random.default_rng(4)
        speaker = random_speaker(rng)
        s1, _ = synthesize_sentence(random_sentence(rng, 4), speaker, rng)
        s2, _ = synthesize_sentence(random_sentence(rng, 4), speaker, rng)
        pause = np.zeros(int(0.4 * SAMPLE_RATE))
        recording = np.concatenate([pause, s1, pause, s2, pause])
        spans = segment_utterances(recording, SAMPLE_RATE)
        assert len(spans) == 2

    def test_silence_only(self):
        spans = segment_utterances(np.zeros(SAMPLE_RATE), SAMPLE_RATE)
        assert spans == []

    def test_continuous_speech_single_span(self):
        rng = np.random.default_rng(5)
        s1, _ = synthesize_sentence(random_sentence(rng, 5), random_speaker(rng), rng)
        spans = segment_utterances(s1, SAMPLE_RATE, silence_windows=30)
        assert len(spans) == 1

    def test_frame_helpers(self):
        signal = np.concatenate([np.zeros(100), np.ones(100)])
        energy = frame_energy(signal, 100)
        assert energy[0] == pytest.approx(0.0)
        assert energy[1] == pytest.approx(1.0)
        t = np.arange(1000)
        zc = zero_crossings(np.sin(2 * np.pi * t / 20), 200)
        assert np.all(zc >= 15)  # ~20 crossings per 200-sample window

    def test_empty_signal(self):
        assert len(frame_energy(np.zeros(0), 10)) == 0
        assert segment_utterances(np.zeros(5), SAMPLE_RATE) == []


class TestSignature:
    def test_dimensions(self):
        rng = np.random.default_rng(6)
        sentence = random_sentence(rng, 4)
        signal, bounds = synthesize_sentence(sentence, random_speaker(rng), rng)
        sig = signature_from_sentence(signal, bounds)
        assert sig.features.shape == (4, AUDIO_DIM)
        assert sig.weights.sum() == pytest.approx(1.0)

    def test_weights_track_length(self):
        rng = np.random.default_rng(7)
        signal = rng.normal(size=3000)
        sig = signature_from_sentence(signal, [(0, 1000), (1000, 3000)])
        assert sig.weights[1] == pytest.approx(2 * sig.weights[0])

    def test_empty_boundaries_rejected(self):
        with pytest.raises(ValueError):
            signature_from_sentence(np.zeros(100), [])

    def test_degenerate_boundary_rejected(self):
        with pytest.raises(ValueError):
            signature_from_sentence(np.zeros(100), [(50, 50)])

    def test_features_within_static_bounds(self):
        meta = audio_feature_meta()
        rng = np.random.default_rng(8)
        for _ in range(3):
            sentence = random_sentence(rng, 3)
            signal, bounds = synthesize_sentence(sentence, random_speaker(rng), rng)
            sig = signature_from_sentence(signal, bounds)
            assert np.all(sig.features >= meta.min_values - 1e-9)
            assert np.all(sig.features <= meta.max_values + 1e-9)


class TestEndToEndQuality:
    def test_same_sentence_ranks_high(self, audio_benchmark):
        meta = meta_from_dataset(audio_benchmark.dataset)
        plugin = make_audio_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(600, meta, seed=0))
        for obj in audio_benchmark.dataset:
            engine.insert(obj)
        result = evaluate_engine(
            engine, audio_benchmark.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        )
        assert result.quality.average_precision > 0.6

    def test_sketch_close_to_original(self, audio_benchmark):
        meta = meta_from_dataset(audio_benchmark.dataset)
        plugin = make_audio_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(600, meta, seed=0))
        for obj in audio_benchmark.dataset:
            engine.insert(obj)
        original = evaluate_engine(
            engine, audio_benchmark.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        ).quality.average_precision
        sketch = evaluate_engine(
            engine, audio_benchmark.suite, SearchMethod.BRUTE_FORCE_SKETCH
        ).quality.average_precision
        assert sketch > 0.7 * original
