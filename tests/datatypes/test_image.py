"""Tests for the image data type: scenes, segmentation, features, plugin."""

import numpy as np
import pytest

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams
from repro.datatypes.image import (
    IMAGE_DIM,
    SimplicityBaseline,
    extract_features,
    generate_bulk_signatures,
    generate_image_benchmark,
    global_features,
    image_feature_meta,
    make_image_plugin,
    perturb_scene,
    quantize_colors,
    random_scene,
    render_scene,
    segment_image,
    signature_from_image,
)
from repro.evaltool import evaluate_engine


class TestSyntheticScenes:
    def test_render_shape_and_range(self):
        rng = np.random.default_rng(0)
        image = render_scene(random_scene(rng), 32, 48, rng)
        assert image.shape == (32, 48, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic_spec(self):
        rng = np.random.default_rng(1)
        scene = random_scene(rng)
        img1 = render_scene(scene, 32, 32, np.random.default_rng(5))
        img2 = render_scene(scene, 32, 32, np.random.default_rng(5))
        assert np.array_equal(img1, img2)

    def test_perturbation_changes_pixels_but_not_structure(self):
        rng = np.random.default_rng(2)
        scene = random_scene(rng)
        variant = perturb_scene(scene, rng)
        img_a = render_scene(scene, 32, 32, rng)
        img_b = render_scene(variant, 32, 32, rng)
        assert not np.array_equal(img_a, img_b)
        # Structure preserved: most regions survive perturbation.
        assert len(variant.regions) >= len(scene.regions) - 1

    def test_num_regions_in_range(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            assert 2 <= len(random_scene(rng).regions) <= 6


class TestSegmentation:
    def test_label_map_shape_and_contiguity(self):
        rng = np.random.default_rng(4)
        image = render_scene(random_scene(rng), 40, 40, rng)
        labels = segment_image(image)
        assert labels.shape == (40, 40)
        ids = np.unique(labels)
        assert np.array_equal(ids, np.arange(len(ids)))

    def test_max_segments_respected(self):
        rng = np.random.default_rng(5)
        image = render_scene(random_scene(rng, num_regions=6), 48, 48, rng)
        labels = segment_image(image, max_segments=4)
        assert len(np.unique(labels)) <= 4

    def test_quantize_codes_bounded(self):
        rng = np.random.default_rng(6)
        image = rng.random((8, 8, 3))
        codes = quantize_colors(image, levels=4)
        assert codes.min() >= 0 and codes.max() < 64

    def test_uniform_image_single_segment(self):
        image = np.full((16, 16, 3), 0.5)
        labels = segment_image(image)
        assert len(np.unique(labels)) == 1

    def test_two_halves_two_segments(self):
        image = np.zeros((16, 16, 3))
        image[:, 8:] = 0.9
        labels = segment_image(image)
        assert len(np.unique(labels)) == 2
        assert len(np.unique(labels[:, :8])) == 1


class TestFeatures:
    def test_dimension_and_weights(self):
        rng = np.random.default_rng(7)
        image = render_scene(random_scene(rng), 40, 40, rng)
        labels = segment_image(image)
        feats, weights = extract_features(image, labels)
        assert feats.shape[1] == IMAGE_DIM
        assert weights.sum() == pytest.approx(1.0)

    def test_weights_follow_sqrt_size(self):
        image = np.zeros((16, 16, 3))
        image[:, 12:] = 0.9  # 3:1 area split
        labels = segment_image(image)
        _feats, weights = extract_features(image, labels)
        # sqrt(192):sqrt(64) = 1.732 ratio
        assert max(weights) / min(weights) == pytest.approx(np.sqrt(3), rel=0.05)

    def test_features_within_declared_bounds(self):
        meta = image_feature_meta()
        rng = np.random.default_rng(8)
        for _ in range(5):
            image = render_scene(random_scene(rng), 32, 32, rng)
            sig = signature_from_image(image)
            assert np.all(sig.features >= meta.min_values - 1e-9)
            assert np.all(sig.features <= meta.max_values + 1e-9)

    def test_centroid_feature_tracks_position(self):
        image = np.zeros((20, 20, 3))
        image[2:6, 2:6] = 0.9  # small bright box at top-left
        labels = segment_image(image)
        feats, _ = extract_features(image, labels)
        small = feats[np.argmin([np.sum(labels == i) for i in range(feats.shape[0])])]
        assert small[12] < 0.5 and small[13] < 0.5  # centroid y, x


class TestPlugin:
    def test_similar_images_closer_than_random(self):
        rng = np.random.default_rng(9)
        plugin = make_image_plugin()
        scene = random_scene(rng)
        a = signature_from_image(render_scene(scene, 40, 40, rng))
        b = signature_from_image(render_scene(perturb_scene(scene, rng), 40, 40, rng))
        c = signature_from_image(render_scene(random_scene(rng), 40, 40, rng))
        assert plugin.obj_distance(a, b) < plugin.obj_distance(a, c)

    def test_seg_extract_from_npy(self, tmp_path):
        rng = np.random.default_rng(10)
        image = render_scene(random_scene(rng), 32, 32, rng)
        path = str(tmp_path / "img.npy")
        np.save(path, image)
        plugin = make_image_plugin()
        obj = plugin.extract(path)
        assert obj.dim == IMAGE_DIM

    def test_quality_beats_simplicity_baseline(self, image_benchmark):
        """Table 1's qualitative claim: region-based Ferret > global CBIR."""
        from repro.evaltool.metrics import QualityScores, score_query

        plugin = make_image_plugin()
        engine = SimilaritySearchEngine(plugin, SketchParams(96, plugin.meta, seed=0))
        baseline = SimplicityBaseline()
        for obj in image_benchmark.dataset:
            engine.insert(obj)
            baseline.insert(obj.object_id, image_benchmark.images[obj.object_id])

        ferret = evaluate_engine(
            engine, image_benchmark.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        ).quality.average_precision

        base_scores = []
        for sim_set in image_benchmark.suite.sets:
            qid = sim_set.query_id
            results = baseline.query(
                image_benchmark.images[qid], top_k=30, exclude_id=qid
            )
            base_scores.append(
                score_query([r.object_id for r in results], sim_set.members,
                            qid, len(image_benchmark.dataset))
            )
        base = QualityScores.mean(base_scores).average_precision
        assert ferret > base


class TestBulkSignatures:
    def test_counts_and_segments(self):
        ds = generate_bulk_signatures(200, avg_segments=10.8, seed=0)
        assert len(ds) == 200
        assert ds.avg_segments == pytest.approx(10.8, rel=0.15)

    def test_features_in_bounds(self):
        meta = image_feature_meta()
        ds = generate_bulk_signatures(50, seed=1)
        stacked = np.concatenate([o.features for o in ds])
        assert np.all(stacked >= meta.min_values - 1e-9)
        assert np.all(stacked <= meta.max_values + 1e-9)


class TestSimplicityBaseline:
    def test_global_features_dim(self):
        image = np.random.default_rng(0).random((16, 16, 3))
        assert global_features(image).shape == (21,)

    def test_self_query_top(self):
        rng = np.random.default_rng(11)
        baseline = SimplicityBaseline()
        images = [rng.random((16, 16, 3)) for _ in range(10)]
        for i, img in enumerate(images):
            baseline.insert(i, img)
        results = baseline.query(images[4], top_k=1)
        assert results[0].object_id == 4
        assert results[0].distance == pytest.approx(0.0)
