"""Tests for the 3D shape data type: meshes, voxelization, SHD, plugin."""

import numpy as np
import pytest

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams, meta_from_dataset
from repro.datatypes.shape import (
    SHAPE_CLASSES,
    SHAPE_DIM,
    ShdL2Baseline,
    box,
    descriptor_from_mesh,
    ellipsoid,
    generate_shape_benchmark,
    make_instance,
    make_shape_plugin,
    merge,
    normalize_points,
    random_rotation,
    sample_surface,
    shd_descriptor,
    shell_decomposition,
    signature_from_mesh,
    torus,
    voxelize,
)
from repro.evaltool import evaluate_engine


class TestMeshes:
    def test_box_geometry(self):
        vertices, faces = box(1.0, 2.0, 3.0)
        assert vertices.shape == (8, 3)
        assert faces.shape == (12, 3)
        assert vertices[:, 0].max() == 1.0 and vertices[:, 2].max() == 3.0

    def test_ellipsoid_on_surface(self):
        vertices, _ = ellipsoid(2.0, 1.0, 0.5, n=12)
        # implicit equation ~ 1 on the surface
        vals = (vertices[:, 0] / 2) ** 2 + vertices[:, 1] ** 2 + (vertices[:, 2] / 0.5) ** 2
        assert np.allclose(vals, 1.0, atol=1e-9)

    def test_merge_offsets_faces(self):
        m = merge(box(1, 1, 1), box(1, 1, 1, center=(5, 0, 0)))
        vertices, faces = m
        assert vertices.shape[0] == 16
        assert faces.max() == 15

    def test_random_rotation_is_orthonormal(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            r = random_rotation(rng)
            assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
            assert np.linalg.det(r) == pytest.approx(1.0)

    def test_all_classes_generate(self):
        rng = np.random.default_rng(1)
        for shape_class in SHAPE_CLASSES:
            vertices, faces = make_instance(shape_class, rng)
            assert vertices.shape[1] == 3
            assert faces.shape[1] == 3
            assert faces.max() < len(vertices)


class TestVoxelization:
    def test_sample_surface_counts(self):
        mesh = box(1, 1, 1)
        points = sample_surface(*mesh, num_samples=500)
        assert points.shape == (500, 3)
        # All samples lie on the box surface: one coordinate at +-1.
        at_face = np.isclose(np.abs(points), 1.0, atol=1e-9).any(axis=1)
        assert at_face.all()

    def test_area_weighting(self):
        """A slab's samples land mostly on its two big faces."""
        mesh = box(1.0, 1.0, 0.01)
        points = sample_surface(*mesh, num_samples=2000, rng=np.random.default_rng(0))
        on_top_bottom = np.isclose(np.abs(points[:, 2]), 0.01, atol=1e-9).mean()
        assert on_top_bottom > 0.9

    def test_normalize_centers_and_scales(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(500, 3)) * 7 + np.array([10.0, -3.0, 4.0])
        normalized = normalize_points(points)
        assert np.allclose(normalized.mean(axis=0), 0.0, atol=1e-9)
        assert np.linalg.norm(normalized, axis=1).mean() == pytest.approx(0.5)

    def test_voxelize_grid(self):
        points = np.array([[0.0, 0.0, 0.0], [0.9, 0.9, 0.9]])
        grid = voxelize(points, grid_size=64)
        assert grid.shape == (64, 64, 64)
        assert grid.sum() == 2

    def test_shell_decomposition_radii(self):
        grid = np.zeros((64, 64, 64), dtype=bool)
        grid[32, 32, 34] = True  # radius ~2 voxels -> inner shell
        grid[32, 32, 62] = True  # radius ~30 voxels -> outer shell
        shells = shell_decomposition(grid)
        assert len(shells) == 32
        nonempty = [i for i, s in enumerate(shells) if len(s)]
        assert len(nonempty) == 2
        assert nonempty[0] < 5 and nonempty[1] > 27

    def test_shell_directions_unit(self):
        rng = np.random.default_rng(3)
        pts = normalize_points(rng.normal(size=(300, 3)))
        shells = shell_decomposition(voxelize(pts))
        for shell in shells:
            if len(shell):
                assert np.allclose(np.linalg.norm(shell, axis=1), 1.0, atol=1e-9)


class TestSHD:
    def test_descriptor_dimension(self):
        mesh = make_instance(SHAPE_CLASSES[0], np.random.default_rng(4))
        d = descriptor_from_mesh(mesh, num_samples=2000)
        assert d.shape == (SHAPE_DIM,)
        assert np.all(d >= 0)

    def test_rotation_invariance(self):
        rng = np.random.default_rng(5)
        mesh = make_instance(SHAPE_CLASSES[12], rng, rotate=False)  # dumbbell
        d1 = descriptor_from_mesh(mesh, num_samples=4000, rng=np.random.default_rng(0))
        rot = random_rotation(rng)
        mesh_rot = (mesh[0] @ rot.T, mesh[1])
        d2 = descriptor_from_mesh(mesh_rot, num_samples=4000, rng=np.random.default_rng(1))
        rel = np.abs(d1 - d2).sum() / np.abs(d1).sum()
        assert rel < 0.25  # grid + sampling noise, but far below inter-class

    def test_rotation_distance_below_interclass(self):
        rng = np.random.default_rng(6)
        sphere = make_instance(SHAPE_CLASSES[0], rng, rotate=False)
        rot = random_rotation(rng)
        sphere_rot = (sphere[0] @ rot.T, sphere[1])
        cigar = make_instance(SHAPE_CLASSES[2], rng, rotate=False)
        d_sphere = descriptor_from_mesh(sphere, num_samples=3000)
        d_rot = descriptor_from_mesh(sphere_rot, num_samples=3000)
        d_cigar = descriptor_from_mesh(cigar, num_samples=3000)
        same = np.abs(d_sphere - d_rot).sum()
        different = np.abs(d_sphere - d_cigar).sum()
        assert different > 2 * same

    def test_sphere_energy_concentrated_at_degree_zero(self):
        """A sphere's shells are isotropic: degree-0 dominates every
        individual higher degree (which carry only Monte-Carlo noise)."""
        mesh = ellipsoid(1.0, 1.0, 1.0, n=24)
        d = descriptor_from_mesh(mesh, num_samples=6000)
        per_degree = d.reshape(32, 17)
        occupied = per_degree.sum(axis=1) > 0
        assert occupied.any()
        for row in per_degree[occupied]:
            assert row[0] > 3 * row[1:].max()

    def test_signature_single_segment(self):
        mesh = make_instance(SHAPE_CLASSES[3], np.random.default_rng(7))
        sig = signature_from_mesh(mesh)
        assert sig.num_segments == 1
        assert sig.weights[0] == pytest.approx(1.0)


class TestShapeSearchQuality:
    def test_ferret_close_to_l2_baseline(self, shape_benchmark):
        """Table 1: Ferret (l1 + sketches) ~= SHD (l2 full vectors)."""
        from repro.evaltool.metrics import QualityScores, score_query

        meta = meta_from_dataset(shape_benchmark.dataset)
        plugin = make_shape_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(800, meta, seed=0))
        baseline = ShdL2Baseline()
        for obj in shape_benchmark.dataset:
            engine.insert(obj)
            baseline.insert(obj.object_id, obj.features[0])

        ferret = evaluate_engine(
            engine, shape_benchmark.suite, SearchMethod.BRUTE_FORCE_SKETCH
        ).quality.average_precision

        base_scores = []
        for sim_set in shape_benchmark.suite.sets:
            qid = sim_set.query_id
            results = baseline.query(
                shape_benchmark.dataset[qid].features[0], top_k=30, exclude_id=qid
            )
            base_scores.append(
                score_query([r.object_id for r in results], sim_set.members,
                            qid, len(shape_benchmark.dataset))
            )
        base = QualityScores.mean(base_scores).average_precision
        assert ferret > 0.65 * base  # "almost the same quality" at 22:1 savings

    def test_storage_ratio_matches_paper_scale(self, shape_benchmark):
        meta = meta_from_dataset(shape_benchmark.dataset)
        plugin = make_shape_plugin(meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(800, meta, seed=0))
        for obj in shape_benchmark.dataset:
            engine.insert(obj)
        stats = engine.stats()
        # 544 dims x 32 bits = 17,408 (Table 1 prints 17,472, but its own
        # 21.8:1 ratio against the 800-bit sketch matches 544 x 32).
        assert stats.feature_bits_per_vector == 17_408
        assert stats.compression_ratio == pytest.approx(21.76, rel=0.01)
