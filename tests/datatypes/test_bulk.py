"""Tests for the bulk feature-space dataset generators (speed substrates)."""

import numpy as np
import pytest

from repro.core import FeatureMeta
from repro.datatypes.bulk import (
    bulk_audio_dataset,
    bulk_image_dataset,
    bulk_shape_dataset,
    clustered_dataset,
)


class TestClusteredDataset:
    def test_count_and_segments(self):
        meta = FeatureMeta(6, np.zeros(6), np.ones(6))
        ds = clustered_dataset(100, meta, avg_segments=5.0, seed=0)
        assert len(ds) == 100
        assert ds.avg_segments == pytest.approx(5.0, rel=0.25)

    def test_single_segment_mode(self):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        ds = clustered_dataset(30, meta, avg_segments=1.0, seed=1)
        assert all(obj.num_segments == 1 for obj in ds)

    def test_features_in_bounds(self):
        meta = FeatureMeta(5, -np.ones(5), 2 * np.ones(5))
        ds = clustered_dataset(40, meta, avg_segments=3.0, seed=2)
        stacked = np.concatenate([o.features for o in ds])
        assert np.all(stacked >= meta.min_values)
        assert np.all(stacked <= meta.max_values)

    def test_deterministic_by_seed(self):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        a = clustered_dataset(10, meta, 2.0, seed=7)
        b = clustered_dataset(10, meta, 2.0, seed=7)
        for oa, ob in zip(a, b):
            assert np.array_equal(oa.features, ob.features)

    def test_clustering_present(self):
        """Objects must be clustered, not uniform: nearest-neighbor
        distances far below the uniform-expectation scale."""
        meta = FeatureMeta(8, np.zeros(8), np.ones(8))
        ds = clustered_dataset(
            200, meta, avg_segments=1.0, num_prototypes=8, spread=0.02, seed=3
        )
        feats = np.concatenate([o.features for o in ds])
        sample = feats[:50]
        nn_dists = []
        for i, row in enumerate(sample):
            d = np.abs(feats - row).sum(axis=1)
            d[i] = np.inf
            nn_dists.append(d.min())
        # Uniform 8-dim points average ~2.7 l1 apart; clusters sit much closer.
        assert np.median(nn_dists) < 0.5


class TestDomainBulkGenerators:
    def test_image_statistics(self):
        ds = bulk_image_dataset(300, seed=0)
        assert len(ds) == 300
        assert ds.avg_segments == pytest.approx(10.8, rel=0.15)
        assert next(iter(ds)).dim == 14

    def test_audio_statistics(self):
        ds = bulk_audio_dataset(200, seed=1)
        assert ds.avg_segments == pytest.approx(8.6, rel=0.2)
        assert next(iter(ds)).dim == 192

    def test_shape_statistics(self):
        ds = bulk_shape_dataset(100, seed=2)
        assert all(obj.num_segments == 1 for obj in ds)
        assert next(iter(ds)).dim == 544
        stacked = np.concatenate([o.features for o in ds])
        assert np.all(stacked >= 0)

    def test_shape_prototypes_are_diverse(self):
        ds = bulk_shape_dataset(60, seed=3)
        feats = np.concatenate([o.features for o in ds])
        # Multiple distinct clusters: pairwise distances bimodal — the
        # 90th percentile far exceeds the 10th.
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, len(feats), (200, 2))
        dists = [np.abs(feats[i] - feats[j]).sum() for i, j in pairs if i != j]
        assert np.percentile(dists, 90) > 3 * np.percentile(dists, 10)
