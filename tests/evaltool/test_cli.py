"""Tests for the evaluation tool's CLI entry point."""

import pytest

from repro.evaltool.benchmark import main, save_benchmark, BenchmarkSuite


class TestEvalCli:
    def test_end_to_end_genomic(self, tmp_path, capsys):
        """Drive the CLI against a demo engine with a matching benchmark."""
        from repro.datatypes import build_demo_engine

        # Build the same demo engine the CLI will construct to learn the
        # gold-standard sets, then write them to a benchmark file.
        _engine, bench = build_demo_engine("genomic", size=48, seed=42)
        path = str(tmp_path / "bench.txt")
        save_benchmark(bench.suite, path)

        rc = main([path, "--datatype", "genomic", "--size", "48",
                   "--method", "brute_force_original"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "average_precision" in out
        assert "avg_query_seconds" in out

    def test_method_choices_enforced(self, tmp_path):
        suite = BenchmarkSuite("x")
        suite.add("a", [0, 1])
        path = str(tmp_path / "b.txt")
        save_benchmark(suite, path)
        with pytest.raises(SystemExit):
            main([path, "--method", "warp-drive"])


class TestReportFlag:
    def test_report_prints_per_set_breakdown(self, tmp_path, capsys):
        from repro.datatypes import build_demo_engine

        _engine, bench = build_demo_engine("genomic", size=48, seed=42)
        path = str(tmp_path / "bench.txt")
        save_benchmark(bench.suite, path)
        rc = main([path, "--datatype", "genomic", "--size", "48",
                   "--method", "brute_force_original", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg precision" in out
        assert "module000" in out  # per-set rows present
