"""Tests for search-quality metrics, including the paper's own examples."""

import pytest

from repro.evaltool import (
    QualityScores,
    average_precision,
    first_tier,
    score_query,
    second_tier,
)


class TestPaperExamples:
    """Section 6.2 walks through examples for each metric — verbatim checks."""

    def test_first_tier_example(self):
        # Q = {q1, q2, q3}, query q1, top-2 results are r1, q2 => 50%.
        results = ["r1", "q2"]
        assert first_tier(results, {"q1", "q2", "q3"}, "q1") == pytest.approx(0.5)

    def test_second_tier_example(self):
        # top-4 = r1, q2, q3, r4 => 100%.
        results = ["r1", "q2", "q3", "r4"]
        assert second_tier(results, {"q1", "q2", "q3"}, "q1") == pytest.approx(1.0)

    def test_average_precision_example(self):
        # results r1, q2, q3, r4 => 1/2 * (1/2 + 2/3) = 0.583...
        results = ["r1", "q2", "q3", "r4"]
        ap = average_precision(results, {"q1", "q2", "q3"}, "q1", dataset_size=100)
        assert ap == pytest.approx(0.5 * (1 / 2 + 2 / 3))


class TestFirstSecondTier:
    def test_perfect_retrieval(self):
        assert first_tier([2, 3], {1, 2, 3}, 1) == 1.0
        assert second_tier([2, 3], {1, 2, 3}, 1) == 1.0

    def test_total_miss(self):
        assert first_tier([9, 8, 7, 6], {1, 2, 3}, 1) == 0.0

    def test_second_tier_at_least_first_tier(self):
        results = [9, 2, 3, 8]
        st1 = first_tier(results, {1, 2, 3}, 1)
        st2 = second_tier(results, {1, 2, 3}, 1)
        assert st2 >= st1

    def test_query_not_counted_as_target(self):
        # query id present in results must not inflate the score
        assert first_tier([1, 9], {1, 2, 3}, 1) == 0.0

    def test_singleton_set_rejected(self):
        with pytest.raises(ValueError):
            first_tier([1], {5}, 5)


class TestAveragePrecision:
    def test_perfect_is_one(self):
        assert average_precision([2, 3, 4], {1, 2, 3, 4}, 1, 100) == pytest.approx(1.0)

    def test_missing_target_gets_default_rank(self):
        # one of two targets never retrieved -> rank = dataset_size
        ap = average_precision([2], {1, 2, 3}, 1, dataset_size=1000)
        assert ap == pytest.approx(0.5 * (1 / 1 + 2 / 1000))

    def test_monotone_in_rank(self):
        better = average_precision([2, 9, 3], {1, 2, 3}, 1, 100)
        worse = average_precision([9, 2, 8, 7, 3], {1, 2, 3}, 1, 100)
        assert better > worse

    def test_bounded_01(self):
        ap = average_precision([7, 8, 9], {1, 2, 3}, 1, 10)
        assert 0.0 <= ap <= 1.0


class TestQualityScores:
    def test_mean(self):
        scores = [QualityScores(1.0, 1.0, 1.0), QualityScores(0.0, 0.5, 0.0)]
        mean = QualityScores.mean(scores)
        assert mean.average_precision == pytest.approx(0.5)
        assert mean.first_tier == pytest.approx(0.75)

    def test_mean_empty(self):
        assert QualityScores.mean([]) == QualityScores(0.0, 0.0, 0.0)

    def test_score_query_bundles_all(self):
        scores = score_query(["r1", "q2", "q3", "r4"], {"q1", "q2", "q3"}, "q1", 100)
        assert scores.first_tier == pytest.approx(0.5)
        assert scores.second_tier == pytest.approx(1.0)
        assert scores.average_precision == pytest.approx(0.5 * (1 / 2 + 2 / 3))
