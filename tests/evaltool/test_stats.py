"""Tests for the evaluation statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaltool.metrics import QualityScores
from repro.evaltool.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    latency_percentiles,
    paired_difference,
    quality_summary,
)


class TestBootstrapCI:
    def test_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.6, 0.1, 50)
        ci = bootstrap_ci(values)
        assert ci.low <= ci.mean <= ci.high
        assert ci.mean == pytest.approx(values.mean())

    def test_constant_sample_degenerate_interval(self):
        ci = bootstrap_ci([0.5] * 20)
        assert ci.low == ci.high == ci.mean == 0.5

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = bootstrap_ci(rng.normal(0, 1, 10), seed=1)
        large = bootstrap_ci(rng.normal(0, 1, 1000), seed=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_contains_and_str(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        assert 0.5 in ci
        assert 0.7 not in ci
        assert "95%" in str(ci)

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=3, max_size=60))
    def test_property_coverage_sanity(self, values):
        ci = bootstrap_ci(values, seed=3)
        assert ci.low <= ci.high
        assert min(values) - 1e-9 <= ci.low
        assert ci.high <= max(values) + 1e-9


class TestQualitySummary:
    def test_keys_and_consistency(self):
        scores = [QualityScores(0.6, 0.5, 0.7), QualityScores(0.8, 0.7, 0.9)]
        summary = quality_summary(scores)
        assert set(summary) == {"average_precision", "first_tier", "second_tier"}
        assert summary["average_precision"].mean == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quality_summary([])


class TestPairedDifference:
    def test_clear_improvement_excludes_zero(self):
        rng = np.random.default_rng(2)
        base = rng.uniform(0.4, 0.6, 40)
        improved = base + 0.1 + rng.normal(0, 0.01, 40)
        ci = paired_difference(improved, base)
        assert ci.low > 0.0

    def test_noise_includes_zero(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0.4, 0.6, 40)
        b = a + rng.normal(0, 0.05, 40)
        ci = paired_difference(a, b)
        assert 0.0 in ci

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_difference([1.0, 2.0], [1.0])


class TestLatencyPercentiles:
    def test_summary_keys(self):
        out = latency_percentiles([0.1, 0.2, 0.3, 10.0])
        assert set(out) == {"mean", "max", "p50", "p90", "p99"}
        assert out["max"] == 10.0
        assert out["p50"] <= out["p90"] <= out["p99"] <= out["max"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_percentiles([])
