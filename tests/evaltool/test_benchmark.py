"""Tests for the performance evaluation tool's benchmark driver."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.evaltool import (
    BenchmarkSuite,
    SimilaritySet,
    evaluate_engine,
    load_benchmark,
    save_benchmark,
)


class TestSimilaritySet:
    def test_query_is_first_member(self):
        s = SimilaritySet("s", (3, 1, 2))
        assert s.query_id == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SimilaritySet("s", (1,))


class TestBenchmarkFileFormat:
    def test_roundtrip(self, tmp_path):
        suite = BenchmarkSuite("demo")
        suite.add("alpha", [1, 2, 3])
        suite.add("beta", [4, 5])
        path = str(tmp_path / "bench.txt")
        save_benchmark(suite, path)
        loaded = load_benchmark(path)
        assert len(loaded) == 2
        assert loaded.sets[0].members == (1, 2, 3)
        assert loaded.sets[1].name == "beta"

    def test_comments_and_blank_lines(self, tmp_path):
        path = str(tmp_path / "bench.txt")
        path_content = "# comment\n\nset one 1 2 3\n"
        with open(path, "w") as fh:
            fh.write(path_content)
        suite = load_benchmark(path)
        assert len(suite) == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as fh:
            fh.write("notaset 1 2 3\n")
        with pytest.raises(ValueError):
            load_benchmark(path)


class TestEvaluateEngine:
    def _engine_with_clusters(self):
        """3 clusters of 4 near-identical objects + noise objects."""
        meta = FeatureMeta(6, np.zeros(6), np.ones(6))
        engine = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(256, meta, seed=0)
        )
        rng = np.random.default_rng(0)
        suite = BenchmarkSuite("clusters")
        for c in range(3):
            center = rng.random((2, 6))
            members = []
            for _ in range(4):
                feats = np.clip(center + rng.normal(0, 0.01, center.shape), 0, 1)
                members.append(engine.insert(ObjectSignature(feats, [1, 1])))
            suite.add(f"c{c}", members)
        for _ in range(20):
            engine.insert(ObjectSignature(rng.random((2, 6)), [1, 1]))
        return engine, suite

    def test_high_quality_on_separable_clusters(self):
        engine, suite = self._engine_with_clusters()
        result = evaluate_engine(engine, suite, SearchMethod.BRUTE_FORCE_ORIGINAL)
        assert result.quality.average_precision > 0.9
        assert result.num_queries == 3

    def test_queries_per_set(self):
        engine, suite = self._engine_with_clusters()
        result = evaluate_engine(
            engine, suite, SearchMethod.BRUTE_FORCE_ORIGINAL, queries_per_set=2
        )
        assert result.num_queries == 6

    def test_unknown_object_raises(self):
        engine, suite = self._engine_with_clusters()
        suite.add("ghost", [900, 901])
        with pytest.raises(KeyError):
            evaluate_engine(engine, suite)

    def test_row_shape(self):
        engine, suite = self._engine_with_clusters()
        row = evaluate_engine(engine, suite).row()
        assert set(row) == {
            "average_precision", "first_tier", "second_tier", "avg_query_seconds",
        }


class TestLatencyQuantiles:
    def _result(self):
        meta = FeatureMeta(6, np.zeros(6), np.ones(6))
        engine = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(256, meta, seed=0)
        )
        rng = np.random.default_rng(0)
        suite = BenchmarkSuite("clusters")
        for c in range(3):
            members = [
                engine.insert(ObjectSignature(rng.random((2, 6)), [1, 1]))
                for _ in range(4)
            ]
            suite.add(f"c{c}", members)
        return evaluate_engine(engine, suite, queries_per_set=2)

    def test_query_seconds_recorded_per_query(self):
        result = self._result()
        assert len(result.query_seconds) == result.num_queries
        assert all(t > 0 for t in result.query_seconds)
        assert sum(result.query_seconds) / result.num_queries == pytest.approx(
            result.avg_query_seconds
        )

    def test_quantiles_exact_and_monotone(self):
        result = self._result()
        qs = [result.latency_quantile(q) for q in (0.0, 0.5, 0.95, 1.0)]
        assert qs == sorted(qs)
        assert qs[0] == min(result.query_seconds)
        assert qs[-1] == max(result.query_seconds)
        with pytest.raises(ValueError):
            result.latency_quantile(1.5)

    def test_empty_is_nan(self):
        import math

        from repro.evaltool.benchmark import EvaluationResult
        from repro.evaltool.metrics import QualityScores

        empty = EvaluationResult(
            suite_name="s",
            method=SearchMethod.FILTERING,
            quality=QualityScores(0, 0, 0),
            per_query=[],
            avg_query_seconds=0.0,
            num_queries=0,
        )
        assert math.isnan(empty.latency_quantile(0.5))

    def test_report_includes_latency_line(self):
        result = self._result()
        report = result.report()
        assert "latency p50" in report
        assert "p95" in report and "p99" in report
