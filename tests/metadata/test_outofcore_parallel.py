"""Out-of-core scans served by the shared-memory worker pool.

The attached-pool path must return byte-identical ``[(owner, dist)]``
lists to the serial blocked heap scan — including under distance ties
(both sides break them by smallest scan position) and per-query
thresholds (masked worker-side, before selection).
"""

import numpy as np
import pytest

from repro.core import ParallelFilterPool
from repro.metadata import MetadataManager
from repro.metadata.outofcore import OutOfCoreSketchStore

N_WORDS = 2


@pytest.fixture()
def store(tmp_path):
    manager = MetadataManager(str(tmp_path / "oocp"))
    store = OutOfCoreSketchStore(manager.store, N_WORDS, block_size=7)
    yield store
    manager.close()


def _fill(store, num_objects=25, segs=3, seed=0, dup_frac=0.4):
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 2**64, size=(5, N_WORDS), dtype=np.uint64)
    for oid in range(num_objects):
        rows = rng.integers(0, 2**64, size=(segs, N_WORDS), dtype=np.uint64)
        for s in range(segs):
            if rng.random() < dup_frac:
                rows[s] = base[rng.integers(0, len(base))]  # force ties
        store.add_object(oid, rows)
    return rng


@pytest.mark.parametrize("workers", [1, 2, 3])
@pytest.mark.parametrize("k", [1, 4, 500])
def test_pool_scan_identical_to_serial(store, workers, k):
    rng = _fill(store)
    queries = rng.integers(0, 2**64, size=(3, N_WORDS), dtype=np.uint64)
    for thresholds in (None, [40.0 * N_WORDS] * 3, [5.0, None, 0.0]):
        serial = store.scan_nearest_many(queries, k, thresholds)
        with ParallelFilterPool(num_workers=workers, shard_rows=6) as pool:
            store.attach_pool(pool)
            assert store.scan_nearest_many(queries, k, thresholds) == serial
            store.detach_pool()


def test_pool_reloads_on_insert(store):
    rng = _fill(store, num_objects=10)
    query = rng.integers(0, 2**64, size=N_WORDS, dtype=np.uint64)
    with ParallelFilterPool(num_workers=2) as pool:
        store.attach_pool(pool)
        store.scan_nearest(query, 5)
        first_epoch = pool.loaded_epoch
        store.add_object(
            99, rng.integers(0, 2**64, size=(3, N_WORDS), dtype=np.uint64)
        )
        via_pool = store.scan_nearest(query, 5)
        assert pool.loaded_epoch != first_epoch  # arena was re-streamed
        store.detach_pool()
    assert store.scan_nearest(query, 5) == via_pool


def test_dead_pool_falls_back_to_serial(store):
    rng = _fill(store, num_objects=8)
    query = rng.integers(0, 2**64, size=N_WORDS, dtype=np.uint64)
    serial = store.scan_nearest(query, 4)
    pool = ParallelFilterPool(num_workers=2)
    store.attach_pool(pool)
    pool.close()  # dies behind the store's back
    assert store.scan_nearest(query, 4) == serial
    assert store.detach_pool() is None  # dropped, not closed by us


def test_empty_table_stays_serial(store):
    query = np.zeros(N_WORDS, dtype=np.uint64)
    with ParallelFilterPool(num_workers=2) as pool:
        store.attach_pool(pool)
        assert store.scan_nearest(query, 3) == []
        assert pool.loaded_epoch is None  # nothing to load
