"""Tests for metadata binary codecs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ObjectSignature
from repro.metadata import (
    decode_attributes,
    decode_object,
    decode_sketches,
    encode_attributes,
    encode_object,
    encode_sketches,
    object_key,
    parse_object_key,
)


class TestObjectKey:
    def test_roundtrip(self):
        for oid in (0, 1, 2**40, 2**63 - 1):
            assert parse_object_key(object_key(oid)) == oid

    def test_order_preserving(self):
        keys = [object_key(i) for i in (0, 5, 100, 2**32, 2**40)]
        assert keys == sorted(keys)


class TestObjectCodec:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        obj = ObjectSignature(rng.random((4, 7)), rng.random(4) + 0.1)
        decoded = decode_object(encode_object(obj), object_id=9)
        assert decoded.object_id == 9
        assert decoded.features.shape == (4, 7)
        # float32 storage: relative precision ~1e-7
        assert np.allclose(decoded.features, obj.features, atol=1e-6)
        assert np.allclose(decoded.weights, obj.weights)

    def test_single_segment(self):
        obj = ObjectSignature(np.ones((1, 3)), [1.0])
        decoded = decode_object(encode_object(obj))
        assert decoded.num_segments == 1

    def test_weights_exact(self):
        """Weights are float64 — exact roundtrip."""
        weights = np.array([0.123456789012345, 0.876543210987655])
        obj = ObjectSignature(np.zeros((2, 2)), weights, normalize=False)
        decoded = decode_object(encode_object(obj))
        assert np.array_equal(decoded.weights, weights)

    @settings(max_examples=30)
    @given(st.integers(1, 8), st.integers(1, 50), st.integers(0, 10_000))
    def test_property_roundtrip(self, k, dim, seed):
        rng = np.random.default_rng(seed)
        obj = ObjectSignature(rng.normal(size=(k, dim)) * 100, rng.random(k) + 0.01)
        decoded = decode_object(encode_object(obj))
        assert decoded.features.shape == (k, dim)
        assert np.allclose(decoded.features, obj.features, rtol=1e-5, atol=1e-3)


class TestSketchCodec:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        sketches = rng.integers(0, 2**63, size=(5, 3), dtype=np.uint64)
        decoded = decode_sketches(encode_sketches(sketches))
        assert np.array_equal(decoded, sketches)
        assert decoded.dtype == np.uint64

    def test_single_row(self):
        sketches = np.array([1, 2, 3], dtype=np.uint64)
        decoded = decode_sketches(encode_sketches(sketches))
        assert decoded.shape == (1, 3)


class TestAttributesCodec:
    def test_roundtrip(self):
        attrs = {"name": "dog.jpg", "collection": "corel", "note": "a b c"}
        assert decode_attributes(encode_attributes(attrs)) == attrs

    def test_empty(self):
        assert decode_attributes(encode_attributes({})) == {}

    def test_unicode(self):
        attrs = {"tytuł": "zdjęcie – łąka", "emoji": "🐕"}
        assert decode_attributes(encode_attributes(attrs)) == attrs

    @settings(max_examples=30)
    @given(st.dictionaries(st.text(min_size=1, max_size=20), st.text(max_size=100), max_size=10))
    def test_property_roundtrip(self, attrs):
        assert decode_attributes(encode_attributes(attrs)) == attrs
