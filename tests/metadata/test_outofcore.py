"""Tests for the out-of-core sketch store and searcher."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    EMDDistance,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchConstructor,
    SketchParams,
)
from repro.metadata import MetadataManager
from repro.metadata.outofcore import OutOfCoreSketchStore, OutOfCoreSearcher


@pytest.fixture()
def setup(tmp_path):
    meta = FeatureMeta(8, np.zeros(8), np.ones(8))
    sketcher = SketchConstructor(SketchParams(256, meta, seed=1))
    manager = MetadataManager(str(tmp_path / "ooc"))
    store = OutOfCoreSketchStore(manager.store, sketcher.n_words, block_size=17)
    searcher = OutOfCoreSearcher(
        manager, store, sketcher, EMDDistance(),
        FilterParams(num_query_segments=3, candidates_per_segment=15),
    )
    yield meta, sketcher, manager, store, searcher
    manager.close()


def _fill(searcher, count=60, seed=0):
    rng = np.random.default_rng(seed)
    signatures = []
    for i in range(count):
        sig = ObjectSignature(rng.random((3, 8)), rng.random(3) + 0.1)
        searcher.insert(i, sig)
        signatures.append(sig)
    return signatures


class TestSketchStore:
    def test_segment_count(self, setup):
        _meta, sketcher, _manager, store, searcher = setup
        _fill(searcher, 10)
        assert store.num_segments() == 30

    def test_blocks_bounded_and_complete(self, setup):
        _meta, _sketcher, _manager, store, searcher = setup
        _fill(searcher, 20)  # 60 segments, block_size=17
        total = 0
        block_count = 0
        for owners, matrix in store.iter_blocks():
            assert len(owners) <= 17
            assert matrix.shape == (len(owners), store.n_words)
            total += len(owners)
            block_count += 1
        assert total == 60
        assert block_count == 4  # 17+17+17+9

    def test_blocks_in_owner_order(self, setup):
        _meta, _sketcher, _manager, store, searcher = setup
        _fill(searcher, 15)
        seen = []
        for owners, _matrix in store.iter_blocks():
            seen.extend(owners.tolist())
        assert seen == sorted(seen)

    def test_wrong_width_rejected(self, setup):
        _meta, _sketcher, _manager, store, _searcher = setup
        with pytest.raises(ValueError):
            store.add_object(0, np.zeros((1, store.n_words + 1), np.uint64))

    def test_bad_block_size(self, setup):
        _meta, _sketcher, manager, _store, _searcher = setup
        with pytest.raises(ValueError):
            OutOfCoreSketchStore(manager.store, 4, block_size=0)

    def test_scan_nearest_matches_exhaustive(self, setup):
        _meta, sketcher, _manager, store, searcher = setup
        signatures = _fill(searcher, 30, seed=3)
        query_sketch = sketcher.sketch(signatures[5].features[0])
        nearest = store.scan_nearest(query_sketch, k=5)
        assert len(nearest) == 5
        # the query's own segment (distance 0) must be found
        assert any(owner == 5 and dist == 0 for owner, dist in nearest)
        # distances are the true minimum: no excluded segment is closer
        max_kept = max(dist for _o, dist in nearest)
        from repro.core.bitvector import hamming_to_many

        all_dists = []
        for owners, matrix in store.iter_blocks():
            all_dists.extend(hamming_to_many(query_sketch, matrix).tolist())
        assert sorted(all_dists)[4] >= max_kept or sorted(all_dists)[4] == max_kept

    def test_scan_nearest_many_matches_single_scans(self, setup):
        """One fused table pass must return exactly what per-query
        scan_nearest calls return (including tie-breaking)."""
        _meta, sketcher, _manager, store, searcher = setup
        signatures = _fill(searcher, 25, seed=5)
        queries = np.stack(
            [sketcher.sketch(signatures[i].features[0]) for i in (0, 7, 19)]
        )
        fused = store.scan_nearest_many(queries, k=6, thresholds=None)
        assert len(fused) == 3
        for qi in range(3):
            assert fused[qi] == store.scan_nearest(queries[qi], k=6)
        with_thr = store.scan_nearest_many(queries, k=6, thresholds=[40] * 3)
        for qi in range(3):
            assert with_thr[qi] == store.scan_nearest(
                queries[qi], k=6, threshold=40
            )

    def test_scan_nearest_many_threshold_count_mismatch(self, setup):
        _meta, sketcher, _manager, store, searcher = setup
        _fill(searcher, 5)
        queries = np.zeros((2, store.n_words), np.uint64)
        with pytest.raises(ValueError):
            store.scan_nearest_many(queries, k=3, thresholds=[1.0])

    def test_scan_nearest_threshold(self, setup):
        _meta, sketcher, _manager, store, searcher = setup
        signatures = _fill(searcher, 20, seed=4)
        query_sketch = sketcher.sketch(signatures[0].features[0])
        tight = store.scan_nearest(query_sketch, k=50, threshold=10)
        assert all(dist <= 10 for _o, dist in tight)


class TestSearcherEquivalence:
    def test_matches_in_memory_engine(self, setup):
        """Out-of-core filtering must return the same ranked results as
        the in-memory engine given the same parameters and sketches."""
        meta, sketcher, manager, store, searcher = setup
        rng = np.random.default_rng(7)
        engine = SimilaritySearchEngine(
            DataTypePlugin("t", meta),
            SketchParams(256, meta, seed=1),
            FilterParams(num_query_segments=3, candidates_per_segment=15),
        )
        for i in range(50):
            sig = ObjectSignature(rng.random((3, 8)), rng.random(3) + 0.1)
            searcher.insert(i, sig)
            engine.insert(
                ObjectSignature(sig.features.copy(), sig.weights.copy(),
                                normalize=False)
            )
        query = manager.get_object(4)
        ooc = searcher.query(query, top_k=8, exclude_self=True)
        mem = engine.query_by_id(4, top_k=8, method=SearchMethod.FILTERING,
                                 exclude_self=True)
        assert [r.object_id for r in ooc] == [r.object_id for r in mem]
        for a, b in zip(ooc, mem):
            # metadata stores features as float32: small distance drift
            assert a.distance == pytest.approx(b.distance, rel=1e-4, abs=1e-5)

    def test_survives_reopen(self, tmp_path):
        meta = FeatureMeta(8, np.zeros(8), np.ones(8))
        sketcher = SketchConstructor(SketchParams(128, meta, seed=2))
        path = str(tmp_path / "persist")
        rng = np.random.default_rng(8)

        with MetadataManager(path) as manager:
            store = OutOfCoreSketchStore(manager.store, sketcher.n_words)
            searcher = OutOfCoreSearcher(manager, store, sketcher, EMDDistance())
            for i in range(25):
                searcher.insert(i, ObjectSignature(rng.random((2, 8)), [1, 1]))
            query = manager.get_object(3)
            before = [r.object_id for r in searcher.query(query, top_k=5)]

        with MetadataManager(path) as manager:
            store = OutOfCoreSketchStore(manager.store, sketcher.n_words)
            searcher = OutOfCoreSearcher(manager, store, sketcher, EMDDistance())
            query = manager.get_object(3)
            after = [r.object_id for r in searcher.query(query, top_k=5)]
        assert before == after

    def test_empty_store_query(self, setup):
        _meta, _sketcher, _manager, _store, searcher = setup
        query = ObjectSignature(np.random.rand(2, 8), [1, 1])
        assert searcher.query(query) == []
