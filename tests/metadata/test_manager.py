"""Tests for the metadata manager."""

import numpy as np
import pytest

from repro.core import ObjectSignature
from repro.metadata import MetadataManager
from repro.storage import KVStore


@pytest.fixture()
def manager(tmp_path):
    m = MetadataManager(str(tmp_path / "meta"))
    yield m
    m.close()


def _obj(seed=0, k=3, dim=5):
    rng = np.random.default_rng(seed)
    return ObjectSignature(rng.random((k, dim)), rng.random(k) + 0.1)


def _sketches(seed=0, k=3, words=2):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**63, size=(k, words), dtype=np.uint64)


class TestLifecycle:
    def test_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(ValueError):
            MetadataManager()
        with pytest.raises(ValueError):
            MetadataManager(str(tmp_path / "x"), store=KVStore(str(tmp_path / "y")))

    def test_wraps_external_store_without_closing(self, tmp_path):
        store = KVStore(str(tmp_path / "shared"))
        manager = MetadataManager(store=store)
        manager.put_object(1, _obj(), _sketches())
        manager.close()  # must NOT close the shared store
        assert store.get("objects", b"\x00" * 7 + b"\x01") is not None
        store.close()


class TestObjectStorage:
    def test_put_get_roundtrip(self, manager):
        obj = _obj(1)
        manager.put_object(5, obj, _sketches(1), {"name": "five"})
        got = manager.get_object(5)
        assert got.object_id == 5
        assert np.allclose(got.features, obj.features, atol=1e-6)
        assert np.array_equal(manager.get_sketches(5), _sketches(1))
        assert manager.get_attributes(5) == {"name": "five"}

    def test_get_missing(self, manager):
        assert manager.get_object(99) is None
        assert manager.get_sketches(99) is None
        assert manager.get_attributes(99) == {}

    def test_delete_object_clears_all_tables(self, manager):
        manager.put_object(1, _obj(), _sketches(), {"a": "b"})
        manager.delete_object(1)
        assert manager.get_object(1) is None
        assert manager.get_sketches(1) is None
        assert manager.get_attributes(1) == {}

    def test_iter_objects_in_id_order(self, manager):
        for oid in (5, 1, 3):
            manager.put_object(oid, _obj(oid), _sketches(oid), {"id": str(oid)})
        ids = [oid for oid, _sig, _sk, _at in manager.iter_objects()]
        assert ids == [1, 3, 5]

    def test_iter_includes_attributes(self, manager):
        manager.put_object(1, _obj(), _sketches(), {"k": "v"})
        (_oid, _sig, _sk, attrs), = list(manager.iter_objects())
        assert attrs == {"k": "v"}

    def test_num_objects(self, manager):
        for oid in range(7):
            manager.put_object(oid, _obj(oid), _sketches(oid))
        assert manager.num_objects() == 7

    def test_set_attributes_after_insert(self, manager):
        manager.put_object(1, _obj(), _sketches())
        manager.set_attributes(1, {"late": "yes"})
        assert manager.get_attributes(1) == {"late": "yes"}


class TestFileMapping:
    def test_file_roundtrip(self, manager):
        manager.put_object(3, _obj(), _sketches(), filename="/data/x.npy")
        assert manager.file_for("/data/x.npy") == 3
        assert manager.file_for("/data/other.npy") is None
        assert list(manager.files()) == [("/data/x.npy", 3)]


class TestCounters:
    def test_next_object_id_monotonic(self, manager):
        ids = [manager.next_object_id() for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_counter_survives_reopen(self, tmp_path):
        path = str(tmp_path / "m")
        with MetadataManager(path) as m:
            assert m.next_object_id() == 0
            assert m.next_object_id() == 1
        with MetadataManager(path) as m:
            assert m.next_object_id() == 2


class TestPersistence:
    def test_objects_survive_reopen(self, tmp_path):
        path = str(tmp_path / "m")
        obj = _obj(7, k=2, dim=4)
        with MetadataManager(path) as m:
            m.put_object(7, obj, _sketches(7, k=2), {"x": "y"}, filename="f.npy")
        with MetadataManager(path) as m:
            got = m.get_object(7)
            assert np.allclose(got.features, obj.features, atol=1e-6)
            assert m.get_attributes(7) == {"x": "y"}
            assert m.file_for("f.npy") == 7
