"""Tests for cascade ranking (sketch pre-rank before exact EMD)."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)


@pytest.fixture()
def engine(unit_meta):
    eng = SimilaritySearchEngine(
        DataTypePlugin("t", unit_meta),
        SketchParams(256, unit_meta, seed=1),
        FilterParams(num_query_segments=3, candidates_per_segment=100,
                     threshold_fraction=None),
    )
    rng = np.random.default_rng(0)
    base = rng.random((3, 8))
    eng.insert(ObjectSignature(base, [1, 1, 1]))
    eng.insert(ObjectSignature(np.clip(base + 0.01, 0, 1), [1, 1, 1]))
    for _ in range(60):
        eng.insert(ObjectSignature(rng.random((3, 8)), [1, 1, 1]))
    return eng


class TestCascade:
    def test_near_duplicate_survives_cascade(self, engine):
        results = engine.query_by_id(
            0, top_k=3, method=SearchMethod.FILTERING, exclude_self=True,
            cascade=8,
        )
        assert results[0].object_id == 1

    def test_cascade_distances_are_exact(self, engine):
        """Final distances come from the exact object distance, not the
        sketch estimate."""
        cascade = engine.query_by_id(
            0, top_k=5, method=SearchMethod.FILTERING, cascade=10
        )
        exact = {
            r.object_id: r.distance
            for r in engine.query_by_id(
                0, top_k=62, method=SearchMethod.BRUTE_FORCE_ORIGINAL
            )
        }
        for r in cascade:
            assert r.distance == pytest.approx(exact[r.object_id], rel=1e-9)

    def test_cascade_bounds_exact_rankings(self, engine):
        """The exact ranker never sees more than `cascade` candidates."""
        calls = []
        original = engine.plugin.obj_distance

        def counting(a, b):
            calls.append(1)
            return original(a, b)

        engine.plugin.obj_distance = counting
        try:
            engine.query_by_id(0, top_k=3, method=SearchMethod.FILTERING,
                               cascade=7, exclude_self=True)
        finally:
            engine.plugin.obj_distance = original
        assert len(calls) <= 7

    def test_no_cascade_when_candidates_small(self, engine):
        # cascade larger than the candidate set: behaves like plain filtering
        plain = engine.query_by_id(0, top_k=5, method=SearchMethod.FILTERING)
        cascaded = engine.query_by_id(
            0, top_k=5, method=SearchMethod.FILTERING, cascade=10_000
        )
        assert [r.object_id for r in plain] == [r.object_id for r in cascaded]

    def test_cascade_only_affects_filtering(self, engine):
        brute = engine.query_by_id(
            0, top_k=5, method=SearchMethod.BRUTE_FORCE_ORIGINAL, cascade=3
        )
        assert len(brute) == 5  # parameter ignored for brute force
