"""Cross-process telemetry of the parallel scan pool.

Workers run in separate processes, so their registry activity is
invisible to the parent unless explicitly shipped back.  These tests
pin the aggregation pipeline end to end: delta export piggybacked on
scan replies, the on-demand ``("metrics",)`` pull, the
``worker.<i>.*`` / ``workers.*`` namespacing, per-worker trace spans,
and the quiet/metrics switch inheritance at spawn time (under both
``fork`` and ``spawn`` start methods).
"""

import multiprocessing

import numpy as np
import pytest

from repro.core import (
    FilterParams,
    ParallelConfig,
    ParallelFilterPool,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.observability import log as _log
from repro.observability import metrics as _metrics
from repro.observability.tracing import QueryTrace

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

START_METHODS = [
    m
    for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


def _loaded_pool(num_workers=2, rows=64, start_method=None):
    pool = ParallelFilterPool(
        num_workers=num_workers, start_method=start_method
    )
    rng = np.random.default_rng(7)
    sketches = rng.integers(0, 2**63, size=(rows, 2), dtype=np.uint64)
    pool.load(np.arange(rows, dtype=np.int64), sketches, epoch=1)
    return pool, sketches


def _value(name):
    return _metrics.get_registry().value(name)


class TestWorkerMetricAggregation:
    def test_scan_piggybacks_worker_series(self):
        before_requests = _value("workers.scan.requests")
        before_w0 = _value("worker.0.scan.requests")
        with _loaded_pool(num_workers=2)[0] as pool:
            pool.scan_topk(
                np.zeros((1, 2), dtype=np.uint64), 4
            )
        assert _value("workers.scan.requests") == before_requests + 2
        assert _value("worker.0.scan.requests") == before_w0 + 1
        reg = _metrics.get_registry()
        hist = reg.get("workers.scan.compute_seconds")
        assert hist is not None and hist.count >= 2

    def test_outofcore_origin_counts_worker_side(self):
        before = _value("workers.outofcore.scans")
        with _loaded_pool(num_workers=2)[0] as pool:
            pool.scan_topk(
                np.zeros((1, 2), dtype=np.uint64), 4, origin="outofcore"
            )
        assert _value("workers.outofcore.scans") == before + 2
        assert _value("workers.outofcore.rows_scanned") > 0

    def test_fetch_worker_metrics_on_demand(self):
        pool, _ = _loaded_pool(num_workers=2)
        with pool:
            before = _value("workers.arena.loads")
            # nothing scanned yet: the load count is still worker-side
            assert pool.fetch_worker_metrics() == 2
            assert _value("workers.arena.loads") == before + 2
            # a second pull with no new activity ships empty deltas
            mid = _value("workers.arena.loads")
            assert pool.fetch_worker_metrics() == 2
            assert _value("workers.arena.loads") == mid
        assert pool.fetch_worker_metrics() == 0  # closed pool: no-op

    def test_roll_up_equals_sum_of_workers(self):
        base_roll = _value("workers.scan.requests")
        base = [
            _value(f"worker.{i}.scan.requests") for i in range(3)
        ]
        with _loaded_pool(num_workers=3)[0] as pool:
            for _ in range(4):
                pool.scan_topk(np.zeros((1, 2), dtype=np.uint64), 2)
        per_worker = sum(
            _value(f"worker.{i}.scan.requests") - base[i] for i in range(3)
        )
        assert per_worker == 12
        assert _value("workers.scan.requests") - base_roll == per_worker


class TestPerShardSpans:
    def test_scan_attaches_one_span_per_worker(self):
        trace = QueryTrace("filtering")
        with _loaded_pool(num_workers=2)[0] as pool:
            pool.scan_topk(
                np.zeros((2, 2), dtype=np.uint64), 4, trace=trace
            )
        assert len(trace.spans) == 2
        names = [s["name"] for s in trace.spans]
        assert names == ["worker.0", "worker.1"]
        for span in trace.spans:
            for key in ("queue_wait", "compute", "reply"):
                assert span[key] >= 0.0
        rendered = trace.lines()
        assert any(
            l.startswith("span.worker.0.compute_seconds") for l in rendered
        )

    def test_no_trace_no_spans_overhead(self):
        with _loaded_pool(num_workers=2)[0] as pool:
            d, r = pool.scan_topk(np.zeros((1, 2), dtype=np.uint64), 4)
        assert d.shape[0] == 1  # scan unaffected without a trace

    def test_engine_query_produces_spans(self):
        from repro.datatypes.bulk import bulk_image_dataset
        from repro.datatypes.image import make_image_plugin

        plugin = make_image_plugin()
        engine = SimilaritySearchEngine(
            plugin,
            SketchParams(64, plugin.meta, seed=0),
            FilterParams(num_query_segments=3, candidates_per_segment=16),
            parallel=ParallelConfig(
                num_workers=2, min_segments=1, cache_entries=0
            ),
        )
        with engine:
            engine.insert_many(list(bulk_image_dataset(30, seed=3)))
            engine.tracer.set_enabled(True)
            engine.query_by_id(0, top_k=3)
            trace = engine.tracer.last
            assert trace is not None
            assert trace.notes.get("scan") == "parallel"
            worker_spans = [
                s for s in trace.spans if str(s["name"]).startswith("worker.")
            ]
            assert len(worker_spans) == 2
            assert {s["name"] for s in worker_spans} == {
                "worker.0", "worker.1"
            }
            # The ranking cascade contributes its own span alongside the
            # per-worker scan spans.
            assert any(s["name"] == "rank" for s in trace.spans)


class TestSpawnInheritance:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_quiet_flag_inherited(self, start_method):
        was_quiet = _log.is_quiet()
        _log.set_quiet(True)
        try:
            pool, _ = _loaded_pool(
                num_workers=2, start_method=start_method
            )
            with pool:
                info = pool.worker_info()
        finally:
            _log.set_quiet(was_quiet)
        assert len(info) == 2
        assert all(w["quiet"] for w in info)
        assert sorted(w["name"] for w in info) == [
            "ferret-scan-0", "ferret-scan-1"
        ]
        assert len({w["pid"] for w in info}) == 2

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_metrics_switch_inherited(self, start_method):
        registry = _metrics.get_registry()
        assert registry.enabled  # test-suite invariant
        registry.enabled = False
        try:
            pool, _ = _loaded_pool(
                num_workers=1, start_method=start_method
            )
        finally:
            registry.enabled = True
        with pool:
            info = pool.worker_info()
        assert all(not w["metrics_enabled"] for w in info)

    def test_not_quiet_by_default(self):
        assert not _log.is_quiet()
        with _loaded_pool(num_workers=1)[0] as pool:
            info = pool.worker_info()
        assert not info[0]["quiet"]
        assert info[0]["metrics_enabled"]
