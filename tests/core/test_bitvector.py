"""Unit + property tests for packed bit vectors and Hamming distance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitvector import (
    _HAS_BITWISE_COUNT,
    _popcount64_lut,
    hamming_distance,
    hamming_many_to_many,
    hamming_to_many,
    pack_bits,
    popcount64,
    unpack_bits,
)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFF, 2**64 - 1], dtype=np.uint64)
        assert popcount64(words).tolist() == [0, 1, 2, 8, 64]

    def test_matches_python_bin(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=200, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount64(words).tolist() == expected

    def test_2d_shape_preserved(self):
        words = np.zeros((3, 4), dtype=np.uint64)
        assert popcount64(words).shape == (3, 4)


class TestPackUnpack:
    def test_roundtrip_1d(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1])
        packed = pack_bits(bits)
        assert np.array_equal(unpack_bits(packed, 9), bits)

    def test_roundtrip_2d(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(5, 100)).astype(np.uint8)
        packed = pack_bits(bits)
        assert packed.shape == (5, 2)
        assert np.array_equal(unpack_bits(packed, 100), bits)

    def test_word_boundary_sizes(self):
        for n in (1, 63, 64, 65, 128, 129):
            bits = np.ones(n, dtype=np.uint8)
            packed = pack_bits(bits)
            assert packed.shape == ((n + 63) // 64,)
            assert np.array_equal(unpack_bits(packed, n), bits)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros((2, 2, 2)))

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_property_roundtrip(self, bits):
        arr = np.asarray(bits, dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(arr), len(bits)), arr)


class TestHamming:
    def test_identical_is_zero(self):
        a = pack_bits(np.ones(70, dtype=np.uint8))
        assert hamming_distance(a, a) == 0

    def test_complement(self):
        bits = np.zeros(100, dtype=np.uint8)
        a = pack_bits(bits)
        b = pack_bits(1 - bits)
        assert hamming_distance(a, b) == 100

    def test_matches_naive(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 2, size=150).astype(np.uint8)
        y = rng.integers(0, 2, size=150).astype(np.uint8)
        assert hamming_distance(pack_bits(x), pack_bits(y)) == int((x != y).sum())

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(2, np.uint64), np.zeros(3, np.uint64))

    @settings(max_examples=40)
    @given(
        st.integers(1, 200),
        st.integers(0, 2**32),
    )
    def test_property_symmetry_and_triangle(self, n_bits, seed):
        rng = np.random.default_rng(seed)
        x, y, z = (rng.integers(0, 2, n_bits).astype(np.uint8) for _ in range(3))
        px, py, pz = pack_bits(x), pack_bits(y), pack_bits(z)
        dxy = hamming_distance(px, py)
        assert dxy == hamming_distance(py, px)
        assert dxy <= hamming_distance(px, pz) + hamming_distance(pz, py)


class TestHammingToMany:
    def test_matches_pairwise(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(20, 130)).astype(np.uint8)
        packed = pack_bits(bits)
        query = packed[0]
        scan = hamming_to_many(query, packed)
        expected = [hamming_distance(query, row) for row in packed]
        assert scan.tolist() == expected

    def test_word_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_to_many(np.zeros(1, np.uint64), np.zeros((3, 2), np.uint64))

    def test_single_row(self):
        row = pack_bits(np.ones(64, dtype=np.uint8))
        assert hamming_to_many(row, row[None, :]).tolist() == [0]


class TestPopcountPaths:
    """The LUT fallback and the np.bitwise_count fast path must agree."""

    def test_lut_known_values(self):
        words = np.array([0, 1, 3, 0xFF, 2**64 - 1], dtype=np.uint64)
        assert _popcount64_lut(words).tolist() == [0, 1, 2, 8, 64]

    @settings(max_examples=30)
    @given(st.integers(0, 2**32), st.integers(1, 64))
    def test_lut_matches_dispatch(self, seed, size):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**63, size=size, dtype=np.uint64)
        # popcount64 dispatches to bitwise_count on numpy >= 2.0; both
        # implementations must agree bit-for-bit with the LUT fallback.
        assert np.array_equal(popcount64(words), _popcount64_lut(words))

    def test_native_path_selected_on_modern_numpy(self):
        if not hasattr(np, "bitwise_count"):
            pytest.skip("numpy < 2.0: no native popcount")
        assert _HAS_BITWISE_COUNT


class TestHammingManyToMany:
    def _naive(self, queries_bits, database_bits):
        return np.array(
            [[int((q != d).sum()) for d in database_bits] for q in queries_bits]
        )

    def test_matches_rowwise_and_naive(self):
        rng = np.random.default_rng(5)
        q_bits = rng.integers(0, 2, size=(4, 130)).astype(np.uint8)
        d_bits = rng.integers(0, 2, size=(25, 130)).astype(np.uint8)
        queries, database = pack_bits(q_bits), pack_bits(d_bits)
        batched = hamming_many_to_many(queries, database)
        rowwise = np.stack([hamming_to_many(q, database) for q in queries])
        assert np.array_equal(batched, rowwise)
        assert np.array_equal(batched, self._naive(q_bits, d_bits))

    def test_blocked_scan_equals_unblocked(self):
        rng = np.random.default_rng(6)
        queries = pack_bits(rng.integers(0, 2, size=(3, 200)).astype(np.uint8))
        database = pack_bits(rng.integers(0, 2, size=(50, 200)).astype(np.uint8))
        full = hamming_many_to_many(queries, database)
        for block_rows in (1, 7, 49, 50, 1000):
            assert np.array_equal(
                hamming_many_to_many(queries, database, block_rows=block_rows),
                full,
            )

    def test_single_query_matches_to_many(self):
        rng = np.random.default_rng(7)
        database = pack_bits(rng.integers(0, 2, size=(10, 64)).astype(np.uint8))
        query = database[3]
        out = hamming_many_to_many(query, database)
        assert out.shape == (1, 10)
        assert np.array_equal(out[0], hamming_to_many(query, database))
        assert out[0, 3] == 0

    def test_word_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_many_to_many(
                np.zeros((2, 1), np.uint64), np.zeros((3, 2), np.uint64)
            )

    def test_bad_block_rows_rejected(self):
        with pytest.raises(ValueError):
            hamming_many_to_many(
                np.zeros((1, 1), np.uint64), np.zeros((2, 1), np.uint64),
                block_rows=0,
            )

    @settings(max_examples=30)
    @given(
        st.integers(0, 2**32),
        st.integers(1, 6),
        st.integers(1, 30),
        st.integers(1, 150),
    )
    def test_property_equals_rowwise_and_naive(self, seed, n_q, n_db, n_bits):
        """Batched == row-wise hamming_to_many == naive unpacked-bit count."""
        rng = np.random.default_rng(seed)
        q_bits = rng.integers(0, 2, size=(n_q, n_bits)).astype(np.uint8)
        d_bits = rng.integers(0, 2, size=(n_db, n_bits)).astype(np.uint8)
        queries, database = pack_bits(q_bits), pack_bits(d_bits)
        block_rows = int(rng.integers(1, n_db + 2))
        batched = hamming_many_to_many(queries, database, block_rows=block_rows)
        rowwise = np.stack([hamming_to_many(q, database) for q in queries])
        assert np.array_equal(batched, rowwise)
        assert np.array_equal(batched, self._naive(q_bits, d_bits))
