"""Tests for the Earth Mover's Distance object distance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EMDDistance, EMDParams, ObjectSignature, emd
from repro.core.emd import (
    NonFiniteDistanceError,
    _l1_cost_matrix,
    pairwise_segment_distances,
)


def _obj(rng, k, dim=5):
    return ObjectSignature(rng.random((k, dim)), rng.random(k) + 0.1)


class TestPairwiseDistances:
    def test_default_is_l1(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[1.0, 0.0]])
        costs = pairwise_segment_distances(a, b)
        assert np.allclose(costs, [[1.0], [1.0]])

    def test_custom_ground(self):
        def ground(qs, db):
            return np.zeros((qs.shape[0], db.shape[0]))

        costs = pairwise_segment_distances(np.ones((2, 3)), np.ones((4, 3)), ground)
        assert costs.shape == (2, 4)
        assert np.all(costs == 0)

    def test_bad_ground_shape_rejected(self):
        with pytest.raises(ValueError):
            pairwise_segment_distances(
                np.ones((2, 3)), np.ones((4, 3)), lambda q, d: np.zeros((1, 1))
            )

    def test_broadcast_kernel_matches_per_row_loop(self):
        # The blocked broadcast kernel must be bit-identical to the
        # historical per-row l1 loop it replaced.
        from repro.core.distance import l1_to_many

        rng = np.random.default_rng(10)
        a = rng.normal(size=(7, 5))
        b = rng.normal(size=(300, 5))
        looped = np.stack([l1_to_many(row, b) for row in a])
        assert (_l1_cost_matrix(a, b) == looped).all()
        assert (pairwise_segment_distances(a, b) == looped).all()

    def test_blocked_path_identical(self, monkeypatch):
        # Force the kernel into its multi-block path and check values.
        # (attribute access via repro.core hits the re-exported emd()
        # function, so pull the module from sys.modules)
        import sys

        emd_mod = sys.modules["repro.core.emd"]

        rng = np.random.default_rng(11)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(64, 4))
        whole = _l1_cost_matrix(a, b)
        monkeypatch.setattr(emd_mod, "_L1_BLOCK_BYTES", 512)
        assert (_l1_cost_matrix(a, b) == whole).all()

    def test_nan_features_raise_typed_error(self):
        a = np.array([[0.0, np.nan]])
        b = np.ones((2, 2))
        with pytest.raises(NonFiniteDistanceError):
            pairwise_segment_distances(a, b)

    def test_inf_from_custom_ground_raises(self):
        def ground(qs, db):
            out = np.zeros((qs.shape[0], db.shape[0]))
            out[0, 0] = np.inf
            return out

        with pytest.raises(NonFiniteDistanceError) as excinfo:
            pairwise_segment_distances(
                np.ones((2, 3)), np.ones((4, 3)), ground, object_id=9
            )
        assert excinfo.value.object_id == 9


class TestEMD:
    def test_self_distance_zero(self):
        rng = np.random.default_rng(0)
        obj = _obj(rng, 4)
        assert emd(obj, obj) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a, b = _obj(rng, 3), _obj(rng, 5)
        assert emd(a, b) == pytest.approx(emd(b, a), rel=1e-9)

    def test_single_segment_reduces_to_ground_distance(self):
        a = ObjectSignature(np.array([[0.0, 0.0]]), [1.0])
        b = ObjectSignature(np.array([[3.0, 4.0]]), [1.0])
        assert emd(a, b) == pytest.approx(7.0)  # l1

    def test_order_invariance(self):
        """Same segments in a different order => distance 0 (the audio
        use case: same words spoken in a different order)."""
        rng = np.random.default_rng(2)
        feats = rng.random((4, 6))
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        a = ObjectSignature(feats, weights, normalize=False)
        perm = [2, 0, 3, 1]
        b = ObjectSignature(feats[perm], weights[perm], normalize=False)
        assert emd(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_translation_scales_distance(self):
        rng = np.random.default_rng(3)
        feats = rng.random((3, 4))
        a = ObjectSignature(feats, np.ones(3))
        b = ObjectSignature(feats + 1.0, np.ones(3))  # shift by 1 in 4 dims
        assert emd(a, b) == pytest.approx(4.0, rel=1e-9)

    def test_triangle_inequality(self):
        # EMD with a metric ground distance is a metric on distributions.
        rng = np.random.default_rng(4)
        a, b, c = _obj(rng, 3), _obj(rng, 4), _obj(rng, 2)
        assert emd(a, b) <= emd(a, c) + emd(c, b) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_nonnegative_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = _obj(rng, int(rng.integers(1, 6)))
        b = _obj(rng, int(rng.integers(1, 6)))
        d = emd(a, b)
        assert d >= 0.0
        assert d == pytest.approx(emd(b, a), rel=1e-7, abs=1e-9)


class TestThresholdedEMD:
    def test_threshold_caps_cost(self):
        a = ObjectSignature(np.array([[0.0]]), [1.0])
        b = ObjectSignature(np.array([[100.0]]), [1.0])
        assert emd(a, b) == pytest.approx(100.0)
        assert emd(a, b, EMDParams(threshold=2.5)) == pytest.approx(2.5)

    def test_threshold_never_increases(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            a, b = _obj(rng, 3), _obj(rng, 4)
            plain = emd(a, b)
            capped = emd(a, b, EMDParams(threshold=0.5))
            assert capped <= plain + 1e-12

    def test_invalid_threshold(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            emd(_obj(rng, 2), _obj(rng, 2), EMDParams(threshold=0.0))

    def test_sqrt_weighting_changes_mass(self):
        feats = np.array([[0.0], [10.0]])
        a = ObjectSignature(feats, [0.9, 0.1], normalize=False)
        target = ObjectSignature(np.array([[0.0]]), [1.0])
        plain = emd(a, target)
        sqrt = emd(a, target, EMDParams(weight_transform=np.sqrt))
        # sqrt weighting boosts the small far-away segment's share.
        assert sqrt > plain


class TestEMDDistance:
    def test_callable_interface(self):
        rng = np.random.default_rng(7)
        a, b = _obj(rng, 2), _obj(rng, 3)
        dist = EMDDistance()
        assert dist(a, b) == pytest.approx(emd(a, b))

    def test_repr_mentions_threshold(self):
        assert "threshold=1.5" in repr(EMDDistance(EMDParams(threshold=1.5)))
