"""Tests for the ranking unit."""

import numpy as np
import pytest

from repro.core import ObjectSignature, SearchResult, rank_candidates
from repro.core.distance import l1_distance


def _objects(rng, count, dim=4):
    return {
        i: ObjectSignature(rng.random((1, dim)), [1.0], object_id=i)
        for i in range(count)
    }


def _dist(a, b):
    return l1_distance(a.features[0], b.features[0])


class TestSearchResult:
    def test_ordering_by_distance(self):
        assert SearchResult(1.0, 5) < SearchResult(2.0, 1)

    def test_tie_broken_by_id(self):
        assert SearchResult(1.0, 1) < SearchResult(1.0, 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SearchResult(1.0, 1).distance = 2.0


class TestRankCandidates:
    def test_sorted_ascending(self):
        rng = np.random.default_rng(0)
        objects = _objects(rng, 20)
        results = rank_candidates(objects[0], range(20), objects, _dist)
        dists = [r.distance for r in results]
        assert dists == sorted(dists)
        assert results[0].object_id == 0  # self-distance 0 ranks first

    def test_top_k_truncation(self):
        rng = np.random.default_rng(1)
        objects = _objects(rng, 20)
        results = rank_candidates(objects[0], range(20), objects, _dist, top_k=5)
        assert len(results) == 5

    def test_exclude_self(self):
        rng = np.random.default_rng(2)
        objects = _objects(rng, 10)
        results = rank_candidates(
            objects[3], range(10), objects, _dist, exclude_self=True
        )
        assert all(r.object_id != 3 for r in results)
        assert len(results) == 9

    def test_subset_of_candidates(self):
        rng = np.random.default_rng(3)
        objects = _objects(rng, 10)
        results = rank_candidates(objects[0], [2, 4, 6], objects, _dist)
        assert {r.object_id for r in results} == {2, 4, 6}

    def test_empty_candidates(self):
        rng = np.random.default_rng(4)
        objects = _objects(rng, 5)
        assert rank_candidates(objects[0], [], objects, _dist) == []

    def test_custom_distance_used(self):
        rng = np.random.default_rng(5)
        objects = _objects(rng, 5)
        results = rank_candidates(
            objects[0], range(5), objects, lambda a, b: float(b.object_id)
        )
        assert [r.object_id for r in results] == [0, 1, 2, 3, 4]

    def test_deterministic_under_ties(self):
        rng = np.random.default_rng(6)
        objects = _objects(rng, 8)
        constant = lambda a, b: 1.0
        r1 = rank_candidates(objects[0], range(8), objects, constant)
        r2 = rank_candidates(objects[0], reversed(range(8)), objects, constant)
        assert [r.object_id for r in r1] == [r.object_id for r in r2]

    def test_top_k_selection_matches_full_sort(self):
        # The k-smallest heap selection must be indistinguishable from
        # sort-then-truncate, including under distance ties.
        rng = np.random.default_rng(7)
        objects = _objects(rng, 50)
        tie_dist = lambda a, b: float(b.object_id % 5)
        for top_k in (0, 1, 5, 49, 50, 100):
            full = rank_candidates(objects[0], range(50), objects, tie_dist)
            cut = rank_candidates(
                objects[0], range(50), objects, tie_dist, top_k=top_k
            )
            assert cut == full[:top_k]
