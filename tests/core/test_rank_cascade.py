"""Tests for the batched EMD ranking cascade.

Two families of guarantees:

1. The lower bounds are *provable*: across thresholded / sqrt-weighted /
   custom-ground configurations, neither bound ever exceeds the exact
   EMD (hypothesis property tests).
2. The cascade is *invisible*: ``rank_candidates_many`` returns exactly
   ``rank_candidates``'s results — distances, ordering, deterministic
   ties — on randomized workloads including self-exclusion and
   concurrently-removed candidates; the engine produces identical ranked
   answers with the cascade on and off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EMDDistance,
    EMDParams,
    FilterParams,
    NonFiniteDistanceError,
    ObjectSignature,
    RankParams,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    emd,
    emd_lower_bound_centroid,
    emd_lower_bound_rowcol,
    emd_to_many,
    rank_candidates,
    rank_candidates_many,
)
from repro.core.distance import weighted_l1_to_many
from repro.observability import metrics as obs_metrics

# One ulp-scale tolerance: the bounds carry their own float-safety
# margin, so bound <= exact must hold up to representation noise only.
TOL = 1e-9


def _sig(rng, object_id, num_segments, dim=5):
    features = rng.normal(size=(num_segments, dim))
    weights = rng.random(num_segments) + 0.05
    return ObjectSignature(features, weights / weights.sum(), object_id=object_id)


def _custom_ground_params(dim=5, threshold=1.0):
    dim_weights = np.linspace(0.5, 1.5, dim)

    def ground(queries, database):
        return np.stack(
            [weighted_l1_to_many(q, database, dim_weights) for q in queries]
        )

    return EMDParams(threshold=threshold, ground=ground)


def _param_configs(dim=5):
    return [
        EMDParams(),
        EMDParams(threshold=1.2),
        EMDParams(weight_transform=np.sqrt),
        EMDParams(threshold=0.8, weight_transform=np.sqrt),
        _custom_ground_params(dim=dim),
    ]


class TestLowerBounds:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        config=st.integers(0, 4),
        m=st.integers(1, 6),
        n=st.integers(1, 6),
    )
    def test_bounds_never_exceed_exact_emd(self, seed, config, m, n):
        rng = np.random.default_rng(seed)
        params = _param_configs()[config]
        query = _sig(rng, 1, m)
        candidate = _sig(rng, 2, n)
        exact = emd(query, candidate, params)
        centroid = emd_lower_bound_centroid(query, candidate, params)
        rowcol = emd_lower_bound_rowcol(query, candidate, params)
        assert centroid <= exact + TOL
        assert rowcol <= exact + TOL
        assert centroid >= 0.0 and rowcol >= 0.0

    def test_centroid_bound_trivial_when_thresholded_or_custom(self):
        # Thresholding can push the optimal flow cost below the centroid
        # distance (clip enough and every assignment costs ~t), and a
        # custom ground need not be a norm — both must disable the bound.
        rng = np.random.default_rng(0)
        q, c = _sig(rng, 1, 3), _sig(rng, 2, 4)
        assert emd_lower_bound_centroid(q, c, EMDParams(threshold=0.5)) == 0.0
        assert emd_lower_bound_centroid(q, c, _custom_ground_params()) == 0.0
        assert emd_lower_bound_centroid(q, c, EMDParams()) > 0.0

    def test_bounds_tight_on_identical_objects(self):
        rng = np.random.default_rng(3)
        q = _sig(rng, 1, 4)
        dup = ObjectSignature(
            q.features.copy(), q.weights.copy(), object_id=2
        )
        for params in _param_configs():
            exact = emd(q, dup, params)
            assert emd_lower_bound_rowcol(q, dup, params) <= exact + TOL


class TestEmdToMany:
    @pytest.mark.parametrize("config", range(5))
    def test_bitwise_identical_to_sequential(self, config):
        rng = np.random.default_rng(config)
        params = _param_configs()[config]
        query = _sig(rng, 99, 4)
        candidates = [
            _sig(rng, i, int(rng.integers(1, 7))) for i in range(40)
        ]
        batched = emd_to_many(query, candidates, params)
        sequential = np.array([emd(query, c, params) for c in candidates])
        assert (batched == sequential).all()

    def test_dedup_shared_segments_identical(self):
        rng = np.random.default_rng(7)
        base = [_sig(rng, i, 3) for i in range(4)]
        # Candidates share bitwise-equal segment rows across objects.
        candidates = [
            ObjectSignature(
                base[i % 4].features.copy(),
                base[i % 4].weights.copy(),
                object_id=i,
            )
            for i in range(24)
        ]
        params = EMDParams(threshold=1.2)
        query = _sig(rng, 99, 5)
        batched = emd_to_many(query, candidates, params, dedup=True)
        plain = emd_to_many(query, candidates, params, dedup=False)
        sequential = np.array([emd(query, c, params) for c in candidates])
        assert (batched == sequential).all()
        assert (plain == sequential).all()

    def test_empty_candidates(self):
        rng = np.random.default_rng(8)
        assert emd_to_many(_sig(rng, 1, 3), [], EMDParams()).size == 0


class TestCascadeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        config=st.integers(0, 4),
        top_k=st.integers(1, 30),
        exclude_self=st.booleans(),
    )
    def test_matches_rank_candidates(self, seed, config, top_k, exclude_self):
        rng = np.random.default_rng(seed)
        params = _param_configs()[config]
        objects = {
            i: _sig(rng, i, int(rng.integers(1, 6))) for i in range(25)
        }
        query = objects[0] if exclude_self else _sig(rng, 999, 3)
        dist = EMDDistance(params)
        # Candidate list includes ids removed between filter and rank.
        candidate_ids = list(objects) + [1000, 1001]
        expected = rank_candidates(
            query, candidate_ids, objects, dist,
            top_k=top_k, exclude_self=exclude_self,
        )
        got, stats = rank_candidates_many(
            query, candidate_ids, objects, dist,
            top_k=top_k, exclude_self=exclude_self,
        )
        assert got == expected
        assert stats.exact_evals + stats.lower_bound_prunes == stats.considered

    def test_matches_without_top_k(self):
        rng = np.random.default_rng(11)
        objects = {i: _sig(rng, i, 2) for i in range(15)}
        dist = EMDDistance(EMDParams())
        query = _sig(rng, 99, 2)
        expected = rank_candidates(query, list(objects), objects, dist)
        got, _stats = rank_candidates_many(query, list(objects), objects, dist)
        assert got == expected

    def test_deterministic_under_ties(self):
        rng = np.random.default_rng(12)
        base = _sig(rng, 0, 3)
        # Every candidate is the same signature => every distance ties;
        # the cascade must keep the smallest object ids, like the exact
        # path's (distance, object_id) ordering does.
        objects = {
            i: ObjectSignature(
                base.features.copy(), base.weights.copy(), object_id=i
            )
            for i in range(20)
        }
        dist = EMDDistance(EMDParams())
        query = _sig(rng, 99, 3)
        expected = rank_candidates(query, list(objects), objects, dist, top_k=5)
        got, _stats = rank_candidates_many(
            query, list(objects), objects, dist, top_k=5
        )
        assert got == expected
        assert [r.object_id for r in got] == [0, 1, 2, 3, 4]

    def test_cascade_off_falls_back(self):
        rng = np.random.default_rng(13)
        objects = {i: _sig(rng, i, 3) for i in range(12)}
        dist = EMDDistance(EMDParams())
        query = _sig(rng, 99, 3)
        off, stats = rank_candidates_many(
            query, list(objects), objects, dist, top_k=4,
            params=RankParams(cascade=False),
        )
        assert stats.exact_evals == len(objects)
        assert stats.lower_bound_prunes == 0
        on, _ = rank_candidates_many(
            query, list(objects), objects, dist, top_k=4
        )
        assert off == on

    def test_non_emd_distance_falls_back(self):
        rng = np.random.default_rng(14)
        objects = {i: _sig(rng, i, 1) for i in range(10)}
        dist = lambda a, b: float(abs(a.features[0, 0] - b.features[0, 0]))
        query = _sig(rng, 99, 1)
        expected = rank_candidates(query, list(objects), objects, dist, top_k=3)
        got, stats = rank_candidates_many(
            query, list(objects), objects, dist, top_k=3
        )
        assert got == expected
        assert stats.lower_bound_prunes == 0


class TestRankParams:
    def test_round_trip(self):
        params = RankParams(cascade=False, rowcol_bound=False)
        assert RankParams.from_dict(params.to_dict()) == params

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RankParams"):
            RankParams.from_dict({"cascade": True, "bogus": 1})

    def test_non_bool_rejected(self):
        with pytest.raises(ValueError, match="must be a bool"):
            RankParams(cascade="yes")

    def test_with_updates(self):
        assert RankParams().with_updates(cascade=False).cascade is False


class TestNonFiniteValidation:
    def test_error_carries_candidate_id(self):
        rng = np.random.default_rng(20)
        query = _sig(rng, 1, 3)
        bad = ObjectSignature(
            np.array([[np.nan, 0.0, 0.0, 0.0, 0.0]]),
            np.array([1.0]),
            object_id=42,
        )
        with pytest.raises(NonFiniteDistanceError) as excinfo:
            emd(query, bad)
        assert excinfo.value.object_id == 42
        assert "42" in str(excinfo.value)

    def test_error_is_a_value_error(self):
        assert issubclass(NonFiniteDistanceError, ValueError)

    def test_engine_surfaces_offender(self):
        rng = np.random.default_rng(21)
        plugin_objects = {
            i: _sig(rng, i, 2, dim=4) for i in range(6)
        }
        from repro.core.plugin import DataTypePlugin
        from repro.core.types import FeatureMeta

        plugin = DataTypePlugin(
            name="raw-nonfinite-test",
            meta=FeatureMeta(
                dim=4,
                min_values=np.full(4, -5.0),
                max_values=np.full(4, 5.0),
            ),
            emd_params=EMDParams(),
        )
        engine = SimilaritySearchEngine(
            plugin, SketchParams(32, plugin.meta, seed=0)
        )
        for sig in plugin_objects.values():
            engine.insert(sig)
        poisoned = ObjectSignature(
            np.array([[np.inf, 0.0, 0.0, 0.0], [0.0, 0.0, 0.0, 0.0]]),
            np.array([0.5, 0.5]),
            object_id=None,
        )
        poisoned_id = engine.insert(poisoned)
        query = _sig(rng, 999, 2, dim=4)
        with pytest.raises(NonFiniteDistanceError) as excinfo:
            engine.query(
                query, top_k=3, method=SearchMethod.BRUTE_FORCE_ORIGINAL
            )
        assert excinfo.value.object_id == poisoned_id


class TestEngineIntegration:
    def _engine(self, num_objects=120, seed=0, **kwargs):
        from repro.datatypes.bulk import bulk_image_dataset
        from repro.datatypes.image import make_image_plugin

        plugin = make_image_plugin()
        engine = SimilaritySearchEngine(
            plugin,
            SketchParams(64, plugin.meta, seed=seed),
            FilterParams(num_query_segments=3, candidates_per_segment=24),
            **kwargs,
        )
        engine.insert_many(list(bulk_image_dataset(num_objects, seed=seed)))
        return engine

    def test_cascade_on_off_identical_results(self):
        engine = self._engine()
        queries = [engine.get_object(i) for i in range(6)]
        engine.rank_params = RankParams(cascade=False)
        exact = [
            engine.query(q, top_k=5, exclude_self=True) for q in queries
        ]
        engine.rank_params = RankParams()
        engine._filter_cache.clear()
        cascade = [
            engine.query(q, top_k=5, exclude_self=True) for q in queries
        ]
        batched = engine.query_many(queries, top_k=5, exclude_self=True)
        assert cascade == exact
        assert batched == exact

    def test_metrics_and_trace_visibility(self):
        registry = obs_metrics.get_registry()
        registry.reset()
        engine = self._engine()
        engine.tracer.set_enabled(True)
        engine.query(engine.get_object(0), top_k=3, exclude_self=True)
        evals = registry.get("rank.exact_evals")
        prunes = registry.get("rank.lower_bound_prunes")
        rate = registry.get("rank.prune_rate")
        assert evals is not None and evals.value >= 1
        assert prunes is not None and prunes.value >= 0
        assert rate is not None and 0.0 <= rate.value <= 1.0
        trace = engine.tracer.last
        assert trace is not None
        assert "rank" in trace.stages
        assert trace.counts["rank_considered"] >= trace.counts["distance_evals"]
        assert "lower_bound_prunes" in trace.counts
        rank_spans = [s for s in trace.spans if s["name"] == "rank"]
        assert len(rank_spans) == 1
        assert rank_spans[0]["bound"] >= 0.0
        assert rank_spans[0]["solve"] >= 0.0
        rendered = "\n".join(trace.lines())
        assert "span.rank.bound_seconds" in rendered

    def test_prometheus_exposition_includes_rank_series(self):
        registry = obs_metrics.get_registry()
        registry.reset()
        engine = self._engine()
        engine.query(engine.get_object(0), top_k=3, exclude_self=True)
        text = "\n".join(registry.render_prometheus())
        assert "ferret_rank_exact_evals" in text
        assert "ferret_rank_lower_bound_prunes" in text
        assert "ferret_rank_prune_rate" in text
