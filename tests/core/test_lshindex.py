"""Tests for the bit-sampling LSH index over sketches."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    LSHIndex,
    LSHParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchConstructor,
    SketchParams,
)


def _sketcher(n_bits=256, dim=8, seed=0):
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    return SketchConstructor(SketchParams(n_bits, meta, seed=seed))


class TestParams:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LSHParams(num_tables=0)
        with pytest.raises(ValueError):
            LSHParams(bits_per_key=0)

    def test_bits_per_key_bounded_by_sketch(self):
        with pytest.raises(ValueError):
            LSHIndex(n_bits=16, params=LSHParams(bits_per_key=32))

    def test_repr(self):
        assert "num_tables=4" in repr(LSHParams(num_tables=4))


class TestIndexBehavior:
    def test_identical_sketch_always_collides(self):
        sk = _sketcher()
        index = LSHIndex(sk.n_bits, LSHParams(num_tables=4, bits_per_key=12))
        v = np.random.default_rng(0).random(8)
        sketch = sk.sketch(v)[None, :]
        index.add(7, sketch)
        assert 7 in index.candidates(sketch)

    def test_near_collides_far_usually_does_not(self):
        rng = np.random.default_rng(1)
        sk = _sketcher(n_bits=512)
        index = LSHIndex(sk.n_bits, LSHParams(num_tables=10, bits_per_key=14))
        base = rng.random(8)
        near = np.clip(base + rng.normal(0, 0.01, 8), 0, 1)
        index.add(1, sk.sketch(near)[None, :])
        # add far objects
        far_hits = 0
        for oid in range(2, 40):
            far = rng.random(8)
            index.add(oid, sk.sketch(far)[None, :])
        candidates = index.candidates(sk.sketch(base)[None, :])
        assert 1 in candidates
        assert len(candidates) < 20  # most far objects excluded

    def test_candidates_within_drops_false_positives(self):
        """Verified probing: bucket hits farther than max_hamming from
        every query segment are pruned by the batched Hamming check."""
        rng = np.random.default_rng(5)
        sk = _sketcher(n_bits=256)
        # One table sampling a single bit: collisions are nearly
        # guaranteed, so the raw candidate set is full of false positives.
        index = LSHIndex(sk.n_bits, LSHParams(num_tables=1, bits_per_key=1))
        base = rng.random(8)
        index.add(1, sk.sketch(np.clip(base + 0.005, 0, 1))[None, :])
        for oid in range(2, 30):
            index.add(oid, sk.sketch(rng.random(8))[None, :])
        query = sk.sketch(base)[None, :]
        raw = index.candidates(query)
        verified = index.candidates_within(query, max_hamming=sk.n_bits // 8)
        assert verified <= raw
        assert 1 in verified
        assert len(verified) < len(raw)

    def test_candidates_within_empty_probe(self):
        sk = _sketcher()
        index = LSHIndex(sk.n_bits, LSHParams(num_tables=2, bits_per_key=16))
        query = sk.sketch(np.random.default_rng(0).random(8))[None, :]
        assert index.candidates_within(query, max_hamming=10) == set()

    def test_keys_many_matches_per_row(self):
        """The vectorized key extraction equals per-row extraction."""
        rng = np.random.default_rng(6)
        sk = _sketcher()
        index = LSHIndex(sk.n_bits, LSHParams(num_tables=5, bits_per_key=12))
        sketches = sk.sketch_many(rng.random((7, 8)))
        batched = index._keys_many(sketches)
        for row_idx in range(7):
            per_row = index._keys(sketches[row_idx])
            for table_idx in range(5):
                assert batched[table_idx][row_idx] == per_row[table_idx]

    def test_multi_segment_union(self):
        sk = _sketcher()
        index = LSHIndex(sk.n_bits, LSHParams(num_tables=6, bits_per_key=10))
        rng = np.random.default_rng(2)
        seg_a, seg_b = rng.random(8), rng.random(8)
        index.add(1, sk.sketch(seg_a)[None, :])
        index.add(2, sk.sketch(seg_b)[None, :])
        query = sk.sketch_many(np.stack([seg_a, seg_b]))
        assert index.candidates(query) >= {1, 2}

    def test_segment_count(self):
        sk = _sketcher()
        index = LSHIndex(sk.n_bits)
        index.add(1, sk.sketch_many(np.random.rand(3, 8)))
        assert index.num_segments == 3

    def test_bucket_stats_empty(self):
        index = LSHIndex(64)
        assert index.bucket_stats() == (0.0, 0)

    def test_collision_probability_monotone(self):
        index = LSHIndex(256, LSHParams(num_tables=8, bits_per_key=16))
        probs = [index.expected_collision_probability(h) for h in (0, 16, 64, 128)]
        assert probs[0] == pytest.approx(1.0)
        assert probs == sorted(probs, reverse=True)


class TestEngineIntegration:
    def _engine(self, lsh=True):
        meta = FeatureMeta(8, np.zeros(8), np.ones(8))
        return SimilaritySearchEngine(
            DataTypePlugin("t", meta),
            SketchParams(256, meta, seed=1),
            lsh_params=LSHParams(num_tables=10, bits_per_key=10) if lsh else None,
        )

    def test_lsh_query_finds_near_duplicates(self):
        engine = self._engine()
        rng = np.random.default_rng(3)
        base = rng.random((3, 8))
        engine.insert(ObjectSignature(base, [1, 1, 1]))
        engine.insert(
            ObjectSignature(np.clip(base + 0.005, 0, 1), [1, 1, 1])
        )
        for _ in range(80):
            engine.insert(ObjectSignature(rng.random((3, 8)), [1, 1, 1]))
        results = engine.query_by_id(0, top_k=3, method=SearchMethod.LSH,
                                     exclude_self=True)
        assert results[0].object_id == 1

    def test_lsh_without_index_raises(self):
        engine = self._engine(lsh=False)
        engine.insert(ObjectSignature(np.random.rand(1, 8), [1.0]))
        with pytest.raises(ValueError):
            engine.query_by_id(0, method=SearchMethod.LSH)

    def test_lsh_candidates_ranked_exactly(self):
        """Whatever LSH returns must carry exact object distances."""
        engine = self._engine()
        rng = np.random.default_rng(4)
        for _ in range(50):
            engine.insert(ObjectSignature(rng.random((2, 8)), [1, 1]))
        brute = {
            r.object_id: r.distance
            for r in engine.query_by_id(
                0, top_k=50, method=SearchMethod.BRUTE_FORCE_ORIGINAL
            )
        }
        for r in engine.query_by_id(0, top_k=10, method=SearchMethod.LSH):
            assert r.distance == pytest.approx(brute[r.object_id], rel=1e-9)

    def test_parse_lsh(self):
        assert SearchMethod.parse("lsh") is SearchMethod.LSH
