"""Unit + property tests for segment distance functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.core.distance import (
    cosine_distance,
    get_distance,
    l1_distance,
    l1_to_many,
    l2_distance,
    l2_to_many,
    lp_distance,
    pearson_distance,
    register_distance,
    spearman_distance,
    weighted_l1_distance,
    weighted_l1_to_many,
)

_vec = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=20
)


class TestLpNorms:
    def test_l1_known(self):
        assert l1_distance(np.array([1.0, 2.0]), np.array([4.0, 0.0])) == 5.0

    def test_l2_known(self):
        assert l2_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_linf(self):
        assert lp_distance(np.array([1.0, 5.0]), np.array([2.0, 1.0]), np.inf) == 4.0

    def test_p3(self):
        d = lp_distance(np.zeros(2), np.array([1.0, 1.0]), 3)
        assert d == pytest.approx(2 ** (1 / 3))

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            lp_distance(np.zeros(2), np.ones(2), 0)

    @given(st.tuples(_vec, _vec).filter(lambda t: len(t[0]) == len(t[1])))
    def test_property_metric_axioms_l1(self, pair):
        a, b = np.asarray(pair[0]), np.asarray(pair[1])
        assert l1_distance(a, a) == 0.0
        assert l1_distance(a, b) == pytest.approx(l1_distance(b, a))
        assert l1_distance(a, b) >= 0.0

    @given(st.tuples(_vec, _vec, _vec).filter(
        lambda t: len(t[0]) == len(t[1]) == len(t[2])
    ))
    def test_property_triangle_l2(self, triple):
        a, b, c = (np.asarray(v) for v in triple)
        assert l2_distance(a, b) <= l2_distance(a, c) + l2_distance(c, b) + 1e-9

    def test_l1_le_sqrt_d_times_l2(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=8), rng.normal(size=8)
            assert l1_distance(a, b) <= np.sqrt(8) * l2_distance(a, b) + 1e-12


class TestWeightedL1:
    def test_weights_scale_dimensions(self):
        a, b = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert weighted_l1_distance(a, b, np.array([2.0, 3.0])) == 5.0

    def test_zero_weight_ignores_dimension(self):
        a, b = np.array([0.0, 0.0]), np.array([100.0, 1.0])
        assert weighted_l1_distance(a, b, np.array([0.0, 1.0])) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_l1_distance(np.zeros(2), np.zeros(2), np.ones(3))


class TestCorrelationDistances:
    def test_pearson_matches_scipy(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a, b = rng.normal(size=20), rng.normal(size=20)
            r, _ = scipy_stats.pearsonr(a, b)
            assert pearson_distance(a, b) == pytest.approx(1 - r, abs=1e-10)

    def test_spearman_matches_scipy(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a, b = rng.normal(size=25), rng.normal(size=25)
            rho, _ = scipy_stats.spearmanr(a, b)
            assert spearman_distance(a, b) == pytest.approx(1 - rho, abs=1e-10)

    def test_spearman_with_ties(self):
        a = np.array([1.0, 1.0, 2.0, 3.0, 3.0])
        b = np.array([2.0, 1.0, 3.0, 5.0, 4.0])
        rho, _ = scipy_stats.spearmanr(a, b)
        assert spearman_distance(a, b) == pytest.approx(1 - rho, abs=1e-10)

    def test_pearson_perfect_correlation(self):
        a = np.arange(10, dtype=float)
        assert pearson_distance(a, 3 * a + 1) == pytest.approx(0.0)
        assert pearson_distance(a, -a) == pytest.approx(2.0)

    def test_pearson_constant_vectors(self):
        const = np.full(5, 2.0)
        varying = np.arange(5, dtype=float)
        assert pearson_distance(const, const) == 0.0
        assert pearson_distance(const, varying) == 1.0

    def test_spearman_monotone_invariance(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=30)
        b = rng.normal(size=30)
        d1 = spearman_distance(a, b)
        d2 = spearman_distance(np.exp(a), b)  # monotone transform of a
        assert d1 == pytest.approx(d2, abs=1e-10)


class TestCosine:
    def test_parallel_is_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert cosine_distance(a, 5 * a) == pytest.approx(0.0)

    def test_orthogonal_is_one(self):
        assert cosine_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_zero_vectors(self):
        z = np.zeros(3)
        assert cosine_distance(z, z) == 0.0
        assert cosine_distance(z, np.ones(3)) == 1.0


class TestVectorizedScans:
    def test_l1_to_many_matches_loop(self):
        rng = np.random.default_rng(4)
        q = rng.normal(size=6)
        m = rng.normal(size=(15, 6))
        scan = l1_to_many(q, m)
        assert np.allclose(scan, [l1_distance(q, row) for row in m])

    def test_l2_to_many_matches_loop(self):
        rng = np.random.default_rng(5)
        q = rng.normal(size=6)
        m = rng.normal(size=(15, 6))
        assert np.allclose(l2_to_many(q, m), [l2_distance(q, row) for row in m])

    def test_weighted_l1_to_many_matches_loop(self):
        rng = np.random.default_rng(6)
        q = rng.normal(size=6)
        m = rng.normal(size=(15, 6))
        w = rng.random(6)
        assert np.allclose(
            weighted_l1_to_many(q, m, w),
            [weighted_l1_distance(q, row, w) for row in m],
        )


class TestRegistry:
    def test_builtins_present(self):
        for name in ("l1", "l2", "cosine", "pearson", "spearman"):
            assert callable(get_distance(name))

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_distance("no-such-distance")

    def test_register_custom(self):
        register_distance("test_custom", lambda a, b: 42.0)
        assert get_distance("test_custom")(None, None) == 42.0

    def test_register_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_distance("bad", "not-a-function")


class TestHistogramDistances:
    def test_chi2_identity_and_symmetry(self):
        rng = np.random.default_rng(10)
        a, b = rng.random(12), rng.random(12)
        from repro.core.distance import chi_square_distance

        assert chi_square_distance(a, a) == pytest.approx(0.0)
        assert chi_square_distance(a, b) == pytest.approx(chi_square_distance(b, a))
        assert chi_square_distance(a, b) >= 0.0

    def test_chi2_zero_bins_ignored(self):
        from repro.core.distance import chi_square_distance

        a = np.array([0.0, 1.0, 0.0])
        b = np.array([0.0, 3.0, 0.0])
        assert chi_square_distance(a, b) == pytest.approx(0.5 * 4 / 4)

    def test_chi2_rejects_negative(self):
        from repro.core.distance import chi_square_distance

        with pytest.raises(ValueError):
            chi_square_distance(np.array([-1.0]), np.array([1.0]))

    def test_histogram_intersection_bounds(self):
        from repro.core.distance import histogram_intersection_distance

        a = np.array([2.0, 2.0])
        assert histogram_intersection_distance(a, a) == pytest.approx(0.0)
        disjoint = histogram_intersection_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        )
        assert disjoint == pytest.approx(1.0)

    def test_histogram_intersection_empty(self):
        from repro.core.distance import histogram_intersection_distance

        z = np.zeros(4)
        assert histogram_intersection_distance(z, z) == 0.0
        assert histogram_intersection_distance(z, np.ones(4)) == pytest.approx(1.0)

    def test_registered(self):
        assert callable(get_distance("chi2"))
        assert callable(get_distance("histogram_intersection"))
