"""Unit tests for core data types."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Dataset,
    FeatureMeta,
    ObjectSignature,
    meta_from_dataset,
    normalize_weights,
)


class TestNormalizeWeights:
    def test_sums_to_one(self):
        w = normalize_weights([1.0, 2.0, 3.0])
        assert w.sum() == pytest.approx(1.0)
        assert np.allclose(w, [1 / 6, 2 / 6, 3 / 6])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_weights([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_weights([0.5, -0.1])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_weights([0.0, 0.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            normalize_weights(np.ones((2, 2)))

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=30)
    )
    def test_property_sums_to_one(self, weights):
        assert normalize_weights(weights).sum() == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=30)
    )
    def test_property_preserves_order(self, weights):
        """Normalization preserves ordering up to floating-point rounding
        (dividing by the sum can collapse last-ulp differences)."""
        normalized = normalize_weights(weights)
        order_before = np.argsort(weights, kind="stable")
        arranged = normalized[order_before]
        assert np.all(np.diff(arranged) >= -1e-12 * np.abs(arranged[:-1]))


class TestFeatureMeta:
    def test_ranges(self):
        meta = FeatureMeta(3, np.array([0.0, -1.0, 2.0]), np.array([1.0, 1.0, 4.0]))
        assert np.allclose(meta.ranges, [1.0, 2.0, 2.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            FeatureMeta(3, np.zeros(2), np.ones(3))

    def test_rejects_max_below_min(self):
        with pytest.raises(ValueError):
            FeatureMeta(2, np.array([0.0, 1.0]), np.array([1.0, 0.0]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            FeatureMeta(2, np.zeros(2), np.ones(2), weights=np.array([1.0, -1.0]))

    def test_from_samples(self):
        samples = np.array([[0.0, 5.0], [2.0, 3.0], [1.0, 4.0]])
        meta = FeatureMeta.from_samples(samples)
        assert np.allclose(meta.min_values, [0.0, 3.0])
        assert np.allclose(meta.max_values, [2.0, 5.0])


class TestObjectSignature:
    def test_basic_construction(self):
        obj = ObjectSignature(np.ones((3, 4)), [1, 1, 2])
        assert obj.num_segments == 3
        assert obj.dim == 4
        assert obj.weights.sum() == pytest.approx(1.0)

    def test_single_vector_promoted_to_2d(self):
        obj = ObjectSignature(np.ones(4), [1.0])
        assert obj.features.shape == (1, 4)

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            ObjectSignature(np.ones((3, 4)), [1.0, 1.0])

    def test_no_normalize_keeps_weights(self):
        obj = ObjectSignature(np.ones((2, 2)), [0.7, 0.3], normalize=False)
        assert np.allclose(obj.weights, [0.7, 0.3])

    def test_top_segments_order(self):
        obj = ObjectSignature(np.ones((4, 2)), [0.1, 0.4, 0.2, 0.3])
        assert obj.top_segments(2) == [1, 3]
        assert obj.top_segments(10) == [1, 3, 2, 0]

    def test_top_segments_stable_on_ties(self):
        obj = ObjectSignature(np.ones((3, 2)), [0.3, 0.3, 0.4])
        assert obj.top_segments(3) == [2, 0, 1]

    def test_segment_accessor(self):
        feats = np.arange(6, dtype=float).reshape(2, 3)
        obj = ObjectSignature(feats, [1.0, 3.0])
        vec, weight = obj.segment(1)
        assert np.allclose(vec, [3, 4, 5])
        assert weight == pytest.approx(0.75)

    def test_equality(self):
        a = ObjectSignature(np.ones((2, 2)), [1, 1], object_id=5)
        b = ObjectSignature(np.ones((2, 2)), [1, 1], object_id=5)
        c = ObjectSignature(np.zeros((2, 2)), [1, 1], object_id=5)
        assert a == b
        assert a != c


class TestDataset:
    def test_add_assigns_ids(self):
        ds = Dataset()
        ids = [ds.add(ObjectSignature(np.ones((1, 2)), [1.0])) for _ in range(3)]
        assert ids == [0, 1, 2]
        assert len(ds) == 3

    def test_duplicate_id_rejected(self):
        ds = Dataset()
        ds.add(ObjectSignature(np.ones((1, 2)), [1.0], object_id=7))
        with pytest.raises(KeyError):
            ds.add(ObjectSignature(np.ones((1, 2)), [1.0], object_id=7))

    def test_avg_segments(self):
        ds = Dataset()
        ds.add(ObjectSignature(np.ones((2, 2)), [1, 1]))
        ds.add(ObjectSignature(np.ones((4, 2)), [1, 1, 1, 1]))
        assert ds.avg_segments == pytest.approx(3.0)
        assert ds.total_segments == 6

    def test_contains_and_getitem(self):
        ds = Dataset()
        oid = ds.add(ObjectSignature(np.ones((1, 2)), [1.0]))
        assert oid in ds
        assert ds[oid].dim == 2
        assert 999 not in ds


class TestMetaFromDataset:
    def test_bounds_cover_data(self):
        ds = Dataset()
        rng = np.random.default_rng(0)
        for _ in range(10):
            ds.add(ObjectSignature(rng.normal(size=(3, 5)), np.ones(3)))
        meta = meta_from_dataset(ds)
        stacked = np.concatenate([o.features for o in ds])
        assert np.all(meta.min_values <= stacked.min(axis=0))
        assert np.all(meta.max_values >= stacked.max(axis=0))

    def test_constant_dimension_gets_range(self):
        ds = Dataset()
        feats = np.zeros((2, 3))
        feats[:, 1] = 5.0  # constant dims 0,1,2
        ds.add(ObjectSignature(feats, [1, 1]))
        meta = meta_from_dataset(ds)
        assert np.all(meta.ranges > 0)
