"""Tests for the batch query API and batched bulk insert.

``query_many`` must agree with per-query ``query`` calls, and — because
the ``SegmentStore`` snapshot/lock design permits concurrent scans
during inserts — running batches while a writer thread inserts and
removes objects must never observe a torn snapshot (mismatched
owners/sketch arrays, stale ids crashing the ranker, etc.).
"""

import threading

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)


def _build_engine(dim=8, count=40, seed=0, **filter_kwargs):
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta),
        SketchParams(256, meta, seed=1),
        FilterParams(**filter_kwargs) if filter_kwargs else None,
    )
    rng = np.random.default_rng(seed)
    for _ in range(count):
        k = int(rng.integers(1, 5))
        engine.insert(ObjectSignature(rng.random((k, dim)), rng.random(k) + 0.1))
    return engine, rng


class TestQueryMany:
    def test_matches_sequential_queries(self):
        engine, _rng = _build_engine(
            num_query_segments=3, candidates_per_segment=20
        )
        queries = [engine.get_object(i) for i in (0, 7, 13, 25, 39)]
        batched = engine.query_many(queries, top_k=6, exclude_self=True)
        for q, got in zip(queries, batched):
            expected = engine.query(q, top_k=6, exclude_self=True)
            assert [r.object_id for r in got] == [r.object_id for r in expected]
            assert [r.distance for r in got] == [r.distance for r in expected]

    def test_matches_sequential_with_cascade_and_restrict(self):
        engine, _rng = _build_engine(
            count=60, num_query_segments=4, candidates_per_segment=60,
            threshold_fraction=None,
        )
        restrict = list(range(0, 60, 2))
        queries = [engine.get_object(i) for i in (2, 18, 44)]
        batched = engine.query_many(
            queries, top_k=5, exclude_self=True, restrict_to=restrict,
            cascade=10,
        )
        for q, got in zip(queries, batched):
            expected = engine.query(
                q, top_k=5, exclude_self=True, restrict_to=restrict, cascade=10
            )
            assert [r.object_id for r in got] == [r.object_id for r in expected]

    @pytest.mark.parametrize(
        "method",
        [SearchMethod.BRUTE_FORCE_ORIGINAL, SearchMethod.BRUTE_FORCE_SKETCH],
    )
    def test_other_methods_fan_out(self, method):
        engine, _rng = _build_engine(count=25)
        queries = [engine.get_object(i) for i in (1, 11, 21)]
        batched = engine.query_many(queries, top_k=4, method=method)
        for q, got in zip(queries, batched):
            expected = engine.query(q, top_k=4, method=method)
            assert [r.object_id for r in got] == [r.object_id for r in expected]

    def test_empty_batch_and_empty_engine(self):
        engine, _rng = _build_engine(count=5)
        assert engine.query_many([]) == []
        meta = FeatureMeta(8, np.zeros(8), np.ones(8))
        empty = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(64, meta, seed=0)
        )
        q = ObjectSignature(np.random.rand(2, 8), [1, 1])
        assert empty.query_many([q, q]) == [[], []]

    def test_invalid_top_k(self):
        engine, _rng = _build_engine(count=5)
        with pytest.raises(ValueError):
            engine.query_many([engine.get_object(0)], top_k=0)

    def test_queries_during_concurrent_inserts_and_removes(self):
        """No torn snapshots: batches issued while a writer thread inserts
        and removes must complete without error and only return ids that
        existed at some point."""
        engine, rng = _build_engine(
            count=30, num_query_segments=2, candidates_per_segment=30
        )
        dim = 8
        ever_inserted = set(range(30))
        errors = []
        stop = threading.Event()

        def writer():
            wrng = np.random.default_rng(99)
            next_id = 1000
            alive = []
            try:
                while not stop.is_set():
                    k = int(wrng.integers(1, 4))
                    sig = ObjectSignature(
                        wrng.random((k, dim)), wrng.random(k) + 0.1
                    )
                    engine.insert(sig, object_id=next_id)
                    ever_inserted.add(next_id)
                    alive.append(next_id)
                    next_id += 1
                    if len(alive) > 5:
                        engine.remove(alive.pop(0))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            queries = [engine.get_object(i) for i in range(10)]
            for _ in range(15):
                batches = engine.query_many(queries, top_k=8, exclude_self=True)
                assert len(batches) == len(queries)
                for results in batches:
                    dists = [r.distance for r in results]
                    assert dists == sorted(dists)
                    for r in results:
                        assert r.object_id in ever_inserted
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not errors, f"writer thread failed: {errors}"


class TestInsertMany:
    def test_same_sketches_as_individual_inserts(self):
        meta = FeatureMeta(6, np.zeros(6), np.ones(6))
        rng = np.random.default_rng(3)
        # build two engines with identical params, insert one-by-one vs bulk
        sigs = []
        for _ in range(20):
            k = int(rng.integers(1, 5))
            feats = rng.random((k, 6))
            sigs.append((feats, rng.random(k) + 0.1))
        single = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(128, meta, seed=2)
        )
        bulk = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(128, meta, seed=2)
        )
        for feats, w in sigs:
            single.insert(ObjectSignature(feats.copy(), w.copy()))
        ids = bulk.insert_many(
            [ObjectSignature(feats.copy(), w.copy()) for feats, w in sigs]
        )
        assert ids == list(range(20))
        for oid in ids:
            assert np.array_equal(
                single._object_sketches[oid], bulk._object_sketches[oid]
            )
        q = single.get_object(4)
        assert [r.object_id for r in single.query(q, top_k=5)] == [
            r.object_id for r in bulk.query(q, top_k=5)
        ]

    def test_empty_batch(self):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        engine = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(64, meta, seed=0)
        )
        assert engine.insert_many([]) == []
