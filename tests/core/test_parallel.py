"""Sharded parallel filtering scan: correctness, caching, fallback.

The pool path must be *candidate-set identical* to both serial
implementations (`sketch_filter_many` and the per-segment
`sketch_filter_reference`) under every shard geometry — that is the
acceptance gate for the shared-memory scan.  Determinism under ties is
what makes that possible: every path selects the k smallest distances
with smallest-row-index-wins at the kth value, so shard boundaries and
merge order cannot change the result.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    ParallelConfig,
    ParallelFilterPool,
    ParallelScanError,
    QueryResultCache,
    SegmentStore,
    SimilaritySearchEngine,
    SketchConstructor,
    SketchParams,
    get_threshold_fn,
    parallel_sketch_filter,
    parallel_sketch_filter_many,
    register_threshold_fn,
    sketch_filter,
    sketch_filter_many,
    sketch_filter_reference,
)

WORKER_COUNTS = (1, 2, 3)


# ----------------------------------------------------------------------
# Store builders
# ----------------------------------------------------------------------
def _seeded_store(seed, num_objects=40, segs=3, dim=8, n_bits=64,
                  dup_frac=0.35, tombstones=()):
    """Random store with deliberate duplicate segments (=> distance ties)."""
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    sk = SketchConstructor(SketchParams(n_bits, meta, seed=seed))
    store = SegmentStore(sk.n_words, dim)
    rng = np.random.default_rng(seed)
    pool_feats = rng.random((6, dim))  # shared rows -> identical sketches
    objects = {}
    for oid in range(num_objects):
        feats = rng.random((segs, dim))
        for s in range(segs):
            if rng.random() < dup_frac:
                feats[s] = pool_feats[rng.integers(0, len(pool_feats))]
        objects[oid] = ObjectSignature(
            feats, rng.random(segs) + 0.1, object_id=oid
        )
        store.add_object(oid, sk.sketch_many(feats), feats)
    for oid in tombstones:
        store.remove_object(oid)
    return sk, store, objects


def _handmade_store(words_per_row, owners_per_row, n_bits=64):
    """Store whose packed sketch words (hence distances) are explicit."""
    store = SegmentStore(n_words=1, dim=2)
    for owner, word in zip(owners_per_row, words_per_row):
        store.add_object(
            owner,
            np.array([[word]], dtype=np.uint64),
            np.zeros((1, 2)),
        )
    return store


def _load_pool(pool, store):
    epoch, owners, sketches = store.versioned_snapshot()
    pool.load(owners, sketches, epoch=epoch)


PARAMS_VARIANTS = [
    FilterParams(num_query_segments=3, candidates_per_segment=8),
    FilterParams(num_query_segments=2, candidates_per_segment=4,
                 threshold_fraction=0.35),
    FilterParams(num_query_segments=1, candidates_per_segment=1000,
                 threshold_fraction=0.5, threshold_fn="constant"),
]


# ----------------------------------------------------------------------
# Property: pool == serial == reference, across shard geometries
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=WORKER_COUNTS)
def pool(request):
    with ParallelFilterPool(num_workers=request.param) as p:
        yield p


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shard_rows=st.sampled_from([None, 3, 17]),
    variant=st.integers(0, len(PARAMS_VARIANTS) - 1),
)
def test_pool_matches_reference_randomized(seed, shard_rows, variant):
    """Randomized equivalence at every worker count (incl. 1)."""
    params = PARAMS_VARIANTS[variant]
    sk, store, objects = _seeded_store(seed, tombstones=range(5, 12))
    queries = [objects[0], objects[20], objects[7]]
    sketches = [sk.sketch_many(q.features) for q in queries]
    serial = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
    for workers in WORKER_COUNTS:
        with ParallelFilterPool(
            num_workers=workers, shard_rows=shard_rows
        ) as p:
            _load_pool(p, store)
            par = parallel_sketch_filter_many(
                queries, sketches, params, sk.n_bits, p
            )
        assert par == serial
    for q, qs, expect in zip(queries, sketches, serial):
        assert sketch_filter_reference(q, qs, store, params, sk.n_bits) == expect


def test_pool_matches_reference_all_params(pool):
    """Dense check on one store across the parameter grid (per fixture
    worker count), including the fused serial path and tombstones."""
    sk, store, objects = _seeded_store(123, tombstones=range(10, 22))
    queries = [objects[i] for i in (0, 3, 30)]
    sketches = [sk.sketch_many(q.features) for q in queries]
    _load_pool(pool, store)
    for params in PARAMS_VARIANTS:
        serial = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
        par = parallel_sketch_filter_many(
            queries, sketches, params, sk.n_bits, pool
        )
        assert par == serial
        for q, qs, expect in zip(queries, sketches, serial):
            assert (
                sketch_filter(q, qs, store, params, sk.n_bits) == expect
            )
            assert (
                sketch_filter_reference(q, qs, store, params, sk.n_bits)
                == expect
            )
            assert (
                parallel_sketch_filter(q, qs, params, sk.n_bits, pool)
                == expect
            )


# ----------------------------------------------------------------------
# Tie and boundary cases
# ----------------------------------------------------------------------
def _one_segment_query():
    return ObjectSignature(np.zeros((1, 2)), [1.0], object_id=999)


def test_ties_exactly_at_distance_threshold(pool):
    """Rows at distance == threshold are kept; one popcount more is cut.

    With ``threshold_fn="constant"`` and ``threshold_fraction=2/64`` the
    cutoff is exactly 2.0, which every path must compare identically.
    """
    # Query sketch = all-zero word; row distance == popcount of its word.
    words = [0b0, 0b1, 0b11, 0b11, 0b111, 0b1111111]  # dists 0,1,2,2,3,7
    store = _handmade_store(words, owners_per_row=[10, 11, 12, 13, 14, 15])
    params = FilterParams(
        num_query_segments=1, candidates_per_segment=100,
        threshold_fraction=2 / 64, threshold_fn="constant",
    )
    query = _one_segment_query()
    qs = np.array([[0]], dtype=np.uint64)
    expect = {10, 11, 12, 13}  # d <= 2 kept, d == 3 cut
    assert sketch_filter_reference(query, qs, store, params, 64) == expect
    assert sketch_filter(query, qs, store, params, 64) == expect
    _load_pool(pool, store)
    assert parallel_sketch_filter(query, qs, params, 64, pool) == expect


def test_ties_at_kth_boundary_pick_smallest_rows(pool):
    """Five rows tie at the kth distance; every path keeps the same two
    (smallest row index wins), so shard geometry cannot flip the set."""
    words = [0b11] * 5 + [0b1]  # rows 0-4 at distance 2, row 5 at 1
    store = _handmade_store(words, owners_per_row=[20, 21, 22, 23, 24, 25])
    params = FilterParams(num_query_segments=1, candidates_per_segment=3)
    query = _one_segment_query()
    qs = np.array([[0]], dtype=np.uint64)
    expect = {25, 20, 21}  # d=1 row, then rows 0 and 1 of the tie
    assert sketch_filter_reference(query, qs, store, params, 64) == expect
    assert sketch_filter(query, qs, store, params, 64) == expect
    for shard_rows in (None, 1, 2):
        with ParallelFilterPool(num_workers=2, shard_rows=shard_rows) as p:
            _load_pool(p, store)
            assert parallel_sketch_filter(query, qs, params, 64, p) == expect


def test_k_larger_than_shard_size(pool):
    """candidates_per_segment far beyond shard_rows and row count."""
    sk, store, objects = _seeded_store(5, num_objects=7, segs=2)
    params = FilterParams(num_query_segments=2, candidates_per_segment=1000)
    q = objects[0]
    qs = sk.sketch_many(q.features)
    expect = sketch_filter_reference(q, qs, store, params, sk.n_bits)
    with ParallelFilterPool(num_workers=3, shard_rows=2) as p:
        _load_pool(p, store)
        assert parallel_sketch_filter(q, qs, params, sk.n_bits, p) == expect


def test_empty_shards_more_workers_than_rows():
    """Workers that receive no shard must still answer scans."""
    sk, store, objects = _seeded_store(6, num_objects=1, segs=2)
    params = FilterParams(num_query_segments=2, candidates_per_segment=5)
    q = objects[0]
    qs = sk.sketch_many(q.features)
    expect = sketch_filter_reference(q, qs, store, params, sk.n_bits)
    with ParallelFilterPool(num_workers=3) as p:  # 2 rows, 3 workers
        _load_pool(p, store)
        assert parallel_sketch_filter(q, qs, params, sk.n_bits, p) == expect


def test_empty_store_and_all_tombstones(pool):
    params = FilterParams(num_query_segments=1, candidates_per_segment=5)
    query = _one_segment_query()
    qs = np.array([[0]], dtype=np.uint64)
    empty = SegmentStore(n_words=1, dim=2)
    _load_pool(pool, empty)
    assert parallel_sketch_filter(query, qs, params, 64, pool) == set()
    dead = _handmade_store([0b1, 0b10], owners_per_row=[1, 2])
    dead.remove_object(1)
    dead.remove_object(2)
    _load_pool(pool, dead)
    assert parallel_sketch_filter(query, qs, params, 64, pool) == set()
    assert sketch_filter(query, qs, dead, params, 64) == set()


def test_spawn_start_method():
    sk, store, objects = _seeded_store(9, num_objects=10)
    params = FilterParams(num_query_segments=2, candidates_per_segment=6)
    q = objects[2]
    qs = sk.sketch_many(q.features)
    expect = sketch_filter_reference(q, qs, store, params, sk.n_bits)
    with ParallelFilterPool(num_workers=2, start_method="spawn") as p:
        _load_pool(p, store)
        assert parallel_sketch_filter(q, qs, params, sk.n_bits, p) == expect


def test_pool_staleness_and_reload(pool):
    sk, store, objects = _seeded_store(11, num_objects=8)
    _load_pool(pool, store)
    assert pool.matches(store.epoch)
    feats = np.random.default_rng(0).random((2, 8))
    store.add_object(
        100, sk.sketch_many(feats), feats
    )
    assert not pool.matches(store.epoch)
    _load_pool(pool, store)
    assert pool.matches(store.epoch)
    assert pool.n_rows == len(store.owners)


def test_closed_pool_raises():
    p = ParallelFilterPool(num_workers=1)
    p.close()
    with pytest.raises(ParallelScanError):
        p.scan_topk(np.zeros((1, 1), dtype=np.uint64), 1)


# ----------------------------------------------------------------------
# FilterParams registry / serialization
# ----------------------------------------------------------------------
def test_threshold_fn_registry_roundtrip():
    params = FilterParams(threshold_fraction=0.4, threshold_fn="constant")
    assert params.threshold_factor(0.25) == 1.0
    clone = FilterParams.from_dict(params.to_dict())
    assert clone == params
    assert clone.cache_key() == params.cache_key()
    with pytest.raises(ValueError, match="registered"):
        get_threshold_fn("no-such-fn")
    with pytest.raises(ValueError):
        FilterParams(threshold_fn="no-such-fn")


def test_unregistered_callable_not_serializable():
    params = FilterParams(threshold_fn=lambda w: 2.0)
    assert params.threshold_factor(0.5) == 2.0
    assert params.cache_key() is None  # uncacheable, never wrong
    with pytest.raises(ValueError, match="register_threshold_fn"):
        params.require_serializable("the worker pool")
    with pytest.raises(ValueError):
        params.to_dict()
    register_threshold_fn("test-doubler", lambda w: 2.0 * w)
    named = FilterParams(threshold_fn="test-doubler")
    named.require_serializable()
    assert named.threshold_factor(3.0) == 6.0


# ----------------------------------------------------------------------
# Query-result cache
# ----------------------------------------------------------------------
def test_cache_hit_identity_and_epoch_invalidation():
    cache = QueryResultCache(max_entries=4)
    value = frozenset({1, 2})
    assert cache.lookup(0, "a") is None
    cache.store(0, "a", value)
    assert cache.lookup(0, "a") is value  # same object, not a copy
    assert cache.lookup(1, "a") is None  # epoch moved -> flushed
    cache.store(1, "a", value)
    assert len(cache) == 1
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["invalidations"] == 1


def test_cache_lru_bound_and_disabled():
    cache = QueryResultCache(max_entries=2)
    cache.store(0, "a", 1)
    cache.store(0, "b", 2)
    assert cache.lookup(0, "a") == 1  # refresh "a"
    cache.store(0, "c", 3)  # evicts "b"
    assert cache.lookup(0, "b") is None
    assert cache.lookup(0, "a") == 1
    assert len(cache) == 2
    off = QueryResultCache(max_entries=0)
    off.store(0, "a", 1)
    assert off.lookup(0, "a") is None and len(off) == 0
    cache.store(0, None, 9)  # None key (unserializable params): no-op
    assert cache.lookup(0, None) is None


# ----------------------------------------------------------------------
# Engine integration: auto-enable, cache, fallback
# ----------------------------------------------------------------------
def _image_engine(parallel, n=60):
    from repro.datatypes.bulk import bulk_image_dataset
    from repro.datatypes.image import make_image_plugin

    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(
        plugin,
        SketchParams(64, plugin.meta, seed=0),
        FilterParams(num_query_segments=3, candidates_per_segment=16),
        parallel=parallel,
    )
    engine.insert_many(list(bulk_image_dataset(n, seed=3)))
    return engine


def test_engine_auto_enable_threshold():
    cfg = ParallelConfig(num_workers=2, min_segments=10_000_000)
    with _image_engine(cfg) as engine:
        engine.query_by_id(0, top_k=3)
        assert not engine.parallel_info()["active"]  # below threshold
    cfg = ParallelConfig(num_workers=2, min_segments=1)
    with _image_engine(cfg) as engine:
        engine.query_by_id(0, top_k=3)
        assert engine.parallel_info()["active"]


def test_engine_parallel_results_and_cache():
    serial = _image_engine(ParallelConfig(enabled=False))
    par = _image_engine(
        ParallelConfig(num_workers=2, min_segments=1, cache_entries=16)
    )
    with serial, par:
        for qid in (0, 4, 4, 0):
            a = serial.query_by_id(qid, top_k=5)
            b = par.query_by_id(qid, top_k=5)
            assert [(r.object_id, r.distance) for r in a] == [
                (r.object_id, r.distance) for r in b
            ]
        assert par.parallel_info()["cache"]["hits"] >= 2
        # A mutation invalidates cached candidate sets and reshards.
        par.remove(50)
        serial.remove(50)
        a = serial.query_by_id(0, top_k=5)
        b = par.query_by_id(0, top_k=5)
        assert [r.object_id for r in a] == [r.object_id for r in b]
        assert par.parallel_info()["cache"]["invalidations"] >= 1


def test_engine_fallback_on_pool_failure():
    reasons = []
    with _image_engine(ParallelConfig(num_workers=2, min_segments=1)) as engine:
        engine.on_parallel_fallback = reasons.append
        expect = [r.object_id for r in engine.query_by_id(1, top_k=5)]
        engine._pool.close()  # simulate a crashed pool mid-flight
        engine._filter_cache.clear()
        got = [r.object_id for r in engine.query_by_id(1, top_k=5)]
        assert got == expect  # answered serially, identically
        assert reasons and engine.parallel_info()["broken"]
        engine.set_parallel_enabled(True)  # operator re-arms the pool
        assert not engine.parallel_info()["broken"]
        engine._filter_cache.clear()  # force a real scan, not a cache hit
        got = [r.object_id for r in engine.query_by_id(1, top_k=5)]
        assert got == expect and engine.parallel_info()["active"]


@pytest.mark.perf
def test_two_worker_smoke():
    """CI smoke: a 2-worker pool is candidate-set identical to serial on
    a denser store (the `make smoke` gate)."""
    sk, store, objects = _seeded_store(
        31, num_objects=150, segs=3, tombstones=range(40, 60)
    )
    params = FilterParams(
        num_query_segments=3, candidates_per_segment=32,
        threshold_fraction=0.45,
    )
    queries = [objects[i] for i in (0, 25, 75, 149)]
    sketches = [sk.sketch_many(q.features) for q in queries]
    serial = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
    with ParallelFilterPool(num_workers=2) as p:
        _load_pool(p, store)
        assert (
            parallel_sketch_filter_many(queries, sketches, params, sk.n_bits, p)
            == serial
        )
