"""Interleaving tests for the query-result cache's epoch race.

The serial scan snapshots the store internally, but the cache must only
keep a result computed against a store that provably did not move during
the whole pass: the engine re-reads the epoch after the scan and, when
it changed, skips the store (``computed_epoch = None``) and counts a
``query_cache.stale_store_skips``.  These tests drive that interleaving
deterministically (an insert fired from *inside* the scan) and with
hypothesis-generated op sequences, asserting both the counters and the
end-to-end invariant: cached answers always equal a fresh recompute.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.engine as engine_mod
from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.observability import metrics as _metrics


def _value(name):
    return _metrics.get_registry().value(name)


def _make_engine(num_objects=10, seed=3):
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(64, meta, seed=0)
    )
    rng = np.random.default_rng(seed)
    for _ in range(num_objects):
        engine.insert(ObjectSignature(rng.random((2, 4)), [1.0, 1.0]))
    return engine, rng


def _query_sig(rng):
    return ObjectSignature(rng.random((2, 4)), [1.0, 1.0])


class _InsertDuringScan:
    """Wrap the serial scan so an insert lands mid-pass (epoch moves)."""

    def __init__(self, engine, rng):
        self.engine = engine
        self.rng = rng
        self.real = engine_mod.sketch_filter_many
        self.fired = 0

    def __call__(self, queries, sketches, store, params, n_bits):
        result = self.real(queries, sketches, store, params, n_bits)
        self.engine.insert(
            ObjectSignature(self.rng.random((2, 4)), [1.0, 1.0])
        )
        self.fired += 1
        return result


class TestDeterministicInterleaving:
    def test_concurrent_insert_skips_store_and_counts(self, monkeypatch):
        engine, rng = _make_engine()
        racer = _InsertDuringScan(engine, rng)
        monkeypatch.setattr(engine_mod, "sketch_filter_many", racer)
        before_skip = _value("query_cache.stale_store_skips")
        query = _query_sig(rng)
        engine.query(query, top_k=3)
        assert racer.fired == 1
        # The store moved mid-scan: the result must NOT have been cached.
        assert _value("query_cache.stale_store_skips") == before_skip + 1
        assert engine._filter_cache.stats()["entries"] == 0
        # And the same query afterwards misses (then caches cleanly).
        monkeypatch.setattr(engine_mod, "sketch_filter_many", racer.real)
        before_miss = _value("query_cache.misses")
        engine.query(query, top_k=3)
        assert _value("query_cache.misses") == before_miss + 1
        assert engine._filter_cache.stats()["entries"] == 1

    def test_quiet_scan_is_cached(self):
        engine, rng = _make_engine()
        query = _query_sig(rng)
        before_skip = _value("query_cache.stale_store_skips")
        before_hit = _value("query_cache.hits")
        engine.query(query, top_k=3)
        assert _value("query_cache.stale_store_skips") == before_skip
        engine.query(query, top_k=3)
        assert _value("query_cache.hits") == before_hit + 1

    def test_insert_between_queries_invalidates(self):
        engine, rng = _make_engine()
        query = _query_sig(rng)
        engine.query(query, top_k=3)
        assert engine._filter_cache.stats()["entries"] == 1
        before_inval = _value("query_cache.invalidations")
        engine.insert(ObjectSignature(rng.random((2, 4)), [1.0, 1.0]))
        engine.query(query, top_k=3)
        # The epoch bump flushed the cache — and the counter moved.
        assert _value("query_cache.invalidations") == before_inval + 1


@st.composite
def op_sequences(draw):
    return draw(
        st.lists(
            st.sampled_from(["query", "insert", "racy_query"]),
            min_size=2,
            max_size=8,
        )
    )


class TestHypothesisInterleaving:
    @settings(max_examples=25, deadline=None)
    @given(ops=op_sequences())
    def test_cached_results_always_match_recompute(self, ops):
        """Under any interleaving of queries, inserts, and queries raced
        by a mid-scan insert, a query's candidates equal what a fresh
        un-cached engine pass computes — stale entries never leak."""
        engine, rng = _make_engine(num_objects=6, seed=11)
        query = _query_sig(rng)
        real_scan = engine_mod.sketch_filter_many
        racer = _InsertDuringScan(engine, rng)
        try:
            for op in ops:
                if op == "insert":
                    engine.insert(
                        ObjectSignature(rng.random((2, 4)), [1.0, 1.0])
                    )
                    continue
                engine_mod.sketch_filter_many = (
                    racer if op == "racy_query" else real_scan
                )
                ranked = engine.query(query, top_k=50)
                engine_mod.sketch_filter_many = real_scan
                # Ground truth: bypass the cache entirely.
                sketches = engine.sketcher.sketch_many(query.features)
                expected = real_scan(
                    [query], [sketches], engine._store,
                    engine.filter_params, n_bits=engine.sketcher.n_bits,
                )[0]
                got = engine._filter_candidates([query], [sketches])[0]
                assert got == expected
                assert {r.object_id for r in ranked} <= set(engine.objects)
        finally:
            engine_mod.sketch_filter_many = real_scan
