"""Tests for object removal: engine, segment store, LSH, metadata."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    LSHParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.core.filtering import SegmentStore
from repro.metadata import MetadataManager


def _engine(meta, metadata=None, lsh=True):
    return SimilaritySearchEngine(
        DataTypePlugin("t", meta),
        SketchParams(128, meta, seed=1),
        FilterParams(num_query_segments=2, candidates_per_segment=20),
        metadata=metadata,
        lsh_params=LSHParams(6, 10, seed=2) if lsh else None,
    )


@pytest.fixture()
def filled(unit_meta):
    engine = _engine(unit_meta)
    rng = np.random.default_rng(0)
    for _ in range(30):
        engine.insert(ObjectSignature(rng.random((3, 8)), [1, 1, 1]))
    return engine


class TestSegmentStoreRemoval:
    def test_remove_counts(self):
        store = SegmentStore(n_words=2, dim=4)
        store.add_object(1, np.zeros((3, 2), np.uint64), np.zeros((3, 4)))
        store.add_object(2, np.zeros((2, 2), np.uint64), np.zeros((2, 4)))
        assert store.remove_object(1) == 3
        assert len(store) == 2
        assert store.remove_object(1) == 0

    def test_compaction_threshold(self):
        store = SegmentStore(n_words=1, dim=2)
        for oid in range(8):
            store.add_object(oid, np.zeros((1, 1), np.uint64), np.zeros((1, 2)))
        store.remove_object(0)  # 1/8 dead: tombstoned only
        assert store.owners.shape[0] == 8
        store.remove_object(1)  # 2/8 = 25% dead: compacts
        assert store.owners.shape[0] == 6
        assert np.all(store.owners >= 0)

    def test_explicit_compact(self):
        store = SegmentStore(n_words=1, dim=2)
        for oid in range(10):
            store.add_object(oid, np.zeros((2, 1), np.uint64), np.zeros((2, 2)))
        store.remove_object(3)
        store.compact()
        assert store.owners.shape[0] == 18
        assert 3 not in store.owners


class TestEngineRemoval:
    def test_removed_object_gone_from_all_methods(self, filled):
        filled.remove(5)
        assert 5 not in filled
        assert len(filled) == 29
        for method in SearchMethod:
            results = filled.query_by_id(0, top_k=29, method=method)
            assert all(r.object_id != 5 for r in results)

    def test_remove_unknown_raises(self, filled):
        with pytest.raises(KeyError):
            filled.remove(999)

    def test_reinsert_same_id(self, filled):
        removed = filled.get_object(7)
        filled.remove(7)
        filled.insert(
            ObjectSignature(removed.features, removed.weights, normalize=False),
            object_id=7,
        )
        assert 7 in filled
        results = filled.query_by_id(7, top_k=1)
        assert results[0].object_id == 7

    def test_remove_many_triggers_compaction(self, unit_meta):
        engine = _engine(unit_meta, lsh=False)
        rng = np.random.default_rng(1)
        for _ in range(40):
            engine.insert(ObjectSignature(rng.random((2, 8)), [1, 1]))
        for oid in range(0, 20):
            engine.remove(oid)
        assert len(engine) == 20
        # store physically compacted (dead < 25% after compaction)
        assert engine._store.owners.shape[0] < 80
        results = engine.query_by_id(25, top_k=5, method=SearchMethod.FILTERING)
        assert results[0].object_id == 25

    def test_lsh_buckets_cleaned(self, filled):
        before = filled.lsh_index.num_segments
        filled.remove(4)
        assert filled.lsh_index.num_segments == before - 3
        query = filled.get_object(0)
        sketches = filled.sketcher.sketch_many(query.features)
        assert 4 not in filled.lsh_index.candidates(sketches)

    def test_metadata_deleted_too(self, unit_meta, tmp_path):
        with MetadataManager(str(tmp_path / "m")) as manager:
            engine = _engine(unit_meta, metadata=manager, lsh=False)
            rng = np.random.default_rng(2)
            for _ in range(5):
                engine.insert(ObjectSignature(rng.random((2, 8)), [1, 1]))
            engine.remove(2)
            assert manager.get_object(2) is None
        # reload skips the removed object
        with MetadataManager(str(tmp_path / "m")) as manager:
            engine2 = _engine(unit_meta, metadata=manager, lsh=False)
            assert engine2.load() == 4
            assert 2 not in engine2

    def test_quality_unaffected_by_unrelated_removal(self, unit_meta):
        """Removing distractors must not disturb ranking of the rest."""
        engine = _engine(unit_meta, lsh=False)
        rng = np.random.default_rng(3)
        base = rng.random((3, 8))
        engine.insert(ObjectSignature(base, [1, 1, 1]))  # 0
        engine.insert(ObjectSignature(np.clip(base + 0.01, 0, 1), [1, 1, 1]))  # 1
        for _ in range(20):
            engine.insert(ObjectSignature(rng.random((3, 8)), [1, 1, 1]))
        for oid in range(10, 20):
            engine.remove(oid)
        results = engine.query_by_id(0, top_k=1, exclude_self=True,
                                     method=SearchMethod.FILTERING)
        assert results[0].object_id == 1
