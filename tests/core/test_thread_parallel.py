"""Thread backend, batched dispatch, and the adaptive backend chooser.

The contract under test: ``serial == threads == batched-processes`` —
not just equal candidate sets but identical ``(distance, row)`` top-k
matrices including tie order, under duplicate-sketch stores, tombstones,
empty shards, and the spawn start method.  Plus the cost model
(:func:`choose_backend`), the one-round-trip dispatch accounting, the
worker-crash classification, and thread-pool teardown under load.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    ParallelConfig,
    ParallelFilterPool,
    ParallelScanError,
    QueryResultCache,
    SegmentStore,
    SimilaritySearchEngine,
    SketchConstructor,
    SketchParams,
    ThreadFilterPool,
    choose_backend,
    make_pool,
    parallel_sketch_filter_many,
    sketch_filter_many,
)
from repro.core.parallel import hamming_kernel_releases_gil
from repro.observability import metrics as _metrics

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ----------------------------------------------------------------------
# Store builders (same tie-heavy shapes as test_parallel.py)
# ----------------------------------------------------------------------
def _seeded_store(seed, num_objects=40, segs=3, dim=8, n_bits=64,
                  dup_frac=0.35, tombstones=()):
    """Random store with deliberate duplicate segments (=> distance ties)."""
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    sk = SketchConstructor(SketchParams(n_bits, meta, seed=seed))
    store = SegmentStore(sk.n_words, dim)
    rng = np.random.default_rng(seed)
    pool_feats = rng.random((6, dim))
    objects = {}
    for oid in range(num_objects):
        feats = rng.random((segs, dim))
        for s in range(segs):
            if rng.random() < dup_frac:
                feats[s] = pool_feats[rng.integers(0, len(pool_feats))]
        objects[oid] = ObjectSignature(
            feats, rng.random(segs) + 0.1, object_id=oid
        )
        store.add_object(oid, sk.sketch_many(feats), feats)
    for oid in tombstones:
        store.remove_object(oid)
    return sk, store, objects


def _load_pool(pool, store):
    epoch, owners, sketches = store.versioned_snapshot()
    pool.load(owners, sketches, epoch=epoch)


def _value(name):
    return _metrics.get_registry().value(name)


PARAMS_VARIANTS = [
    FilterParams(num_query_segments=3, candidates_per_segment=8),
    FilterParams(num_query_segments=2, candidates_per_segment=4,
                 threshold_fraction=0.35),
    FilterParams(num_query_segments=1, candidates_per_segment=1000,
                 threshold_fraction=0.5, threshold_fn="constant"),
]


# ----------------------------------------------------------------------
# Property: serial == threads == batched-processes, ties included
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    shard_rows=st.sampled_from([None, 3, 17]),
    variant=st.integers(0, len(PARAMS_VARIANTS) - 1),
    workers=st.sampled_from([1, 2, 3]),
)
def test_backends_equivalent_randomized(seed, shard_rows, variant, workers):
    """Candidate sets AND raw top-k matrices (tie order) agree between
    the serial scan, the thread pool, and the batched process pool."""
    params = PARAMS_VARIANTS[variant]
    sk, store, objects = _seeded_store(seed, tombstones=range(5, 12))
    queries = [objects[0], objects[20], objects[7]]
    sketches = [sk.sketch_many(q.features) for q in queries]
    serial = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
    raw = {}
    for cls in (ThreadFilterPool, ParallelFilterPool):
        with cls(num_workers=workers, shard_rows=shard_rows) as p:
            _load_pool(p, store)
            got = parallel_sketch_filter_many(
                queries, sketches, params, sk.n_bits, p
            )
            assert got == serial, cls.__name__
            stacked = np.concatenate(
                [qs[q.top_segments(params.num_query_segments)]
                 for q, qs in zip(queries, sketches)],
                axis=0,
            )
            d, rows = p.scan_topk(stacked, k=5)
            raw[cls.__name__] = (np.asarray(d, dtype=np.int64), rows)
    # Bit-identical selection including order at tied distances.
    np.testing.assert_array_equal(
        raw["ThreadFilterPool"][0], raw["ParallelFilterPool"][0]
    )
    np.testing.assert_array_equal(
        raw["ThreadFilterPool"][1], raw["ParallelFilterPool"][1]
    )


def test_empty_shards_more_workers_than_rows():
    """A 6-worker pool over 4 rows leaves workers with zero shards."""
    sk, store, objects = _seeded_store(5, num_objects=2, segs=2)
    queries = [objects[0]]
    sketches = [sk.sketch_many(q.features) for q in queries]
    params = PARAMS_VARIANTS[0]
    serial = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
    for cls in (ThreadFilterPool, ParallelFilterPool):
        with cls(num_workers=6) as p:
            _load_pool(p, store)
            assert parallel_sketch_filter_many(
                queries, sketches, params, sk.n_bits, p
            ) == serial, cls.__name__


def test_thread_pool_matches_under_spawn_process_pool():
    """Thread results equal a spawn-start-method process pool's."""
    import multiprocessing

    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    sk, store, objects = _seeded_store(77, tombstones=(1, 2))
    queries = [objects[0], objects[9]]
    sketches = [sk.sketch_many(q.features) for q in queries]
    params = PARAMS_VARIANTS[1]
    with ThreadFilterPool(num_workers=2) as tp, ParallelFilterPool(
        num_workers=2, start_method="spawn"
    ) as pp:
        _load_pool(tp, store)
        _load_pool(pp, store)
        assert parallel_sketch_filter_many(
            queries, sketches, params, sk.n_bits, tp
        ) == parallel_sketch_filter_many(
            queries, sketches, params, sk.n_bits, pp
        )


def test_thread_pool_copies_arena():
    """The thread pool must freeze its own copy: in-place mutation of the
    source arrays (tombstoning mutates the store's owners) must not leak
    into an already-loaded arena."""
    owners = np.arange(8, dtype=np.int64)
    sketches = np.arange(16, dtype=np.uint64).reshape(8, 2)
    pool = ThreadFilterPool(num_workers=2)
    with pool:
        pool.load(owners, sketches, epoch=1)
        owners[:] = -1  # simulate remove_object tombstoning in place
        sketches[:] = 0
        assert pool.n_alive == 8
        d, rows = pool.scan_topk(np.zeros((1, 2), dtype=np.uint64), 8)
        # All 8 rows still alive and distances reflect the original data.
        assert rows.shape == (1, 8)
        assert pool.owners_of(rows[0]).min() >= 0


def test_thread_pool_teardown_under_load():
    """close() during concurrent scans: every scan either completes with
    correct results or raises ParallelScanError(kind='closed') — never a
    wrong answer, never a foreign exception."""
    sk, store, objects = _seeded_store(11, num_objects=80, segs=3)
    epoch, owners, sketches = store.versioned_snapshot()
    expect_rows = None
    query = np.zeros((2, sk.n_words), dtype=np.uint64)
    pool = ThreadFilterPool(num_workers=3)
    pool.load(owners, sketches, epoch=epoch)
    expect_d, expect_rows = pool.scan_topk(query, 12)
    errors, mismatches = [], []
    start = threading.Barrier(5)

    def hammer():
        start.wait()
        for _ in range(25):
            try:
                d, rows = pool.scan_topk(query, 12)
            except ParallelScanError as exc:
                if exc.kind != "closed":
                    errors.append(exc)
                return
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)
                return
            if not (
                np.array_equal(d, expect_d)
                and np.array_equal(rows, expect_rows)
            ):
                mismatches.append((d, rows))
                return

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    start.wait()
    pool.close()
    for t in threads:
        t.join()
    assert not errors and not mismatches
    with pytest.raises(ParallelScanError) as exc_info:
        pool.scan_topk(query, 12)
    assert exc_info.value.kind == "closed"


# ----------------------------------------------------------------------
# choose_backend cost model
# ----------------------------------------------------------------------
class TestChooseBackend:
    def test_disabled_is_serial(self):
        cfg = ParallelConfig(enabled=False, num_workers=8, min_segments=1)
        assert choose_backend(cfg, n_rows=10**6, batch_rows=64) == "serial"

    def test_single_core_is_serial(self):
        cfg = ParallelConfig(min_segments=1)
        assert choose_backend(cfg, n_rows=10**6, cores=1) == "serial"

    def test_below_min_segments_is_serial(self):
        cfg = ParallelConfig(num_workers=4, min_segments=50_000)
        assert choose_backend(cfg, n_rows=49_999) == "serial"

    def test_explicit_backend_wins(self):
        for name in ("serial", "thread", "process"):
            cfg = ParallelConfig(num_workers=4, min_segments=1, backend=name)
            assert choose_backend(cfg, n_rows=10) == name

    def test_auto_prefers_threads_with_gil_releasing_kernel(self):
        if not hamming_kernel_releases_gil():
            pytest.skip("LUT popcount build: thread backend not preferred")
        cfg = ParallelConfig(num_workers=4, min_segments=1)
        assert choose_backend(cfg, n_rows=100_000, batch_rows=8) == "thread"

    def test_explicit_worker_count_implies_cores(self):
        # num_workers is an operator statement that parallelism exists:
        # the model must not fall back to the (possibly 1-core) host
        # affinity mask.
        cfg = ParallelConfig(num_workers=2, min_segments=1)
        # Enough work that both the thread and the process branch
        # qualify — the pick must be parallel on any popcount build.
        assert choose_backend(cfg, n_rows=2_000_000, batch_rows=4) != "serial"

    def test_unknown_backend_rejected_at_config(self):
        with pytest.raises(ValueError):
            ParallelConfig(backend="gpu")

    def test_make_pool_backends(self):
        assert isinstance(make_pool("thread", num_workers=1), ThreadFilterPool)
        p = make_pool("process", num_workers=1)
        assert isinstance(p, ParallelFilterPool)
        p.close()
        with pytest.raises(ValueError):
            make_pool("auto")
        with pytest.raises(ValueError):
            make_pool("serial")


# ----------------------------------------------------------------------
# Batched dispatch accounting
# ----------------------------------------------------------------------
def test_one_dispatch_round_trip_per_worker_per_batch():
    """A whole batch costs exactly num_workers round trips — independent
    of how many queries it stacks — and never more than the shard count."""
    sk, store, objects = _seeded_store(3, num_objects=60, segs=3)
    queries = [objects[i] for i in (0, 5, 10, 15, 20, 25)]
    sketches = [sk.sketch_many(q.features) for q in queries]
    params = FilterParams(num_query_segments=3, candidates_per_segment=8)
    with ParallelFilterPool(num_workers=2) as p:
        _load_pool(p, store)
        before = _value("parallel.dispatch_round_trips")
        parallel_sketch_filter_many(queries, sketches, params, sk.n_bits, p)
        trips = _value("parallel.dispatch_round_trips") - before
        assert trips == 2  # one fused message per worker, 6 queries
        assert trips <= p.n_shards


def test_thread_pool_books_no_dispatch_round_trips():
    sk, store, objects = _seeded_store(3, num_objects=30)
    with ThreadFilterPool(num_workers=2) as p:
        _load_pool(p, store)
        before = _value("parallel.dispatch_round_trips")
        p.scan_topk(np.zeros((1, sk.n_words), dtype=np.uint64), 4)
        assert _value("parallel.dispatch_round_trips") == before


# ----------------------------------------------------------------------
# Worker crash classification
# ----------------------------------------------------------------------
def test_killed_worker_raises_crash_kind():
    sk, store, objects = _seeded_store(9, num_objects=30)
    with ParallelFilterPool(num_workers=2) as p:
        _load_pool(p, store)
        p._workers[0][0].kill()
        p._workers[0][0].join(timeout=5.0)
        with pytest.raises(ParallelScanError) as exc_info:
            p.scan_topk(np.zeros((1, sk.n_words), dtype=np.uint64), 4)
        assert exc_info.value.kind == "crash"


def _image_engine(parallel, n=60):
    from repro.datatypes.bulk import bulk_image_dataset
    from repro.datatypes.image import make_image_plugin

    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(
        plugin,
        SketchParams(64, plugin.meta, seed=0),
        FilterParams(num_query_segments=3, candidates_per_segment=16),
        parallel=parallel,
    )
    engine.insert_many(list(bulk_image_dataset(n, seed=3)))
    return engine


def test_engine_degrades_serially_on_worker_kill():
    """A worker killed mid-service degrades the engine to the serial
    scan with identical results and books the crash under
    ``errors_absorbed.parallel_worker_crash``."""
    cfg = ParallelConfig(
        num_workers=2, min_segments=1, backend="process", cache_entries=0
    )
    with _image_engine(cfg) as engine:
        expect = [r.object_id for r in engine.query_by_id(1, top_k=5)]
        info = engine.parallel_info()
        assert info["active"] and info["backend_active"] == "process"
        engine._pool._workers[0][0].kill()
        engine._pool._workers[0][0].join(timeout=5.0)
        before = _value("errors_absorbed.parallel_worker_crash")
        got = [r.object_id for r in engine.query_by_id(1, top_k=5)]
        assert got == expect  # serial fallback, identical answer
        assert _value("errors_absorbed.parallel_worker_crash") == before + 1
        assert engine.parallel_info()["broken"]


# ----------------------------------------------------------------------
# Engine-level backend selection
# ----------------------------------------------------------------------
def test_engine_backend_switch_and_exclude_self_equivalence():
    """Results (with exclude_self) are identical across all three
    backends, live-switched through set_parallel_backend."""
    serial_engine = _image_engine(ParallelConfig(enabled=False))
    engine = _image_engine(
        ParallelConfig(num_workers=2, min_segments=1, cache_entries=0)
    )
    with serial_engine, engine:
        want = [
            (r.object_id, r.distance)
            for r in serial_engine.query_by_id(2, top_k=6)
        ]
        for backend in ("thread", "process", "serial", "auto"):
            engine.set_parallel_backend(backend)
            got = [
                (r.object_id, r.distance)
                for r in engine.query_by_id(2, top_k=6)
            ]
            assert got == want, backend
            info = engine.parallel_info()
            assert info["backend"] == backend
            if backend in ("thread", "process"):
                assert info["backend_active"] == backend
            elif backend == "serial":
                assert info["backend_active"] == "serial"
        with pytest.raises(ValueError):
            engine.set_parallel_backend("gpu")


def test_engine_auto_picks_thread_backend():
    if not hamming_kernel_releases_gil():
        pytest.skip("LUT popcount build: auto does not pick threads")
    cfg = ParallelConfig(num_workers=2, min_segments=1, cache_entries=0)
    with _image_engine(cfg) as engine:
        engine.query_by_id(0, top_k=3)
        info = engine.parallel_info()
        assert info["backend"] == "auto"
        assert info["backend_active"] == "thread"
        assert isinstance(engine._pool, ThreadFilterPool)


# ----------------------------------------------------------------------
# Cache metrics prefix (shared with the cluster coordinator)
# ----------------------------------------------------------------------
def test_query_result_cache_metrics_prefix():
    before_hits = _value("cluster.cache.hits")
    before_misses = _value("cluster.cache.misses")
    cache = QueryResultCache(4, metrics_prefix="cluster.cache")
    assert cache.lookup(1, "k") is None
    cache.store(1, "k", "v")
    assert cache.lookup(1, "k") == "v"
    assert _value("cluster.cache.misses") == before_misses + 1
    assert _value("cluster.cache.hits") == before_hits + 1
