"""Property tests: the engine against a naive reference implementation.

The reference computes object distances directly over a Python dict; the
engine must agree with it wherever exactness is promised (brute-force
ranking), and approximate it sensibly where sketches are involved.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
    emd,
)


def _reference_ranking(objects, query_id, top_k):
    """Naive exact ranking by EMD, excluding the query itself."""
    query = objects[query_id]
    scored = sorted(
        (emd(query, obj), oid)
        for oid, obj in objects.items()
        if oid != query_id
    )
    return [oid for _dist, oid in scored[:top_k]]


def _build(seed, count, dim=6, max_segs=4):
    rng = np.random.default_rng(seed)
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    engine = SimilaritySearchEngine(
        DataTypePlugin("ref", meta),
        SketchParams(256, meta, seed=0),
        FilterParams(num_query_segments=4, candidates_per_segment=count),
    )
    objects = {}
    for _ in range(count):
        k = int(rng.integers(1, max_segs + 1))
        sig = ObjectSignature(rng.random((k, dim)), rng.random(k) + 0.1)
        oid = engine.insert(sig)
        objects[oid] = sig
    return engine, objects


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(5, 25))
def test_brute_force_matches_reference(seed, count):
    engine, objects = _build(seed, count)
    query_id = seed % count
    expected = _reference_ranking(objects, query_id, top_k=5)
    got = [
        r.object_id
        for r in engine.query_by_id(
            query_id, top_k=5, method=SearchMethod.BRUTE_FORCE_ORIGINAL,
            exclude_self=True,
        )
    ]
    # Rankings must agree except where reference distances tie.
    ref_dists = {oid: emd(objects[query_id], objects[oid]) for oid in expected + got}
    for e, g in zip(expected, got):
        assert e == g or ref_dists[e] == pytest.approx(ref_dists[g], abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_filtering_with_full_k_matches_reference(seed):
    """With k = all segments and no threshold, filtering keeps every
    object, so its ranking must equal the exact reference ranking."""
    engine, objects = _build(seed, count=15)
    engine.filter_params = FilterParams(
        num_query_segments=8, candidates_per_segment=10_000,
        threshold_fraction=None,
    )
    query_id = seed % 15
    expected = _reference_ranking(objects, query_id, top_k=5)
    got = [
        r.object_id
        for r in engine.query_by_id(
            query_id, top_k=5, method=SearchMethod.FILTERING, exclude_self=True
        )
    ]
    ref_dists = {oid: emd(objects[query_id], objects[oid]) for oid in expected + got}
    for e, g in zip(expected, got):
        assert e == g or ref_dists[e] == pytest.approx(ref_dists[g], abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_result_distances_sorted_and_exact(seed):
    engine, objects = _build(seed, count=12)
    query_id = seed % 12
    for method in (SearchMethod.BRUTE_FORCE_ORIGINAL, SearchMethod.FILTERING):
        results = engine.query_by_id(query_id, top_k=12, method=method)
        dists = [r.distance for r in results]
        assert dists == sorted(dists)
        for r in results:
            assert r.distance == pytest.approx(
                emd(objects[query_id], objects[r.object_id]), rel=1e-7, abs=1e-9
            )
