"""Tests for the filtering unit and segment store."""

import numpy as np
import pytest

from repro.core import (
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SegmentStore,
    SketchConstructor,
    SketchParams,
    sketch_filter,
    sketch_filter_many,
    sketch_filter_reference,
)
from repro.core.distance import l1_to_many
from repro.core.filtering import default_threshold_fn


def _setup(num_objects=30, segs=3, dim=6, n_bits=256, seed=0):
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    sk = SketchConstructor(SketchParams(n_bits, meta, seed=seed))
    store = SegmentStore(sk.n_words, dim)
    rng = np.random.default_rng(seed)
    objects = {}
    for oid in range(num_objects):
        feats = rng.random((segs, dim))
        obj = ObjectSignature(feats, rng.random(segs) + 0.1, object_id=oid)
        store.add_object(oid, sk.sketch_many(feats), feats)
        objects[oid] = obj
    return meta, sk, store, objects, rng


class TestFilterParams:
    def test_defaults_valid(self):
        FilterParams()

    @pytest.mark.parametrize("kwargs", [
        {"num_query_segments": 0},
        {"candidates_per_segment": 0},
        {"threshold_fraction": 0.0},
        {"threshold_fraction": 1.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FilterParams(**kwargs)

    def test_threshold_fn_decreasing(self):
        assert default_threshold_fn(0.0) > default_threshold_fn(0.5) > default_threshold_fn(1.0)

    def test_threshold_fn_clamps(self):
        assert default_threshold_fn(-1.0) == default_threshold_fn(0.0)
        assert default_threshold_fn(2.0) == default_threshold_fn(1.0)


class TestSegmentStore:
    def test_append_and_consolidate(self):
        _meta, sk, store, _objs, _rng = _setup(num_objects=5)
        assert len(store) == 15
        assert store.sketches.shape == (15, sk.n_words)
        assert store.features.shape == (15, 6)
        assert set(store.owners.tolist()) == set(range(5))

    def test_incremental_adds_after_scan(self):
        meta, sk, store, _objs, rng = _setup(num_objects=3)
        _ = store.sketches  # force consolidation
        feats = rng.random((2, 6))
        store.add_object(99, sk.sketch_many(feats), feats)
        assert len(store) == 11
        assert 99 in store.owners

    def test_sketch_bytes(self):
        _meta, sk, store, _objs, _rng = _setup(num_objects=4, n_bits=128)
        assert store.sketch_bytes == len(store) * sk.n_words * 8

    def test_wrong_word_count_rejected(self):
        store = SegmentStore(n_words=2, dim=4)
        with pytest.raises(ValueError):
            store.add_object(0, np.zeros((1, 3), np.uint64), np.zeros((1, 4)))

    def test_missing_features_rejected(self):
        store = SegmentStore(n_words=1, dim=4)
        with pytest.raises(ValueError):
            store.add_object(0, np.zeros((1, 1), np.uint64))

    def test_zero_row_sketches_rejected(self):
        """An object with no segment rows would be invisible to every
        filter scan; the store must refuse it outright."""
        store = SegmentStore(n_words=1, dim=4)
        with pytest.raises(ValueError, match="no segment sketches"):
            store.add_object(0, np.empty((0, 1), np.uint64), np.empty((0, 4)))
        assert len(store) == 0

    def test_featureless_store(self):
        store = SegmentStore(n_words=1, dim=4, keep_features=False)
        store.add_object(0, np.zeros((2, 1), np.uint64))
        assert len(store) == 2
        with pytest.raises(RuntimeError):
            _ = store.features


class TestSketchFilter:
    def test_empty_store(self):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        sk = SketchConstructor(SketchParams(64, meta, seed=1))
        store = SegmentStore(sk.n_words, 4)
        q = ObjectSignature(np.ones((1, 4)) * 0.5, [1.0])
        out = sketch_filter(q, sk.sketch_many(q.features), store, FilterParams(), 64)
        assert out == set()

    def test_exact_duplicate_always_retained(self):
        _meta, sk, store, objects, _rng = _setup()
        q = objects[7]
        candidates = sketch_filter(
            q, sk.sketch_many(q.features), store,
            FilterParams(num_query_segments=3, candidates_per_segment=5),
            sk.n_bits,
        )
        assert 7 in candidates

    def test_candidate_set_smaller_than_universe(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=100)
        q = objects[0]
        candidates = sketch_filter(
            q, sk.sketch_many(q.features), store,
            FilterParams(num_query_segments=2, candidates_per_segment=10,
                         threshold_fraction=0.3),
            sk.n_bits,
        )
        assert 0 < len(candidates) < 100

    def test_larger_k_grows_candidates(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=80)
        q = objects[0]
        sizes = []
        for k in (5, 20, 60):
            candidates = sketch_filter(
                q, sk.sketch_many(q.features), store,
                FilterParams(num_query_segments=2, candidates_per_segment=k,
                             threshold_fraction=None),
                sk.n_bits,
            )
            sizes.append(len(candidates))
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_tight_threshold_shrinks_candidates(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=80)
        q = objects[0]
        loose = sketch_filter(
            q, sk.sketch_many(q.features), store,
            FilterParams(candidates_per_segment=80, threshold_fraction=0.9),
            sk.n_bits,
        )
        tight = sketch_filter(
            q, sk.sketch_many(q.features), store,
            FilterParams(candidates_per_segment=80, threshold_fraction=0.05),
            sk.n_bits,
        )
        assert tight <= loose

    def test_direct_feature_filtering(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=40)
        q = objects[3]
        candidates = sketch_filter(
            q, sk.sketch_many(q.features), store,
            FilterParams(num_query_segments=2, candidates_per_segment=8),
            sk.n_bits,
            use_sketches=False,
            seg_distance_to_many=l1_to_many,
            max_feature_distance=6.0,
        )
        assert 3 in candidates

    def test_direct_mode_requires_distance_fn(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=5)
        q = objects[0]
        with pytest.raises(ValueError):
            sketch_filter(
                q, sk.sketch_many(q.features), store, FilterParams(),
                sk.n_bits, use_sketches=False,
            )

    def test_tombstones_do_not_occupy_knn_slots(self):
        """Dead segments (owner -1) must be excluded before argpartition:
        with k = number of live segments, every live owner is a candidate
        no matter how many close tombstoned rows remain in the store."""
        _meta, sk, store, objects, _rng = _setup(num_objects=20, segs=3)
        q = objects[7]
        # Tombstone 4 objects near the query in sketch space (12 of 60
        # rows — under the 25% compaction threshold, so the dead rows
        # physically stay and would win k-NN slots without the fix).
        for oid in (7, 8, 9, 10):
            store.remove_object(oid)
        alive_owners = {int(o) for o in store.owners if o >= 0}
        candidates = sketch_filter(
            q, sk.sketch_many(q.features), store,
            FilterParams(num_query_segments=3, candidates_per_segment=48,
                         threshold_fraction=None),
            sk.n_bits,
        )
        assert candidates == alive_owners

    def test_batched_matches_reference_with_tombstones(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=40)
        for oid in (0, 1, 2, 3):
            store.remove_object(oid)
        for params in (
            FilterParams(num_query_segments=3, candidates_per_segment=9),
            FilterParams(num_query_segments=2, candidates_per_segment=30,
                         threshold_fraction=None),
            FilterParams(num_query_segments=1, candidates_per_segment=500,
                         threshold_fraction=0.2),
        ):
            for qid in (5, 17, 33):
                q = objects[qid]
                qs = sk.sketch_many(q.features)
                assert sketch_filter(q, qs, store, params, sk.n_bits) == \
                    sketch_filter_reference(q, qs, store, params, sk.n_bits)

    def test_filter_many_matches_single(self):
        _meta, sk, store, objects, _rng = _setup(num_objects=50)
        store.remove_object(4)
        params = FilterParams(num_query_segments=2, candidates_per_segment=12)
        queries = [objects[i] for i in (0, 9, 21, 33, 47)]
        sketches = [sk.sketch_many(q.features) for q in queries]
        batched = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
        assert len(batched) == len(queries)
        for q, qs, got in zip(queries, sketches, batched):
            assert got == sketch_filter(q, qs, store, params, sk.n_bits)

    def test_filter_many_empty_inputs(self):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        sk = SketchConstructor(SketchParams(64, meta, seed=1))
        store = SegmentStore(sk.n_words, 4)
        assert sketch_filter_many([], [], store, FilterParams(), 64) == []
        q = ObjectSignature(np.ones((1, 4)) * 0.5, [1.0])
        out = sketch_filter_many(
            [q], [sk.sketch_many(q.features)], store, FilterParams(), 64
        )
        assert out == [set()]

    def test_filter_recall_on_near_duplicates(self):
        """Near-duplicates of the query object should survive filtering."""
        meta = FeatureMeta(6, np.zeros(6), np.ones(6))
        sk = SketchConstructor(SketchParams(256, meta, seed=2))
        store = SegmentStore(sk.n_words, 6)
        rng = np.random.default_rng(3)
        base = rng.random((3, 6))
        # objects 0-4: perturbed copies of base; 5-49: random
        for oid in range(50):
            feats = (
                np.clip(base + rng.normal(0, 0.02, base.shape), 0, 1)
                if oid < 5
                else rng.random((3, 6))
            )
            store.add_object(oid, sk.sketch_many(feats), feats)
        q = ObjectSignature(base, np.ones(3))
        candidates = sketch_filter(
            q, sk.sketch_many(base), store,
            FilterParams(num_query_segments=3, candidates_per_segment=10),
            sk.n_bits,
        )
        assert {0, 1, 2, 3, 4} <= candidates
