"""Mutation-path atomicity: the bugfix sweep of the maintenance PR.

`Engine.remove()` used to pop the in-memory dicts before touching the
store/LSH/metadata, so a failing backend left the four structures
disagreeing; `insert_many()` used to apply inserts one by one, so a bad
signature mid-batch left a half-applied prefix.  Both are now
all-or-nothing; these tests inject failures and assert the engine is
bit-identical to never having tried.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    LSHParams,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)


def random_signature(rng, k, dim=8, object_id=None):
    return ObjectSignature(
        rng.random((k, dim)), rng.random(k) + 0.1, object_id=object_id
    )


def zero_segment_signature(rng):
    """A signature whose segments vanished after construction.

    The constructor rejects empty segmentations, so the degenerate case
    insert_many must guard against can only arise from post-construction
    mutation (e.g. a plug-in bug) — simulate exactly that.
    """
    sig = random_signature(rng, 1)
    sig.features = np.empty((0, 8))
    sig.weights = np.empty(0)
    return sig


class FlakyMetadata:
    """In-memory metadata backend with injectable failures."""

    def __init__(self):
        self.objects = {}
        self.fail_put_after = None  # fail the Nth put (0-based), then heal
        self.fail_delete = False
        self.puts = 0

    def put_object(self, object_id, signature, sketches, attributes,
                   filename=None):
        if self.fail_put_after is not None and self.puts >= self.fail_put_after:
            raise OSError("metadata backend down (injected)")
        self.puts += 1
        self.objects[object_id] = (signature, sketches, attributes)

    def delete_object(self, object_id):
        if self.fail_delete:
            raise OSError("metadata backend down (injected)")
        self.objects.pop(object_id, None)

    def iter_objects(self):
        for oid, (sig, sk, attrs) in sorted(self.objects.items()):
            yield oid, sig, sk, attrs


def _engine(metadata=None, lsh=True):
    from repro.core import FeatureMeta

    meta = FeatureMeta(8, np.zeros(8), np.ones(8))
    return SimilaritySearchEngine(
        DataTypePlugin("test", meta),
        sketch_params=SketchParams(64, meta, seed=1),
        metadata=metadata,
        lsh_params=LSHParams(num_tables=4, bits_per_key=8, seed=2) if lsh else None,
    )


def _state(engine):
    owners, sketches = engine._store.snapshot()
    return (
        dict(engine._objects),
        {k: v.copy() for k, v in engine._object_sketches.items()},
        owners.copy(),
        sketches.copy(),
        engine._next_id,
    )


def _assert_same_live_state(engine, before):
    objects, obj_sk, owners, sketches, next_id = before
    assert engine._objects == objects
    assert set(engine._object_sketches) == set(obj_sk)
    assert engine._next_id == next_id
    live_owners, live_sketches = engine._store.snapshot()
    # Row positions may differ (rollback re-appends at the arena tail);
    # compare the live row multiset per owner instead.
    def rows_by_owner(ow, sk):
        out = {}
        for oid in np.unique(ow[ow >= 0]):
            rows = sk[ow == oid]
            out[int(oid)] = rows[np.lexsort(rows.T[::-1])]
        return out

    a = rows_by_owner(owners, sketches)
    b = rows_by_owner(live_owners, live_sketches)
    assert a.keys() == b.keys()
    for oid in a:
        np.testing.assert_array_equal(a[oid], b[oid])


class TestRemoveRollback:
    def test_failed_metadata_delete_keeps_object_searchable(self, rng):
        metadata = FlakyMetadata()
        engine = _engine(metadata)
        ids = [engine.insert(random_signature(rng, 4)) for _ in range(6)]
        victim = ids[2]
        before = _state(engine)
        result_before = engine.query(engine._objects[victim], top_k=3)

        metadata.fail_delete = True
        with pytest.raises(OSError):
            engine.remove(victim)

        _assert_same_live_state(engine, before)
        assert victim in metadata.objects  # backend untouched
        if engine.lsh_index is not None:
            assert engine.lsh_index.verify_consistency() == []
        # The object still answers queries exactly as before.
        result_after = engine.query(engine._objects[victim], top_k=3)
        assert [(r.object_id, r.distance) for r in result_before] == [
            (r.object_id, r.distance) for r in result_after
        ]

        metadata.fail_delete = False
        engine.remove(victim)  # heals: the retry succeeds cleanly
        assert victim not in engine._objects
        assert victim not in metadata.objects

    def test_remove_rollback_restores_lsh_buckets(self, rng):
        metadata = FlakyMetadata()
        engine = _engine(metadata)
        for _ in range(5):
            engine.insert(random_signature(rng, 3))
        metadata.fail_delete = True
        with pytest.raises(OSError):
            engine.remove(1)
        assert engine.lsh_index.verify_consistency() == []
        assert 1 in engine.lsh_index._sketches


class TestInsertManyAtomicity:
    def test_zero_segment_signature_rejects_whole_batch(self, rng):
        engine = _engine()
        engine.insert(random_signature(rng, 4))
        before = _state(engine)
        batch = [
            random_signature(rng, 3),
            zero_segment_signature(rng),
            random_signature(rng, 3),
        ]
        with pytest.raises(ValueError, match="batch position 1.*whole batch"):
            engine.insert_many(batch)
        _assert_same_live_state(engine, before)

    def test_duplicate_id_rejects_whole_batch(self, rng):
        engine = _engine()
        existing = engine.insert(random_signature(rng, 4))
        before = _state(engine)
        batch = [
            random_signature(rng, 3),
            random_signature(rng, 3, object_id=existing),
        ]
        with pytest.raises(KeyError, match="whole batch rejected"):
            engine.insert_many(batch)
        _assert_same_live_state(engine, before)
        # Intra-batch collision too.
        batch = [
            random_signature(rng, 3, object_id=555),
            random_signature(rng, 3, object_id=555),
        ]
        with pytest.raises(KeyError, match="batch position 1"):
            engine.insert_many(batch)
        _assert_same_live_state(engine, before)

    def test_backend_failure_mid_batch_rolls_back_prefix(self, rng):
        metadata = FlakyMetadata()
        engine = _engine(metadata)
        engine.insert(random_signature(rng, 4))
        before = _state(engine)
        metadata.fail_put_after = metadata.puts + 2  # dies on 3rd batch put
        with pytest.raises(OSError):
            engine.insert_many([random_signature(rng, 3) for _ in range(5)])
        metadata.fail_put_after = None
        _assert_same_live_state(engine, before)
        assert len(metadata.objects) == 1
        if engine.lsh_index is not None:
            assert engine.lsh_index.verify_consistency() == []
        # Ids consumed by the failed batch are released.
        new_id = engine.insert(random_signature(rng, 2))
        assert new_id == before[4]

    def test_failed_batch_leaves_queries_unchanged(self, rng):
        engine = _engine()
        probe = random_signature(rng, 4)
        for _ in range(5):
            engine.insert(random_signature(rng, 4))
        result_before = engine.query(probe, top_k=5)
        with pytest.raises(ValueError):
            engine.insert_many([
                random_signature(rng, 3),
                zero_segment_signature(rng),
            ])
        result_after = engine.query(probe, top_k=5)
        assert [(r.object_id, r.distance) for r in result_before] == [
            (r.object_id, r.distance) for r in result_after
        ]
