"""Tests for sketch construction (Algorithms 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FeatureMeta, SketchConstructor, SketchParams
from repro.core.sketch import estimate_l1_from_hamming


def _unit_meta(dim=8):
    return FeatureMeta(dim, np.zeros(dim), np.ones(dim))


class TestParams:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            SketchParams(0, _unit_meta())

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SketchParams(64, _unit_meta(), k_xor=0)

    def test_zero_range_rejected(self):
        meta = FeatureMeta(2, np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            SketchConstructor(SketchParams(8, meta))


class TestAlgorithm1:
    """Random (i, t) pair generation."""

    def test_pairs_shape(self):
        sk = SketchConstructor(SketchParams(100, _unit_meta(), k_xor=3, seed=1))
        assert sk.rnd_i.shape == (100, 3)
        assert sk.rnd_t.shape == (100, 3)

    def test_thresholds_within_dimension_bounds(self):
        meta = FeatureMeta(3, np.array([0.0, 10.0, -5.0]), np.array([1.0, 20.0, 5.0]))
        sk = SketchConstructor(SketchParams(256, meta, seed=2))
        lo = meta.min_values[sk.rnd_i]
        hi = meta.max_values[sk.rnd_i]
        assert np.all(sk.rnd_t >= lo)
        assert np.all(sk.rnd_t <= hi)

    def test_dimension_sampling_follows_weighted_ranges(self):
        # dim 1 has 3x the range of dim 0 => sampled ~3x as often.
        meta = FeatureMeta(2, np.zeros(2), np.array([1.0, 3.0]))
        sk = SketchConstructor(SketchParams(4000, meta, seed=3))
        counts = np.bincount(sk.rnd_i.ravel(), minlength=2)
        assert counts[1] / counts[0] == pytest.approx(3.0, rel=0.15)

    def test_explicit_weights_override(self):
        meta = FeatureMeta(2, np.zeros(2), np.ones(2), weights=np.array([1.0, 9.0]))
        sk = SketchConstructor(SketchParams(4000, meta, seed=4))
        counts = np.bincount(sk.rnd_i.ravel(), minlength=2)
        assert counts[1] / counts[0] == pytest.approx(9.0, rel=0.2)

    def test_deterministic_given_seed(self):
        a = SketchConstructor(SketchParams(64, _unit_meta(), seed=5))
        b = SketchConstructor(SketchParams(64, _unit_meta(), seed=5))
        assert np.array_equal(a.rnd_i, b.rnd_i)
        assert np.array_equal(a.rnd_t, b.rnd_t)

    def test_different_seeds_differ(self):
        a = SketchConstructor(SketchParams(64, _unit_meta(), seed=6))
        b = SketchConstructor(SketchParams(64, _unit_meta(), seed=7))
        assert not np.array_equal(a.rnd_t, b.rnd_t)


class TestAlgorithm2:
    """Feature vector -> N-bit sketch conversion."""

    def test_bit_semantics_k1(self):
        sk = SketchConstructor(SketchParams(128, _unit_meta(), seed=8))
        v = np.random.default_rng(0).random(8)
        bits = sk.sketch_bits(v[None, :])[0]
        expected = (v[sk.rnd_i[:, 0]] >= sk.rnd_t[:, 0]).astype(np.uint8)
        assert np.array_equal(bits, expected)

    def test_xor_folding_k3(self):
        sk = SketchConstructor(SketchParams(64, _unit_meta(), k_xor=3, seed=9))
        v = np.random.default_rng(1).random(8)
        bits = sk.sketch_bits(v[None, :])[0]
        raw = (v[sk.rnd_i] >= sk.rnd_t).astype(np.uint8)
        expected = raw[:, 0] ^ raw[:, 1] ^ raw[:, 2]
        assert np.array_equal(bits, expected)

    def test_sketch_many_matches_single(self):
        sk = SketchConstructor(SketchParams(96, _unit_meta(), seed=10))
        rng = np.random.default_rng(2)
        vectors = rng.random((5, 8))
        packed = sk.sketch_many(vectors)
        for i, v in enumerate(vectors):
            assert np.array_equal(packed[i], sk.sketch(v))

    def test_dim_mismatch_rejected(self):
        sk = SketchConstructor(SketchParams(64, _unit_meta(8), seed=11))
        with pytest.raises(ValueError):
            sk.sketch(np.zeros(5))

    def test_identical_vectors_zero_hamming(self):
        sk = SketchConstructor(SketchParams(256, _unit_meta(), seed=12))
        v = np.random.default_rng(3).random(8)
        assert sk.hamming(sk.sketch(v), sk.sketch(v.copy())) == 0


class TestDistanceEstimation:
    """The core claim: expected Hamming distance tracks weighted l1."""

    def test_hamming_proportional_to_l1_k1(self):
        meta = _unit_meta(10)
        sk = SketchConstructor(SketchParams(4096, meta, seed=13))
        rng = np.random.default_rng(4)
        for _ in range(8):
            a, b = rng.random(10), rng.random(10)
            l1 = np.abs(a - b).sum()
            expected_frac = l1 / 10.0  # sum of ranges = 10
            measured = sk.hamming(sk.sketch(a), sk.sketch(b)) / 4096
            assert measured == pytest.approx(expected_frac, abs=0.035)

    def test_monotonicity_in_distance(self):
        """Nearer vector pairs get smaller sketch distances (on average)."""
        meta = _unit_meta(6)
        sk = SketchConstructor(SketchParams(2048, meta, seed=14))
        base = np.full(6, 0.5)
        rng = np.random.default_rng(5)
        hammings = []
        for scale in (0.05, 0.15, 0.3):
            others = np.clip(base + rng.uniform(-scale, scale, (20, 6)), 0, 1)
            packed = sk.sketch_many(others)
            query = sk.sketch(base)
            hammings.append(float(np.mean([sk.hamming(query, p) for p in packed])))
        assert hammings[0] < hammings[1] < hammings[2]

    def test_k_dampens_large_distances(self):
        """XOR folding compresses the far range: ratio of far/near Hamming
        shrinks as K grows."""
        meta = _unit_meta(4)
        near_a, near_b = np.zeros(4), np.full(4, 0.05)
        far_a, far_b = np.zeros(4), np.full(4, 0.8)
        ratios = []
        for k in (1, 4):
            sk = SketchConstructor(SketchParams(4096, meta, k_xor=k, seed=15))
            near = sk.hamming(sk.sketch(near_a), sk.sketch(near_b))
            far = sk.hamming(sk.sketch(far_a), sk.sketch(far_b))
            ratios.append(far / max(near, 1))
        assert ratios[1] < ratios[0]

    def test_expected_collision_probability_formula(self):
        sk = SketchConstructor(SketchParams(64, _unit_meta(4), k_xor=2, seed=16))
        # p=0.25 per bit -> XOR of 2: 0.5*(1-(1-0.5)^2) = 0.375
        assert sk.expected_collision_probability(1.0) == pytest.approx(0.375)

    def test_estimate_l1_inverts_expectation(self):
        meta = _unit_meta(10)
        for k in (1, 2, 3):
            sk = SketchConstructor(SketchParams(8192, meta, k_xor=k, seed=17))
            rng = np.random.default_rng(6)
            a, b = rng.random(10), rng.random(10)
            l1 = np.abs(a - b).sum()
            h = sk.hamming(sk.sketch(a), sk.sketch(b))
            est = estimate_l1_from_hamming(h, sk)
            assert est == pytest.approx(l1, rel=0.25)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_hamming_within_binomial_bounds(self, seed):
        """Hamming ~ Binomial(N, p): check a 6-sigma envelope."""
        meta = _unit_meta(8)
        sk = SketchConstructor(SketchParams(2048, meta, seed=18))
        rng = np.random.default_rng(seed)
        a, b = rng.random(8), rng.random(8)
        p = np.abs(a - b).sum() / 8.0
        h = sk.hamming(sk.sketch(a), sk.sketch(b))
        sigma = np.sqrt(2048 * p * (1 - p))
        assert abs(h - 2048 * p) <= 6 * sigma + 8
