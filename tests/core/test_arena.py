"""Segmented-arena unit tests: append chunks, delta journal, compaction.

The arena (PR: online index maintenance) replaced the monolithic
concatenate-on-insert sketch matrix with capacity-grown parallel arrays
plus a delta journal.  These tests pin the structural contract —
appends never copy the whole matrix, `delta_since` reproduces the arena
bit-identically, compaction invalidates deltas — and the locking fixes
on `__len__`/`sketch_bytes` (the reported race with concurrent
remove/compact).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import ArenaCompactor, ArenaDelta, SegmentStore


def _store(n_objects=0, segs=3, n_words=2, seed=0, keep_features=False):
    rng = np.random.default_rng(seed)
    store = SegmentStore(n_words=n_words, dim=4, keep_features=keep_features)
    for oid in range(n_objects):
        _add(store, oid, rng, segs=segs, n_words=n_words, keep_features=keep_features)
    return store, rng


def _add(store, oid, rng, segs=3, n_words=2, keep_features=False):
    sk = rng.integers(0, 2**63, size=(segs, n_words), dtype=np.uint64).astype(
        np.uint64
    )
    ft = rng.random((segs, 4)) if keep_features else None
    store.add_object(oid, sk, ft)
    return sk


class TestAppendArena:
    def test_append_does_not_reallocate_under_capacity(self):
        store, rng = _store(1)
        buf_before = store._sketches
        # Capacity doubling leaves plenty of headroom after the first
        # grow; the next small append must write in place.
        assert store._cap > store._n
        _add(store, 1, rng)
        assert store._sketches is buf_before

    def test_snapshot_views_are_stable_across_appends(self):
        store, rng = _store(4)
        owners, sketches = store.snapshot()
        rows_before = sketches.copy()
        for oid in range(4, 40):
            _add(store, oid, rng)
        # Old snapshot still reads the rows it was cut from, even though
        # the arena reallocated several times since.
        assert sketches.shape == rows_before.shape
        np.testing.assert_array_equal(sketches, rows_before)

    def test_epoch_and_marks_advance_per_append(self):
        store, rng = _store(0)
        assert store.epoch == 0
        _add(store, 0, rng, segs=2)
        _add(store, 1, rng, segs=5)
        info = store.arena_info()
        assert store.epoch == 2
        assert info["rows"] == 7
        assert info["chunks"] == 3  # baseline mark + 2 sealed chunks

    def test_zero_segment_object_rejected(self):
        store, _ = _store(0)
        with pytest.raises(ValueError, match="no segment sketches"):
            store.add_object(7, np.empty((0, 2), dtype=np.uint64))


class TestDeltaJournal:
    def test_delta_reproduces_arena(self):
        store, rng = _store(5)
        e0, ow0, sk0 = store.versioned_snapshot()
        ow0, sk0 = ow0.copy(), sk0.copy()
        for oid in range(5, 9):
            _add(store, oid, rng)
        store.remove_object(2)
        delta = store.delta_since(e0)
        assert isinstance(delta, ArenaDelta)
        assert delta.from_epoch == e0 and delta.to_epoch == store.epoch
        assert delta.base_rows == ow0.shape[0]
        # Replay: base + delta == live arena, bit for bit.
        ow = np.concatenate([ow0, delta.new_owners])
        ow[delta.dead_rows] = -1
        sk = np.concatenate([sk0, delta.new_sketches])
        live_ow, live_sk = store.snapshot()
        np.testing.assert_array_equal(ow, live_ow)
        np.testing.assert_array_equal(sk, live_sk)

    def test_delta_of_current_epoch_is_empty_or_none(self):
        store, _ = _store(3)
        delta = store.delta_since(store.epoch)
        assert delta is None or delta.n_new == 0

    def test_unknown_epoch_requires_full_reload(self):
        store, _ = _store(3)
        assert store.delta_since(store.epoch + 10) is None

    def test_compaction_invalidates_outstanding_deltas(self):
        store, rng = _store(6)
        e0 = store.epoch
        store.remove_object(0)
        store.compact()
        assert store.delta_since(e0) is None
        info = store.arena_info()
        assert info["delta_floor"] == info["epoch"] == info["compaction_epoch"]

    def test_tombstone_on_appended_rows_lands_in_new_slice(self):
        # Enough live rows that the removal stays under the inline
        # compaction threshold (which would reset the journal).
        store, rng = _store(8)
        e0 = store.epoch
        _add(store, 77, rng)
        store.remove_object(77)  # dead rows live inside the delta slice
        delta = store.delta_since(e0)
        assert delta is not None
        assert delta.dead_rows.size == 0  # only pre-base tombstones listed
        assert (delta.new_owners == -1).sum() == 3


class TestLockedAccessors:
    """Satellite bugfix: `__len__`/`sketch_bytes` read under the lock."""

    def test_len_and_bytes_consistent_under_concurrent_churn(self):
        store, rng = _store(50, segs=2)
        stop = threading.Event()
        errors: list = []

        def churn():
            local = np.random.default_rng(123)
            oid = 1000
            try:
                while not stop.is_set():
                    _add(store, oid, local, segs=2)
                    store.remove_object(oid)
                    store.remove_object(int(local.integers(0, 50)))
                    oid += 1
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def read():
            try:
                for _ in range(3000):
                    n = len(store)
                    b = store.sketch_bytes
                    assert n >= 0
                    assert b >= 0
                    assert b % (store.n_words * 8) == 0
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        churner = threading.Thread(target=churn)
        readers = [threading.Thread(target=read) for _ in range(3)]
        churner.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        churner.join()
        assert not errors
        # Quiesced: the counters agree with ground truth.
        owners, _ = store.snapshot()
        assert len(store) == int((owners >= 0).sum())
        assert store.sketch_bytes == len(store) * store.n_words * 8


class TestMaintenanceCompaction:
    def test_maintenance_equals_inline_compaction(self):
        a, rng_a = _store(20, seed=7, keep_features=True)
        b, _ = _store(20, seed=7, keep_features=True)
        for oid in (1, 5, 9, 13):
            a.remove_object(oid)
            b.remove_object(oid)
        assert a.maintenance_compact()
        b.compact()
        for x, y in zip(a.snapshot(with_features=True), b.snapshot(with_features=True)):
            np.testing.assert_array_equal(x, y)
        assert a.arena_info()["dead_rows"] == 0

    def test_compaction_keeps_mutations_made_during_gather(self):
        # Simulate phase-2 interleaving: mutate between the mark and the
        # install by monkeypatching the unlocked gather window is hard;
        # instead drive maintenance_compact concurrently with churn and
        # check the invariant afterwards.
        store, rng = _store(100, segs=1, seed=3)
        stop = threading.Event()
        errors: list = []

        def churn():
            local = np.random.default_rng(5)
            oid = 10_000
            try:
                while not stop.is_set():
                    _add(store, oid, local, segs=1)
                    if oid % 3 == 0:
                        store.remove_object(oid - 1)
                    oid += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=churn)
        t.start()
        for _ in range(20):
            store.maintenance_compact()
        stop.set()
        t.join()
        assert not errors
        owners, sketches = store.snapshot()
        info = store.arena_info()
        assert info["rows"] == owners.shape[0] == sketches.shape[0]
        assert info["dead_rows"] == int((owners < 0).sum())
        # Every object inserted and not removed has exactly one row.
        alive = owners[owners >= 0]
        assert len(alive) == len(set(alive.tolist()))

    def test_background_compactor_runs_and_stops(self):
        store, rng = _store(40, segs=1)
        compactor = ArenaCompactor(store, dead_fraction=0.05, interval=0.01)
        compactor.start()
        try:
            for oid in range(30):
                store.remove_object(oid)
            deadline = 200
            while store.arena_info()["dead_rows"] and deadline:
                deadline -= 1
                threading.Event().wait(0.01)
            assert store.arena_info()["dead_rows"] == 0
        finally:
            compactor.stop()
        assert not compactor.running
        # Detached again: inline threshold compaction is restored.
        assert store._compactor is None
