"""Churn equivalence: serial == thread == process, bit for bit.

The delta-shipping pool refresh (PR: online index maintenance) must be
invisible to queries: after any interleaving of insert / remove /
compact, an engine whose pool was refreshed incrementally answers
queries identically to a serial engine and to a pool loaded fresh from
scratch.  Hypothesis drives the interleavings; fixed-seed tests cover
the process backend (spawning real workers is too slow for example
search).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    LSHParams,
    ObjectSignature,
    ParallelConfig,
    SimilaritySearchEngine,
    SketchParams,
)

DIM = 6


def _make_engine(backend, lsh=False, cache_entries=0):
    meta = FeatureMeta(DIM, np.zeros(DIM), np.ones(DIM))
    if backend == "serial":
        parallel = ParallelConfig(enabled=False, cache_entries=cache_entries)
    else:
        parallel = ParallelConfig(
            num_workers=2,
            min_segments=0,
            backend=backend,
            cache_entries=cache_entries,
        )
    return SimilaritySearchEngine(
        DataTypePlugin("test", meta),
        sketch_params=SketchParams(64, meta, seed=1),
        parallel=parallel,
        lsh_params=LSHParams(num_tables=4, bits_per_key=8, seed=2)
        if lsh
        else None,
    )


def _signature(rng, segs):
    return ObjectSignature(rng.random((segs, DIM)), rng.random(segs) + 0.1)


def _results(engine, probes):
    out = []
    for sig in probes:
        out.append(
            [(r.object_id, r.distance) for r in engine.query(sig, top_k=5)]
        )
    return out


def _apply(engines, op, rng_seed, next_id):
    """Apply one churn op to every engine identically; returns next_id."""
    kind, payload = op
    rng = np.random.default_rng(rng_seed)
    if kind == "insert":
        sig_data = _signature(rng, payload)
        for engine in engines:
            sig = ObjectSignature(
                sig_data.features.copy(),
                sig_data.weights.copy(),
                object_id=next_id,
            )
            engine.insert(sig)
        return next_id + 1
    if kind == "remove":
        live = sorted(engines[0]._objects)
        if live:
            victim = live[payload % len(live)]
            for engine in engines:
                engine.remove(victim)
        return next_id
    if kind == "compact":
        for engine in engines:
            engine._store.compact()
        return next_id
    raise AssertionError(kind)


# Ops: insert with 1-4 segments, remove an arbitrary live object,
# explicit compaction (journal reset + full-reload path).
_OP = st.one_of(
    st.tuples(st.just("insert"), st.integers(1, 4)),
    st.tuples(st.just("remove"), st.integers(0, 10_000)),
    st.tuples(st.just("compact"), st.just(0)),
)


class TestChurnInterleavings:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(_OP, min_size=1, max_size=12), seed=st.integers(0, 2**16))
    def test_serial_and_thread_stay_bit_identical(self, ops, seed):
        serial = _make_engine("serial")
        threaded = _make_engine("thread")
        try:
            engines = [serial, threaded]
            rng = np.random.default_rng(seed)
            next_id = 0
            # Warm base so the pool exists before the churn starts.
            for _ in range(4):
                next_id = _apply(engines, ("insert", 3), seed + next_id, next_id)
            probes = [_signature(rng, 3) for _ in range(2)]
            assert _results(serial, probes) == _results(threaded, probes)
            for i, op in enumerate(ops):
                next_id = _apply(engines, op, seed + 1000 + i, next_id)
                # Query after *every* op: each query forces a pool
                # refresh (delta where servable, full otherwise).
                assert _results(serial, probes) == _results(threaded, probes)
            info = threaded.parallel_info()
            assert not info["broken"]
        finally:
            serial.close()
            threaded.close()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(_OP, min_size=1, max_size=8), seed=st.integers(0, 2**16))
    def test_lsh_stays_consistent_under_churn(self, ops, seed):
        engine = _make_engine("serial", lsh=True)
        try:
            next_id = 0
            for _ in range(3):
                next_id = _apply([engine], ("insert", 2), seed + next_id, next_id)
            for i, op in enumerate(ops):
                next_id = _apply([engine], op, seed + 1000 + i, next_id)
                assert engine.lsh_index.verify_consistency() == []
        finally:
            engine.close()


class TestProcessBackendChurn:
    """Fixed-seed process-pool churn (worker spawn is too slow for
    hypothesis search, but the Pipe-protocol delta path must be covered
    end to end)."""

    def test_process_matches_serial_under_churn(self):
        serial = _make_engine("serial")
        procs = _make_engine("process")
        try:
            engines = [serial, procs]
            rng = np.random.default_rng(42)
            next_id = 0
            for _ in range(6):
                next_id = _apply(engines, ("insert", 3), 42 + next_id, next_id)
            probes = [_signature(rng, 3) for _ in range(2)]
            script = [
                ("insert", 2),
                ("insert", 4),
                ("remove", 1),
                ("insert", 1),
                ("compact", 0),
                ("insert", 3),
                ("remove", 0),
                ("insert", 2),
            ]
            assert _results(serial, probes) == _results(procs, probes)
            for i, op in enumerate(script):
                next_id = _apply(engines, op, 7000 + i, next_id)
                assert _results(serial, probes) == _results(procs, probes)
            assert not procs.parallel_info()["broken"]
        finally:
            serial.close()
            procs.close()

    def test_delta_loads_actually_happen(self):
        """The equivalence above must come from the delta path, not from
        silent full reloads."""
        from repro.observability import metrics as _metrics

        engine = _make_engine("thread")
        try:
            rng = np.random.default_rng(3)
            next_id = 0
            for _ in range(5):
                next_id = _apply([engine], ("insert", 3), 3 + next_id, next_id)
            probe = [_signature(rng, 3)]
            _results(engine, probe)  # builds + fully loads the pool
            reg = _metrics.get_registry()
            full0 = reg.get("parallel.arena_loads").value
            delta0 = reg.get("arena.delta_loads").value
            for _ in range(4):
                next_id = _apply([engine], ("insert", 2), 900 + next_id, next_id)
                _results(engine, probe)
            assert reg.get("parallel.arena_loads").value == full0
            assert reg.get("arena.delta_loads").value == delta0 + 4
        finally:
            engine.close()


class TestCacheEpochInvalidation:
    def test_cached_results_invalidate_across_churn(self):
        engine = _make_engine("thread", cache_entries=32)
        rng = np.random.default_rng(9)
        try:
            next_id = 0
            for _ in range(6):
                next_id = _apply([engine], ("insert", 3), 9 + next_id, next_id)
            probe = _signature(rng, 3)
            first = _results(engine, [probe])
            again = _results(engine, [probe])
            assert first == again  # cache hit path
            # Mutations bump the epoch: the cache must not serve results
            # from before the insert/remove.
            next_id = _apply([engine], ("insert", 3), 500, next_id)
            fresh = _make_engine("serial")
            try:
                # Rebuild the same object set serially.
                for oid, sig in sorted(engine._objects.items()):
                    fresh.insert(
                        ObjectSignature(
                            sig.features.copy(),
                            sig.weights.copy(),
                            object_id=oid,
                        )
                    )
                assert _results(engine, [probe]) == _results(fresh, [probe])
            finally:
                fresh.close()
        finally:
            engine.close()
