"""Perf smoke test: the batched filter path is candidate-set-identical
to the pre-batch per-segment reference implementation.

Marked ``perf`` so CI can select it (``pytest -m perf``); it is fast and
runs in tier-1.  This is the acceptance gate for the batched Hamming
kernel: any change to ``sketch_filter`` / ``sketch_filter_many`` /
``hamming_many_to_many`` that alters candidate sets — including the
tombstone handling both paths share — fails here.
"""

import numpy as np
import pytest

from repro.core import (
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SegmentStore,
    SketchConstructor,
    SketchParams,
    sketch_filter,
    sketch_filter_many,
    sketch_filter_reference,
)

pytestmark = pytest.mark.perf


def _seeded_store(num_objects=120, segs=3, dim=8, n_bits=256, seed=7):
    meta = FeatureMeta(dim, np.zeros(dim), np.ones(dim))
    sk = SketchConstructor(SketchParams(n_bits, meta, seed=seed))
    store = SegmentStore(sk.n_words, dim)
    rng = np.random.default_rng(seed)
    objects = {}
    for oid in range(num_objects):
        feats = rng.random((segs, dim))
        objects[oid] = ObjectSignature(feats, rng.random(segs) + 0.1, object_id=oid)
        store.add_object(oid, sk.sketch_many(feats), feats)
    # Tombstone a slice of objects (under the compaction threshold) so
    # the equivalence covers dead-row masking on both paths.
    for oid in range(10, 30):
        store.remove_object(oid)
    return sk, store, objects


PARAM_GRID = [
    FilterParams(num_query_segments=4, candidates_per_segment=64),
    FilterParams(num_query_segments=4, candidates_per_segment=8,
                 threshold_fraction=0.3),
    FilterParams(num_query_segments=2, candidates_per_segment=200,
                 threshold_fraction=None),
    FilterParams(num_query_segments=1, candidates_per_segment=1000),
]


@pytest.mark.parametrize("params", PARAM_GRID)
def test_batched_filter_identical_to_reference(params):
    sk, store, objects = _seeded_store()
    for qid in (0, 5, 42, 77, 111):
        q = objects[qid]
        qs = sk.sketch_many(q.features)
        batched = sketch_filter(q, qs, store, params, sk.n_bits)
        reference = sketch_filter_reference(q, qs, store, params, sk.n_bits)
        assert batched == reference, (
            f"candidate sets diverged for query {qid} with {params}"
        )


@pytest.mark.parametrize("params", PARAM_GRID)
def test_multi_query_filter_identical_to_reference(params):
    sk, store, objects = _seeded_store()
    queries = [objects[qid] for qid in (0, 5, 42, 77, 111)]
    sketches = [sk.sketch_many(q.features) for q in queries]
    batched = sketch_filter_many(queries, sketches, store, params, sk.n_bits)
    for q, qs, got in zip(queries, sketches, batched):
        assert got == sketch_filter_reference(q, qs, store, params, sk.n_bits)
