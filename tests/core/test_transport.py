"""Tests for the transportation simplex, cross-checked against scipy's LP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.core.transport import solve_transport


def scipy_transport_cost(supply, demand, costs):
    """Reference optimum via scipy's HiGHS LP solver."""
    m, n = costs.shape
    a_eq = []
    for i in range(m):
        row = np.zeros((m, n))
        row[i, :] = 1
        a_eq.append(row.ravel())
    for j in range(n):
        row = np.zeros((m, n))
        row[:, j] = 1
        a_eq.append(row.ravel())
    res = linprog(
        costs.ravel(),
        A_eq=np.asarray(a_eq),
        b_eq=np.concatenate([supply, demand]),
        bounds=(0, None),
        method="highs",
    )
    assert res.status == 0, res.message
    return res.fun


class TestBasics:
    def test_trivial_1x1(self):
        result = solve_transport(np.array([1.0]), np.array([1.0]), np.array([[3.0]]))
        assert result.cost == pytest.approx(3.0)
        assert result.flow[0, 0] == pytest.approx(1.0)

    def test_identity_matching(self):
        # zero-cost diagonal must route all flow diagonally
        costs = np.ones((3, 3)) - np.eye(3)
        supply = demand = np.full(3, 1 / 3)
        result = solve_transport(supply, demand, costs)
        assert result.cost == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(result.flow, np.eye(3) / 3)

    def test_flow_conservation(self):
        rng = np.random.default_rng(0)
        supply = rng.random(4)
        demand = rng.random(5)
        demand *= supply.sum() / demand.sum()
        costs = rng.random((4, 5))
        result = solve_transport(supply, demand, costs)
        assert np.allclose(result.flow.sum(axis=1), supply)
        assert np.allclose(result.flow.sum(axis=0), demand)
        assert np.all(result.flow >= 0)

    def test_zero_mass(self):
        result = solve_transport(np.zeros(2), np.zeros(3), np.ones((2, 3)))
        assert result.cost == 0.0

    def test_zero_weight_rows_allowed(self):
        supply = np.array([0.0, 1.0])
        demand = np.array([0.5, 0.5, 0.0])
        costs = np.arange(6, dtype=float).reshape(2, 3)
        result = solve_transport(supply, demand, costs)
        assert result.flow[0].sum() == pytest.approx(0.0)
        assert result.cost == pytest.approx(0.5 * 3 + 0.5 * 4)

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            solve_transport(np.array([1.0]), np.array([2.0]), np.array([[1.0]]))

    def test_negative_supply_rejected(self):
        with pytest.raises(ValueError):
            solve_transport(np.array([-1.0, 2.0]), np.array([1.0]), np.ones((2, 1)))

    def test_cost_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_transport(np.ones(2), np.ones(2), np.ones((3, 2)))


class TestOptimality:
    @pytest.mark.parametrize("m,n,seed", [
        (2, 2, 1), (3, 4, 2), (5, 5, 3), (7, 3, 4), (10, 10, 5), (1, 8, 6), (8, 1, 7),
    ])
    def test_matches_scipy(self, m, n, seed):
        rng = np.random.default_rng(seed)
        supply = rng.random(m) + 0.01
        demand = rng.random(n) + 0.01
        demand *= supply.sum() / demand.sum()
        costs = rng.random((m, n)) * 10
        result = solve_transport(supply, demand, costs)
        expected = scipy_transport_cost(supply, demand, costs)
        assert result.cost == pytest.approx(expected, rel=1e-8, abs=1e-10)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(0, 10_000),
    )
    def test_property_matches_scipy(self, m, n, seed):
        rng = np.random.default_rng(seed)
        supply = rng.random(m) + 1e-3
        demand = rng.random(n) + 1e-3
        demand *= supply.sum() / demand.sum()
        costs = rng.random((m, n))
        result = solve_transport(supply, demand, costs)
        expected = scipy_transport_cost(supply, demand, costs)
        assert result.cost == pytest.approx(expected, rel=1e-7, abs=1e-9)

    def test_degenerate_equal_weights(self):
        # Many ties — classic degeneracy stress for the simplex.
        m = n = 6
        supply = demand = np.full(m, 1.0 / m)
        rng = np.random.default_rng(42)
        costs = rng.integers(1, 5, size=(m, n)).astype(float)
        result = solve_transport(supply, demand, costs)
        expected = scipy_transport_cost(supply, demand, costs)
        assert result.cost == pytest.approx(expected, rel=1e-8)

    def test_integer_costs_classic_example(self):
        # Known textbook instance.
        supply = np.array([20.0, 30.0, 25.0])
        demand = np.array([10.0, 28.0, 27.0, 10.0])
        costs = np.array(
            [[4.0, 5.0, 6.0, 8.0], [6.0, 4.0, 3.0, 5.0], [5.0, 2.0, 2.0, 8.0]]
        )
        result = solve_transport(supply, demand, costs)
        expected = scipy_transport_cost(supply, demand, costs)
        assert result.cost == pytest.approx(expected)
