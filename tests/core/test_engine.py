"""Tests for the core similarity search engine."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    LSHParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)


@pytest.fixture()
def engine(unit_meta):
    plugin = DataTypePlugin("test", unit_meta)
    return SimilaritySearchEngine(
        plugin,
        SketchParams(256, unit_meta, seed=1),
        FilterParams(num_query_segments=3, candidates_per_segment=20),
        lsh_params=LSHParams(num_tables=8, bits_per_key=10, seed=2),
    )


def _fill(engine, count=40, segs=3, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        engine.insert(ObjectSignature(rng.random((segs, 8)), rng.random(segs) + 0.1))
    return rng


class TestSearchMethod:
    def test_parse_value(self):
        assert SearchMethod.parse("filtering") is SearchMethod.FILTERING
        assert SearchMethod.parse("BRUTE_FORCE_SKETCH") is SearchMethod.BRUTE_FORCE_SKETCH

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            SearchMethod.parse("nope")


class TestInsert:
    def test_sequential_ids(self, engine):
        _fill(engine, 5)
        assert sorted(engine.objects) == [0, 1, 2, 3, 4]

    def test_explicit_id(self, engine):
        oid = engine.insert(
            ObjectSignature(np.random.rand(2, 8), [1, 1]), object_id=100
        )
        assert oid == 100
        # next auto id continues past the explicit one
        auto = engine.insert(ObjectSignature(np.random.rand(1, 8), [1.0]))
        assert auto == 101

    def test_duplicate_id_rejected(self, engine):
        engine.insert(ObjectSignature(np.random.rand(1, 8), [1.0]), object_id=3)
        with pytest.raises(KeyError):
            engine.insert(ObjectSignature(np.random.rand(1, 8), [1.0]), object_id=3)

    def test_mismatched_sketch_meta_rejected(self, unit_meta):
        other = FeatureMeta(4, np.zeros(4), np.ones(4))
        plugin = DataTypePlugin("test", unit_meta)
        with pytest.raises(ValueError):
            SimilaritySearchEngine(plugin, SketchParams(64, other))

    def test_contains_and_len(self, engine):
        _fill(engine, 7)
        assert len(engine) == 7
        assert 0 in engine
        assert 7 not in engine


class TestQuery:
    def test_empty_engine_returns_empty(self, engine):
        q = ObjectSignature(np.random.rand(1, 8), [1.0])
        assert engine.query(q) == []

    def test_self_query_ranks_first(self, engine):
        _fill(engine)
        for method in SearchMethod:
            results = engine.query_by_id(5, top_k=3, method=method)
            assert results[0].object_id == 5
            assert results[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_exclude_self(self, engine):
        _fill(engine)
        results = engine.query_by_id(5, top_k=10, exclude_self=True)
        assert all(r.object_id != 5 for r in results)

    def test_invalid_top_k(self, engine):
        _fill(engine, 3)
        with pytest.raises(ValueError):
            engine.query_by_id(0, top_k=0)

    def test_methods_agree_on_duplicate(self, engine):
        """An exact duplicate must rank top for all three methods."""
        rng = _fill(engine)
        original = engine.get_object(10)
        dup_id = engine.insert(
            ObjectSignature(original.features.copy(), original.weights.copy(),
                            normalize=False)
        )
        for method in SearchMethod:
            results = engine.query_by_id(10, top_k=2, method=method,
                                         exclude_self=True)
            assert results[0].object_id == dup_id

    def test_restrict_to(self, engine):
        _fill(engine)
        allowed = [1, 2, 3]
        results = engine.query_by_id(
            1, top_k=10, method=SearchMethod.BRUTE_FORCE_ORIGINAL,
            restrict_to=allowed,
        )
        assert {r.object_id for r in results} <= set(allowed)

    def test_restrict_to_applies_to_filtering(self, engine):
        _fill(engine)
        results = engine.query_by_id(
            1, top_k=10, method=SearchMethod.FILTERING, restrict_to=[2, 4],
        )
        assert {r.object_id for r in results} <= {2, 4}

    def test_filtering_subset_of_brute_force_order(self, engine):
        """Filtering results must rank consistently with brute force: any
        object filtering returns gets the same distance brute force gives."""
        _fill(engine, 60)
        brute = {
            r.object_id: r.distance
            for r in engine.query_by_id(
                0, top_k=60, method=SearchMethod.BRUTE_FORCE_ORIGINAL
            )
        }
        filtered = engine.query_by_id(0, top_k=10, method=SearchMethod.FILTERING)
        for r in filtered:
            assert r.distance == pytest.approx(brute[r.object_id], rel=1e-9)

    def test_single_segment_sketch_ranking(self, unit_meta):
        """With one segment per object, BruteForceSketch = Hamming scan."""
        plugin = DataTypePlugin("single", unit_meta)
        engine = SimilaritySearchEngine(plugin, SketchParams(512, unit_meta, seed=3))
        rng = np.random.default_rng(1)
        base = rng.random(8)
        engine.insert(ObjectSignature(base[None, :], [1.0]))  # 0
        engine.insert(ObjectSignature((base + 0.02)[None, :], [1.0]))  # 1 near
        engine.insert(ObjectSignature(rng.random((1, 8)), [1.0]))  # 2 far
        results = engine.query_by_id(
            0, top_k=2, method=SearchMethod.BRUTE_FORCE_SKETCH, exclude_self=True
        )
        assert results[0].object_id == 1


class TestStats:
    def test_counts(self, engine):
        _fill(engine, 10, segs=4)
        stats = engine.stats()
        assert stats.num_objects == 10
        assert stats.num_segments == 40
        assert stats.avg_segments_per_object == pytest.approx(4.0)

    def test_compression_ratio(self, engine):
        _fill(engine, 2)
        stats = engine.stats()
        # 8 dims * 32 bits = 256 feature bits; sketch = 256 bits
        assert stats.feature_bits_per_vector == 256
        assert stats.sketch_bits_per_vector == 256
        assert stats.compression_ratio == pytest.approx(1.0)

    def test_bytes_accounting(self, engine):
        _fill(engine, 5, segs=2)
        stats = engine.stats()
        assert stats.feature_bytes == 10 * 8 * 4
        assert stats.sketch_bytes == 10 * 4 * 8  # 256 bits = 4 words


class _ExplodingMetadata:
    """Metadata backend whose write-through always fails."""

    def put_object(self, *args, **kwargs):
        raise RuntimeError("backend down")


class TestInsertRollback:
    def test_failed_insert_restores_engine_and_signature(self, unit_meta):
        plugin = DataTypePlugin("test", unit_meta)
        engine = SimilaritySearchEngine(
            plugin, SketchParams(64, unit_meta, seed=1),
            metadata=_ExplodingMetadata(),
        )
        sig = ObjectSignature(np.random.rand(2, 8), [1.0, 1.0])
        with pytest.raises(RuntimeError):
            engine.insert(sig)
        assert len(engine) == 0
        # The failure must not consume an id or leave the caller's
        # signature claiming an id that was never assigned.
        assert sig.object_id is None
        assert engine._next_id == 0
        engine.metadata = None
        assert engine.insert(ObjectSignature(np.random.rand(1, 8), [1.0])) == 0
