"""Tests for the data-type plug-in interface."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    EMDDistance,
    FeatureMeta,
    ObjectSignature,
    get_plugin,
    list_plugins,
    register_plugin,
)


@pytest.fixture()
def meta():
    return FeatureMeta(4, np.zeros(4), np.ones(4))


class TestDataTypePlugin:
    def test_default_obj_distance_is_emd(self, meta):
        plugin = DataTypePlugin("p1", meta)
        assert isinstance(plugin.obj_distance, EMDDistance)

    def test_custom_obj_distance_kept(self, meta):
        fn = lambda a, b: 0.0
        plugin = DataTypePlugin("p2", meta, obj_distance=fn)
        assert plugin.obj_distance is fn

    def test_extract_without_module_raises(self, meta):
        plugin = DataTypePlugin("p3", meta)
        with pytest.raises(NotImplementedError):
            plugin.extract("some-file")

    def test_extract_checks_dimension(self, meta):
        def bad_extract(filename):
            return ObjectSignature(np.zeros((1, 7)), [1.0])

        plugin = DataTypePlugin("p4", meta, seg_extract=bad_extract)
        with pytest.raises(ValueError):
            plugin.extract("x")

    def test_extract_passes_through(self, meta):
        def extract(filename):
            return ObjectSignature(np.full((2, 4), 0.5), [1, 1])

        plugin = DataTypePlugin("p5", meta, seg_extract=extract)
        obj = plugin.extract("x")
        assert obj.num_segments == 2


class TestRegistry:
    def test_register_and_get(self, meta):
        plugin = DataTypePlugin("registry-test", meta)
        register_plugin(plugin)
        assert get_plugin("registry-test") is plugin
        assert "registry-test" in list_plugins()

    def test_duplicate_rejected(self, meta):
        plugin = DataTypePlugin("registry-dup", meta)
        register_plugin(plugin)
        with pytest.raises(KeyError):
            register_plugin(DataTypePlugin("registry-dup", meta))
        register_plugin(DataTypePlugin("registry-dup", meta), replace=True)

    def test_unknown_plugin(self):
        with pytest.raises(KeyError):
            get_plugin("definitely-not-registered")
