"""Crash-recovery torture tests.

The unmarked tests are a fast subset that runs in tier-1: a handful of
crash points, one of each fault kind, and — critically — negative tests
proving the oracle *can* fail (a torture suite whose invariant checker
never fires is worthless).

The ``@pytest.mark.torture`` tests are the exhaustive scans: a crash at
every single write/fsync operation of the workload under several
durability configurations, plus hundreds of seeded random multi-fault
plans.  Opt in with ``pytest -m torture``.
"""

import os
import shutil

import pytest

from repro.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyFilesystem,
    TortureRunner,
    WorkloadSpec,
)
from repro.faults.torture import InvariantViolation, generate_workload
from repro.storage.kvstore import KVStore

SMALL = WorkloadSpec(num_txns=8, max_ops_per_txn=3, key_space=16)


# ---------------------------------------------------------------------------
# Fast subset (tier-1)
# ---------------------------------------------------------------------------

def test_workload_generation_is_deterministic():
    assert generate_workload(SMALL, seed=11) == generate_workload(SMALL, seed=11)
    assert generate_workload(SMALL, seed=11) != generate_workload(SMALL, seed=12)


def test_fault_free_run_completes_with_all_commits(tmp_path):
    runner = TortureRunner(SMALL)
    result = runner.run_plan(str(tmp_path / "case"), FaultPlan(), seed=1)
    assert result.outcome == "completed"
    assert result.committed == SMALL.num_txns
    assert result.matched_prefix == SMALL.num_txns
    assert not result.fault_triggered


def test_crash_mid_workload_recovers_a_prefix(tmp_path):
    runner = TortureRunner(SMALL)
    total = runner.profile(str(tmp_path / "profile"), seed=2)
    assert total > 10
    result = runner.run_plan(
        str(tmp_path / "case"), FaultPlan.crash_at(total // 2), seed=2
    )
    assert result.outcome == "recovered"
    assert result.crashed and result.fault_triggered
    assert 0 <= result.matched_prefix <= SMALL.num_txns
    assert result.matched_prefix >= result.durable_floor


def test_transient_enospc_rolls_back_and_continues(tmp_path):
    runner = TortureRunner(SMALL)
    result = runner.run_plan(str(tmp_path / "case"), FaultPlan.error_at(7), seed=3)
    # A transient write error aborts one transaction (WAL rolled back)
    # but the workload — and recovery — carry on.
    assert result.outcome == "completed"
    assert result.fault_triggered
    assert result.matched_prefix == result.committed


def test_bitflip_never_yields_a_silently_wrong_answer(tmp_path):
    runner = TortureRunner(SMALL)
    for op in (5, 15, 25):
        result = runner.run_plan(
            str(tmp_path / f"case{op}"), FaultPlan.bitflip_at(op, bit_index=13), seed=4
        )
        # Either the CRC caught it, or the flipped record was already
        # superseded and the state still matches a committed prefix.
        assert result.outcome in ("detected_corruption", "completed", "recovered")


def test_dropped_fsync_then_crash_respects_relaxed_floor(tmp_path):
    runner = TortureRunner(SMALL)
    total = runner.profile(str(tmp_path / "profile"), seed=5)
    plan = FaultPlan.drop_fsync_from(total // 3)
    plan.add(Fault(FaultKind.CRASH, (2 * total) // 3))
    result = runner.run_plan(str(tmp_path / "case"), plan, seed=5)
    assert result.outcome == "recovered"
    # Commits after the fsyncs stopped were never promised durable.
    assert result.matched_prefix >= result.durable_floor


def test_small_crash_scan_both_power_loss_modes(tmp_path):
    runner = TortureRunner(SMALL)
    for lose in (False, True):
        results = runner.crash_scan(
            str(tmp_path / f"lose{lose}"), seed=6, stride=7, lose_unsynced=lose
        )
        assert results
        assert all(r.outcome in ("recovered", "completed") for r in results)


# -- negative tests: the oracle must be able to fire ------------------------

def test_oracle_rejects_state_matching_no_prefix(tmp_path):
    runner = TortureRunner(SMALL)
    fs = FaultyFilesystem(FaultPlan())
    trace = runner._run_workload(str(tmp_path), fs, seed=7)
    assert trace.committed_txns
    # Sabotage: sneak in a key the workload never wrote.
    with KVStore(str(tmp_path), auto_checkpoint_ops=0) as store:
        txn = store.begin()
        txn.put("alpha", b"rogue-key", b"rogue-value")
        txn.commit()
    with pytest.raises(InvariantViolation):
        runner._verify(str(tmp_path), 7, trace, floor=0)


def test_oracle_rejects_lost_durable_commits(tmp_path):
    runner = TortureRunner(SMALL)
    fs = FaultyFilesystem(FaultPlan())
    trace = runner._run_workload(str(tmp_path), fs, seed=8)
    floor = runner._durable_floor(fs, trace)
    assert floor == len(trace.committed_txns)  # commit-synced policy
    # Sabotage: empty every WAL segment — the committed tail vanishes
    # even though the store promised it (fsyncs really happened).
    for name in os.listdir(tmp_path):
        if name.startswith("wal."):
            with open(os.path.join(tmp_path, name), "wb"):
                pass
    with pytest.raises(InvariantViolation):
        runner._verify(str(tmp_path), 8, trace, floor)


# ---------------------------------------------------------------------------
# Exhaustive scans (opt-in: pytest -m torture)
# ---------------------------------------------------------------------------

TORTURE_SPEC = WorkloadSpec(
    num_txns=24,
    max_ops_per_txn=4,
    key_space=32,
    sync_policy="commit",
)
BATCH_SPEC = WorkloadSpec(
    num_txns=24,
    max_ops_per_txn=4,
    key_space=32,
    sync_policy="batch",
    sync_batch=4,
    checkpoint_every=6,
)


@pytest.mark.torture
def test_torture_crash_at_every_op(tmp_path):
    """Simulated power loss at every single I/O operation."""
    runner = TortureRunner(TORTURE_SPEC)
    scenarios = 0
    for lose in (False, True):
        results = runner.crash_scan(
            str(tmp_path / f"lose{lose}"), seed=42, stride=1, lose_unsynced=lose
        )
        scenarios += len(results)
        bad = [r for r in results if r.outcome not in ("recovered", "completed")]
        assert not bad, bad
    assert scenarios >= 200


@pytest.mark.torture
def test_torture_crash_scan_with_checkpoints_and_batch_sync(tmp_path):
    """The relaxed-durability configuration: batch fsync + checkpoints."""
    runner = TortureRunner(BATCH_SPEC)
    scenarios = 0
    for lose in (False, True):
        results = runner.crash_scan(
            str(tmp_path / f"lose{lose}"), seed=43, stride=1, lose_unsynced=lose
        )
        scenarios += len(results)
        assert all(r.outcome in ("recovered", "completed") for r in results)
    assert scenarios >= 200


@pytest.mark.torture
def test_torture_torn_write_sweep(tmp_path):
    runner = TortureRunner(TORTURE_SPEC)
    total = runner.profile(str(tmp_path / "profile"), seed=44)
    for op in range(0, total, 2):
        result = runner.run_plan(
            str(tmp_path / "case"),
            FaultPlan.torn_write_at(op, keep_fraction=0.3),
            seed=44,
        )
        assert result.outcome in ("recovered", "completed", "detected_corruption")
        shutil.rmtree(str(tmp_path / "case"), ignore_errors=True)


@pytest.mark.torture
def test_torture_random_multi_fault_plans(tmp_path):
    """Seeded random plans mixing all five fault kinds."""
    runner = TortureRunner(TORTURE_SPEC)
    results = runner.random_scan(
        str(tmp_path),
        workload_seed=45,
        plan_seeds=list(range(120)),
        n_faults=2,
    )
    assert len(results) == 120
    assert all(
        r.outcome in ("recovered", "completed", "detected_corruption")
        for r in results
    )
    # The plans must actually be biting, not all missing the workload.
    assert sum(1 for r in results if r.fault_triggered) > len(results) // 2
