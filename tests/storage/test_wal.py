"""Tests for the write-ahead log."""

import os

import pytest

from repro.storage.errors import StorageError
from repro.storage.wal import (
    REC_BEGIN,
    REC_COMMIT,
    REC_DELETE,
    REC_PUT,
    WalRecord,
    WriteAheadLog,
)


class TestRecordCodec:
    def test_roundtrip(self):
        rec = WalRecord(REC_PUT, 42, "objects", b"key\x00bytes", b"value" * 100)
        assert WalRecord.unpack(rec.pack()) == rec

    def test_empty_fields(self):
        rec = WalRecord(REC_BEGIN, 1)
        assert WalRecord.unpack(rec.pack()) == rec

    def test_unicode_tree_name(self):
        rec = WalRecord(REC_DELETE, 3, "tabela-ąć", b"k")
        assert WalRecord.unpack(rec.pack()) == rec


class TestAppendRead:
    def test_roundtrip_through_file(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        records = [
            WalRecord(REC_BEGIN, 1),
            WalRecord(REC_PUT, 1, "t", b"a", b"1"),
            WalRecord(REC_COMMIT, 1),
        ]
        for rec in records:
            wal.append(rec)
        wal.close()
        read = list(WriteAheadLog.read_segment(wal.segment_path(0)))
        assert read == records

    def test_append_transaction_envelope(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        wal.append_transaction(9, [WalRecord(REC_PUT, 9, "t", b"k", b"v")])
        wal.close()
        read = list(WriteAheadLog.read_segment(wal.segment_path(0)))
        assert [r.rec_type for r in read] == [REC_BEGIN, REC_PUT, REC_COMMIT]
        assert all(r.txid == 9 for r in read)

    def test_missing_segment_yields_nothing(self, tmp_path):
        assert list(WriteAheadLog.read_segment(str(tmp_path / "absent"))) == []

    def test_torn_tail_ignored(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        wal.append_transaction(1, [WalRecord(REC_PUT, 1, "t", b"k", b"v")])
        wal.close()
        path = wal.segment_path(0)
        # Append garbage that looks like the start of a frame.
        with open(path, "ab") as fh:
            fh.write(b"\x50\x00\x00\x00\x12\x34")
        read = list(WriteAheadLog.read_segment(path))
        assert len(read) == 3  # complete transaction intact, tail dropped

    def test_corrupt_mid_record_stops_scan(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        for txid in (1, 2):
            wal.append_transaction(txid, [WalRecord(REC_PUT, txid, "t", b"k", b"v")])
        wal.close()
        path = wal.segment_path(0)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            fh.write(b"\xff\xff\xff\xff")
        read = list(WriteAheadLog.read_segment(path))
        # Only records before the corruption survive; nothing blows up.
        assert all(r.txid == 1 for r in read)

    def test_bad_sync_policy(self, tmp_path):
        with pytest.raises(StorageError):
            WriteAheadLog(str(tmp_path), 0, sync_policy="yolo")


class TestRotation:
    def test_rotate_deletes_old_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        wal.append_transaction(1, [WalRecord(REC_PUT, 1, "t", b"k", b"v")])
        old_path = wal.segment_path(0)
        wal.rotate(1)
        assert not os.path.exists(old_path)
        assert os.path.exists(wal.segment_path(1))
        wal.append_transaction(2, [WalRecord(REC_PUT, 2, "t", b"k2", b"v")])
        wal.close()
        read = list(WriteAheadLog.read_segment(wal.segment_path(1)))
        assert all(r.txid == 2 for r in read)

    def test_batch_sync_counts_commits(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="batch", batch_size=3)
        for txid in range(1, 8):
            wal.append_transaction(txid, [])
        # 7 commits with batch of 3: last fsync at 6, one unsynced commit left.
        assert wal._unsynced_commits == 1
        wal.close()


class TestTornTailRepair:
    def test_truncate_to_cuts_damage_and_appends_cleanly(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        wal.append_transaction(1, [WalRecord(REC_PUT, 1, "t", b"k", b"v")])
        good = wal.size
        wal.close()
        path = wal.segment_path(0)
        with open(path, "ab") as fh:
            fh.write(b"\xff\xff\xff")  # partial frame header
        reopened = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        assert reopened.size == good + 3
        reopened.truncate_to(good)
        assert reopened.size == good
        reopened.append_transaction(2, [WalRecord(REC_PUT, 2, "t", b"k2", b"v2")])
        reopened.close()
        scan = WriteAheadLog.scan_segment(path)
        assert not scan.torn_tail
        assert sorted({r.txid for r in scan.records}) == [1, 2]

    def test_truncate_to_never_grows_the_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        wal.append_transaction(1, [])
        size = wal.size
        wal.truncate_to(size)
        wal.truncate_to(size + 100)
        assert wal.size == size
        wal.close()

    def test_close_without_sync_skips_fsync(self, tmp_path):
        from repro.faults import FaultyFilesystem

        ffs = FaultyFilesystem()
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none", fs=ffs)
        wal.append_transaction(1, [WalRecord(REC_PUT, 1, "t", b"k", b"v")])
        wal.close(sync=False)
        assert ffs.fsync_log == []
        # The default close of a healthy log still syncs.
        ffs2 = FaultyFilesystem()
        wal2 = WriteAheadLog(str(tmp_path), 1, sync_policy="none", fs=ffs2)
        wal2.append_transaction(2, [])
        wal2.close()
        assert len(ffs2.fsync_log) == 1
