"""Tests for the page file: meta blocks, CRC, shadow-paging allocation."""

import os

import pytest

from repro.storage.errors import CorruptionError, StorageError
from repro.storage.pager import DEFAULT_PAGE_SIZE, META_SIZE, Meta, Pager


@pytest.fixture()
def pager(tmp_path):
    p = Pager(str(tmp_path / "data.db"))
    yield p
    p.close()


class TestMeta:
    def test_pack_unpack_roundtrip(self):
        meta = Meta(checkpoint_id=7, next_page_id=42, catalog_root=3,
                    freelist_root=-1, wal_seq=2)
        assert Meta.unpack(meta.pack()) == meta

    def test_corrupt_crc_rejected(self):
        raw = bytearray(Meta().pack())
        raw[4] ^= 0xFF
        assert Meta.unpack(bytes(raw)) is None

    def test_bad_magic_rejected(self):
        raw = bytearray(Meta().pack())
        raw[0:8] = b"NOTMAGIC"
        assert Meta.unpack(bytes(raw)) is None

    def test_short_block_rejected(self):
        assert Meta.unpack(b"tiny") is None


class TestPageIO:
    def test_write_read_roundtrip(self, pager):
        pid = pager.allocate()
        pager.write_page(pid, b"hello world")
        assert pager.read_page(pid) == b"hello world"

    def test_read_after_flush_and_reopen(self, tmp_path):
        path = str(tmp_path / "d.db")
        p = Pager(path)
        pid = p.allocate()
        p.write_page(pid, b"persisted")
        p.commit_checkpoint(catalog_root=-1, wal_seq=0)
        p.close()
        p2 = Pager(path)
        assert p2.read_page(pid) == b"persisted"
        p2.close()

    def test_oversized_payload_rejected(self, pager):
        pid = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(pid, b"x" * DEFAULT_PAGE_SIZE)

    def test_corrupt_page_detected(self, tmp_path):
        path = str(tmp_path / "d.db")
        p = Pager(path)
        pid = p.allocate()
        p.write_page(pid, b"data to corrupt")
        p.commit_checkpoint(catalog_root=-1, wal_seq=0)
        p.close()
        # Flip a byte inside the page payload on disk.
        with open(path, "r+b") as fh:
            fh.seek(2 * META_SIZE + pid * DEFAULT_PAGE_SIZE + 12)
            fh.write(b"\xff")
        p2 = Pager(path)
        with pytest.raises(CorruptionError):
            p2.read_page(pid)
        p2.close()


class TestAllocation:
    def test_monotonic_growth(self, pager):
        ids = [pager.allocate() for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_freed_pages_not_reused_same_epoch(self, pager):
        pid = pager.allocate()
        pager.write_page(pid, b"x")
        pager.free(pid)
        assert pager.allocate() != pid

    def test_freed_pages_reused_after_checkpoint(self, pager):
        pid = pager.allocate()
        pager.write_page(pid, b"x")
        pager.free(pid)
        pager.commit_checkpoint(catalog_root=-1, wal_seq=0)
        # Freed page is now on the reusable free list.
        assert pid in pager.free_list

    def test_freelist_survives_reopen(self, tmp_path):
        path = str(tmp_path / "d.db")
        p = Pager(path)
        pids = [p.allocate() for _ in range(10)]
        for pid in pids:
            p.write_page(pid, b"x")
        for pid in pids[:5]:
            p.free(pid)
        p.commit_checkpoint(catalog_root=-1, wal_seq=0)
        p.close()
        p2 = Pager(path)
        assert set(pids[:5]) <= set(p2.free_list)
        p2.close()


class TestCheckpoint:
    def test_checkpoint_id_increments(self, pager):
        assert pager.meta.checkpoint_id == 0
        pager.commit_checkpoint(-1, 1)
        assert pager.meta.checkpoint_id == 1
        pager.commit_checkpoint(-1, 2)
        assert pager.meta.checkpoint_id == 2

    def test_newest_valid_meta_wins(self, tmp_path):
        path = str(tmp_path / "d.db")
        p = Pager(path)
        p.commit_checkpoint(catalog_root=5, wal_seq=1)
        p.commit_checkpoint(catalog_root=9, wal_seq=2)
        p.close()
        p2 = Pager(path)
        assert p2.meta.catalog_root == 9
        assert p2.meta.checkpoint_id == 2
        p2.close()

    def test_torn_meta_falls_back(self, tmp_path):
        """Corrupting the newest meta block must fall back to the other."""
        path = str(tmp_path / "d.db")
        p = Pager(path)
        p.commit_checkpoint(catalog_root=5, wal_seq=1)  # slot 1 (ckpt 1)
        p.commit_checkpoint(catalog_root=9, wal_seq=2)  # slot 0 (ckpt 2)
        p.close()
        with open(path, "r+b") as fh:
            fh.seek((2 % 2) * META_SIZE)  # slot 0 holds checkpoint 2
            fh.write(b"\x00" * 16)
        p2 = Pager(path)
        assert p2.meta.checkpoint_id == 1
        assert p2.meta.catalog_root == 5
        p2.close()

    def test_no_valid_meta_raises(self, tmp_path):
        path = str(tmp_path / "d.db")
        with open(path, "wb") as fh:
            fh.write(b"\x00" * (2 * META_SIZE))
        with pytest.raises(CorruptionError):
            Pager(path)

    def test_large_freelist_chain(self, tmp_path):
        """Free more ids than fit on one freelist page."""
        path = str(tmp_path / "d.db")
        p = Pager(path)
        pids = [p.allocate() for _ in range(1200)]
        for pid in pids:
            p.write_page(pid, b"y")
            p.free(pid)
        p.commit_checkpoint(-1, 1)
        p.close()
        p2 = Pager(path)
        assert set(pids) <= set(p2.free_list)
        p2.close()
