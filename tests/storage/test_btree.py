"""Tests for the copy-on-write B-tree."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.btree import BTree, MAX_KEY_SIZE
from repro.storage.errors import KeyTooLargeError
from repro.storage.pager import Pager


@pytest.fixture()
def tree(tmp_path):
    pager = Pager(str(tmp_path / "data.db"))
    t = BTree(pager)
    t.begin_epoch(1)
    yield t
    pager.close()


class TestBasicOps:
    def test_get_missing(self, tree):
        assert tree.get(b"nope") is None
        assert b"nope" not in tree

    def test_put_get(self, tree):
        tree.put(b"key", b"value")
        assert tree.get(b"key") == b"value"
        assert b"key" in tree

    def test_overwrite(self, tree):
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        assert tree.get(b"k") == b"v2"
        assert len(tree) == 1

    def test_delete(self, tree):
        tree.put(b"k", b"v")
        assert tree.delete(b"k") is True
        assert tree.get(b"k") is None
        assert tree.delete(b"k") is False

    def test_delete_from_empty(self, tree):
        assert tree.delete(b"x") is False

    def test_empty_value(self, tree):
        tree.put(b"k", b"")
        assert tree.get(b"k") == b""

    def test_type_checks(self, tree):
        with pytest.raises(TypeError):
            tree.put("str", b"v")
        with pytest.raises(TypeError):
            tree.put(b"k", "str")

    def test_key_too_large(self, tree):
        with pytest.raises(KeyTooLargeError):
            tree.put(b"x" * (MAX_KEY_SIZE + 1), b"v")

    def test_large_value_overflow_chain(self, tree):
        value = bytes(range(256)) * 100  # 25.6 KB, spans several pages
        tree.put(b"big", value)
        assert tree.get(b"big") == value

    def test_overwrite_large_with_small(self, tree):
        tree.put(b"k", b"x" * 20000)
        tree.put(b"k", b"small")
        assert tree.get(b"k") == b"small"


class TestManyKeys:
    def test_thousand_sequential(self, tree):
        for i in range(1000):
            tree.put(f"{i:06d}".encode(), f"value-{i}".encode())
        for i in range(0, 1000, 97):
            assert tree.get(f"{i:06d}".encode()) == f"value-{i}".encode()
        assert len(tree) == 1000

    def test_thousand_random_order(self, tree):
        keys = [f"{i:06d}".encode() for i in range(1000)]
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.put(key, key[::-1])
        assert len(tree) == 1000
        got = [k for k, _ in tree.items()]
        assert got == sorted(keys)

    def test_iteration_sorted(self, tree):
        rng = random.Random(1)
        inserted = set()
        for _ in range(500):
            key = str(rng.randrange(10_000)).encode()
            tree.put(key, b"v")
            inserted.add(key)
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(inserted)

    def test_delete_half(self, tree):
        for i in range(600):
            tree.put(f"{i:05d}".encode(), str(i).encode())
        for i in range(0, 600, 2):
            assert tree.delete(f"{i:05d}".encode())
        assert len(tree) == 300
        for i in range(600):
            expected = None if i % 2 == 0 else str(i).encode()
            assert tree.get(f"{i:05d}".encode()) == expected

    def test_delete_all_returns_empty_root(self, tree):
        for i in range(300):
            tree.put(f"{i:05d}".encode(), b"v")
        for i in range(300):
            assert tree.delete(f"{i:05d}".encode())
        assert tree.root == -1
        assert list(tree.items()) == []
        # Tree is reusable after total deletion.
        tree.put(b"again", b"v")
        assert tree.get(b"again") == b"v"


class TestRangeScans:
    def _fill(self, tree):
        for i in range(100):
            tree.put(f"k{i:04d}".encode(), str(i).encode())

    def test_start_bound(self, tree):
        self._fill(tree)
        keys = [k for k, _ in tree.items(start=b"k0050")]
        assert keys[0] == b"k0050"
        assert len(keys) == 50

    def test_end_bound_exclusive(self, tree):
        self._fill(tree)
        keys = [k for k, _ in tree.items(end=b"k0010")]
        assert keys == [f"k{i:04d}".encode() for i in range(10)]

    def test_start_end_window(self, tree):
        self._fill(tree)
        keys = [k for k, _ in tree.items(start=b"k0020", end=b"k0030")]
        assert keys == [f"k{i:04d}".encode() for i in range(20, 30)]

    def test_prefix_scan(self, tree):
        tree.put(b"a:1", b"x")
        tree.put(b"a:2", b"y")
        tree.put(b"b:1", b"z")
        keys = [k for k, _ in tree.items(prefix=b"a:")]
        assert keys == [b"a:1", b"a:2"]

    def test_prefix_with_0xff(self, tree):
        tree.put(b"a\xff1", b"x")
        tree.put(b"a\xff2", b"y")
        tree.put(b"b", b"z")
        keys = [k for k, _ in tree.items(prefix=b"a\xff")]
        assert keys == [b"a\xff1", b"a\xff2"]


class TestPersistence:
    def test_reopen_from_root(self, tmp_path):
        path = str(tmp_path / "d.db")
        pager = Pager(path)
        tree = BTree(pager)
        tree.begin_epoch(1)
        for i in range(200):
            tree.put(f"{i:04d}".encode(), str(i * i).encode())
        pager.commit_checkpoint(catalog_root=tree.root, wal_seq=0)
        root = tree.root
        pager.close()

        pager2 = Pager(path)
        tree2 = BTree(pager2, root=pager2.meta.catalog_root)
        tree2.begin_epoch(pager2.meta.checkpoint_id + 1)
        assert pager2.meta.catalog_root == root
        for i in range(0, 200, 13):
            assert tree2.get(f"{i:04d}".encode()) == str(i * i).encode()
        pager2.close()

    def test_cow_preserves_old_checkpoint_until_commit(self, tmp_path):
        """Updates in a new epoch must not disturb the pages reachable
        from the durable root (crash = reopen sees old state)."""
        path = str(tmp_path / "d.db")
        pager = Pager(path)
        tree = BTree(pager)
        tree.begin_epoch(1)
        for i in range(100):
            tree.put(f"{i:04d}".encode(), b"old")
        pager.commit_checkpoint(catalog_root=tree.root, wal_seq=0)
        # New epoch: overwrite everything but do NOT checkpoint.
        tree.begin_epoch(2)
        for i in range(100):
            tree.put(f"{i:04d}".encode(), b"new")
        pager.flush_pages(set(pager.staged))  # even flushing data pages is safe
        pager.close()

        pager2 = Pager(path)
        tree2 = BTree(pager2, root=pager2.meta.catalog_root)
        for i in range(0, 100, 7):
            assert tree2.get(f"{i:04d}".encode()) == b"old"
        pager2.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(0, 120),
            st.binary(min_size=0, max_size=400),
        ),
        max_size=250,
    )
)
def test_property_btree_matches_dict(tmp_path_factory, ops):
    """Random op sequences: the tree must behave exactly like a dict."""
    tmp = tmp_path_factory.mktemp("btree-prop")
    pager = Pager(str(tmp / "d.db"))
    tree = BTree(pager)
    tree.begin_epoch(1)
    model = {}
    for op, key_num, value in ops:
        key = f"{key_num:05d}".encode()
        if op == "put":
            tree.put(key, value)
            model[key] = value
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert dict(tree.items()) == model
    assert [k for k, _ in tree.items()] == sorted(model)
    pager.close()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.binary(min_size=1, max_size=40),
            st.binary(min_size=0, max_size=600),
        ),
        max_size=150,
    )
)
def test_property_btree_binary_keys(tmp_path_factory, ops):
    """Raw binary keys (embedded NULs, 0xFF runs, non-UTF8): the tree
    must still behave exactly like a dict with bytewise ordering."""
    tmp = tmp_path_factory.mktemp("btree-bin")
    pager = Pager(str(tmp / "d.db"))
    tree = BTree(pager)
    tree.begin_epoch(1)
    model = {}
    for op, key, value in ops:
        if op == "put":
            tree.put(key, value)
            model[key] = value
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert dict(tree.items()) == model
    assert [k for k, _ in tree.items()] == sorted(model)
    pager.close()
