"""Crash-recovery tests: killed processes, torn logs, replay idempotence."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.storage import KVStore, WriteAheadLog
from repro.storage.recovery import replay_segment
from repro.storage.wal import REC_BEGIN, REC_COMMIT, REC_DELETE, REC_PUT, WalRecord


def _crash_process(code: str) -> None:
    """Run python code in a child that os._exit(1)s at the end."""
    result = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 1, result.stderr


class TestReplaySegment:
    def _write(self, tmp_path, records):
        wal = WriteAheadLog(str(tmp_path), 0, sync_policy="none")
        for rec in records:
            wal.append(rec)
        wal.close()
        return wal.segment_path(0)

    def _replay(self, path):
        applied = []
        report = replay_segment(
            path,
            apply_put=lambda t, k, v: applied.append(("put", t, k, v)),
            apply_delete=lambda t, k: applied.append(("del", t, k)),
        )
        return report, applied

    def test_committed_txn_replayed(self, tmp_path):
        path = self._write(tmp_path, [
            WalRecord(REC_BEGIN, 1),
            WalRecord(REC_PUT, 1, "t", b"a", b"1"),
            WalRecord(REC_DELETE, 1, "t", b"b"),
            WalRecord(REC_COMMIT, 1),
        ])
        report, applied = self._replay(path)
        assert report.transactions_replayed == 1
        assert applied == [("put", "t", b"a", b"1"), ("del", "t", b"b")]

    def test_uncommitted_txn_skipped(self, tmp_path):
        path = self._write(tmp_path, [
            WalRecord(REC_BEGIN, 1),
            WalRecord(REC_PUT, 1, "t", b"a", b"1"),
            # no COMMIT — crashed mid-transaction
        ])
        report, applied = self._replay(path)
        assert report.transactions_replayed == 0
        assert report.incomplete_transactions == 1
        assert applied == []

    def test_interleaved_transactions(self, tmp_path):
        path = self._write(tmp_path, [
            WalRecord(REC_BEGIN, 1),
            WalRecord(REC_BEGIN, 2),
            WalRecord(REC_PUT, 1, "t", b"a", b"one"),
            WalRecord(REC_PUT, 2, "t", b"a", b"two"),
            WalRecord(REC_COMMIT, 2),
            WalRecord(REC_COMMIT, 1),
        ])
        _report, applied = self._replay(path)
        # Commit order: txn 2 first, then txn 1 — txn 1's value wins.
        assert applied == [("put", "t", b"a", b"two"), ("put", "t", b"a", b"one")]

    def test_orphan_ops_without_begin_dropped(self, tmp_path):
        path = self._write(tmp_path, [
            WalRecord(REC_PUT, 5, "t", b"x", b"y"),
            WalRecord(REC_COMMIT, 5),
        ])
        report, applied = self._replay(path)
        assert applied == []
        assert report.transactions_replayed == 0

    def test_max_txid_tracked(self, tmp_path):
        path = self._write(tmp_path, [
            WalRecord(REC_BEGIN, 17),
            WalRecord(REC_COMMIT, 17),
        ])
        report, _ = self._replay(path)
        assert report.max_txid == 17


class TestCrashedProcessRecovery:
    def test_commits_after_checkpoint_survive_crash(self, tmp_path):
        path = str(tmp_path / "crash1")
        _crash_process(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r}, sync_policy="commit", auto_checkpoint_ops=0)
            for i in range(40):
                s.put("t", f"pre{{i:03d}}".encode(), b"x")
            s.checkpoint()
            for i in range(30):
                s.put("t", f"post{{i:03d}}".encode(), b"y")
            os._exit(1)
        """)
        with KVStore(path) as s:
            assert s.count("t") == 70
            assert s.last_recovery.transactions_replayed == 30
            assert s.get("t", b"post029") == b"y"

    def test_open_transaction_lost_on_crash(self, tmp_path):
        path = str(tmp_path / "crash2")
        _crash_process(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r}, sync_policy="commit", auto_checkpoint_ops=0)
            s.put("t", b"committed", b"1")
            txn = s.begin()
            txn.put("t", b"uncommitted", b"2")
            # crash before commit
            os._exit(1)
        """)
        with KVStore(path) as s:
            assert s.get("t", b"committed") == b"1"
            assert s.get("t", b"uncommitted") is None

    def test_double_crash_recovery_idempotent(self, tmp_path):
        """Crash, recover, crash again immediately: state converges."""
        path = str(tmp_path / "crash3")
        _crash_process(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r}, sync_policy="commit", auto_checkpoint_ops=0)
            for i in range(20):
                s.put("t", f"k{{i:02d}}".encode(), str(i).encode())
            os._exit(1)
        """)
        # First recovery (also crashes right after opening).
        _crash_process(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r})
            assert s.count("t") == 20
            os._exit(1)
        """)
        with KVStore(path) as s:
            assert s.count("t") == 20
            assert dict(s.items("t")) == {
                f"k{i:02d}".encode(): str(i).encode() for i in range(20)
            }

    def test_crash_with_deletes_and_overwrites(self, tmp_path):
        path = str(tmp_path / "crash4")
        _crash_process(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r}, sync_policy="commit", auto_checkpoint_ops=0)
            for i in range(10):
                s.put("t", f"k{{i}}".encode(), b"v1")
            s.checkpoint()
            s.delete("t", b"k0")
            s.put("t", b"k1", b"v2")
            with s.begin() as txn:
                txn.delete("t", b"k2")
                txn.put("t", b"k3", b"v3")
            os._exit(1)
        """)
        with KVStore(path) as s:
            assert s.get("t", b"k0") is None
            assert s.get("t", b"k1") == b"v2"
            assert s.get("t", b"k2") is None
            assert s.get("t", b"k3") == b"v3"
            assert s.get("t", b"k4") == b"v1"

    def test_recovery_checkpoint_truncates_wal(self, tmp_path):
        """After recovery the store checkpoints, so a reopen replays nothing."""
        path = str(tmp_path / "crash5")
        _crash_process(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r}, sync_policy="commit", auto_checkpoint_ops=0)
            s.put("t", b"k", b"v")
            os._exit(1)
        """)
        with KVStore(path) as s:
            assert s.last_recovery.transactions_replayed == 1
        with KVStore(path) as s:
            assert s.last_recovery.transactions_replayed == 0
            assert s.get("t", b"k") == b"v"


class TestTornTailRepairOnOpen:
    def _wal_path(self, store_dir):
        wals = sorted(n for n in os.listdir(store_dir) if n.startswith("wal."))
        assert len(wals) == 1, wals
        return os.path.join(store_dir, wals[0])

    def test_commits_after_torn_only_txn_survive_next_crash(self, tmp_path):
        """Torn tail with zero replayable transactions must be repaired.

        Regression: recovery used to repair (via checkpoint) only when
        it had replayed operations, so a segment whose *first*
        transaction was torn reopened append-mode at full size.  New
        acknowledged, fsynced commits then landed after the torn frame,
        and the next recovery — which stops at the first damaged
        record — silently lost all of them.
        """
        path = str(tmp_path / "torn")
        with KVStore(path, sync_policy="commit", auto_checkpoint_ops=0) as s:
            s.put("t", b"base", b"0")
        # The close checkpointed, so the current segment is empty.  Tear
        # its very first frame: a few bytes shorter than a frame header.
        with open(self._wal_path(path), "ab") as fh:
            fh.write(b"\x9c\xff\xff")
        s = KVStore(path, sync_policy="commit", auto_checkpoint_ops=0)
        assert s.last_recovery.torn_tail
        assert s.last_recovery.operations_applied == 0
        s.put("t", b"after", b"1")  # acknowledged and fsynced
        s.close(checkpoint=False)  # crash stand-in: no rotation
        with KVStore(path) as s2:
            assert s2.last_recovery.transactions_replayed == 1
            assert s2.get("t", b"after") == b"1"
            assert s2.get("t", b"base") == b"0"

    def test_torn_tail_truncated_to_last_intact_record(self, tmp_path):
        """Damage after an intact-but-uncommitted prefix is cut precisely."""
        path = str(tmp_path / "torn2")
        with KVStore(path, sync_policy="commit", auto_checkpoint_ops=0) as s:
            s.put("t", b"base", b"0")
        wal_path = self._wal_path(path)
        # Hand-craft a segment: an intact BEGIN (no COMMIT), then garbage.
        wal = WriteAheadLog(os.path.dirname(wal_path), int(wal_path[-8:]),
                            sync_policy="none")
        wal.append(WalRecord(REC_BEGIN, 7))
        intact = wal.size
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(b"\x01\x02")
        s = KVStore(path, sync_policy="commit", auto_checkpoint_ops=0)
        assert s.last_recovery.torn_tail
        assert s.last_recovery.valid_bytes == intact
        assert os.path.getsize(wal_path) == intact
        # Replay after the repair sees only clean frames again.
        s.put("t", b"k", b"v")
        s.close(checkpoint=False)
        with KVStore(path) as s2:
            assert s2.get("t", b"k") == b"v"
