"""Tests for KVStore.drop_tree."""

import pytest

from repro.storage import KVStore


class TestDropTree:
    def test_drop_and_count(self, tmp_path):
        with KVStore(str(tmp_path / "s")) as store:
            for i in range(700):
                store.put("t", f"{i:05d}".encode(), b"v")
            store.put("keep", b"k", b"v")
            assert store.drop_tree("t") == 700
            assert store.count("t") == 0
            assert store.get("keep", b"k") == b"v"

    def test_drop_empty_tree(self, tmp_path):
        with KVStore(str(tmp_path / "s")) as store:
            assert store.drop_tree("never-written") == 0

    def test_tree_reusable_after_drop(self, tmp_path):
        with KVStore(str(tmp_path / "s")) as store:
            store.put("t", b"a", b"1")
            store.drop_tree("t")
            store.put("t", b"b", b"2")
            assert store.items("t") == [(b"b", b"2")]

    def test_drop_survives_reopen(self, tmp_path):
        path = str(tmp_path / "s")
        with KVStore(path) as store:
            for i in range(100):
                store.put("t", str(i).encode(), b"v")
            store.drop_tree("t")
        with KVStore(path) as store:
            assert store.count("t") == 0

    def test_drop_is_logged(self, tmp_path):
        """A crash right after drop_tree (no checkpoint) must still show
        the drop after recovery — deletions go through the WAL."""
        import os
        import subprocess
        import sys
        import textwrap

        path = str(tmp_path / "s")
        code = textwrap.dedent(f"""
            import os
            from repro.storage import KVStore
            s = KVStore({path!r}, sync_policy="commit", auto_checkpoint_ops=0)
            for i in range(50):
                s.put("t", str(i).encode(), b"v")
            s.checkpoint()
            s.drop_tree("t")
            os._exit(1)
        """)
        result = subprocess.run([sys.executable, "-c", code], capture_output=True)
        assert result.returncode == 1, result.stderr
        with KVStore(path) as store:
            assert store.count("t") == 0
