"""Crash-point fuzzing: WAL truncated at arbitrary byte offsets.

The consistency contract (section 4.1.3): after a crash, recovery yields
a state where every transaction is either fully applied or fully absent
— regardless of where in the log the crash landed.  These tests write
multi-key transactions, truncate the WAL at arbitrary points (simulating
a crash mid-write), and verify atomicity on reopen.
"""

import os
import shutil

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage import KVStore


def _build_store(path, num_txns=12, keys_per_txn=3):
    """Store with num_txns transactions, each writing keys_per_txn keys,
    WAL fully on disk, data file NOT checkpointed."""
    store = KVStore(path, sync_policy="none", auto_checkpoint_ops=0)
    for txn_id in range(num_txns):
        with store.begin() as txn:
            for j in range(keys_per_txn):
                txn.put("t", f"txn{txn_id:03d}-{j}".encode(),
                        f"value-{txn_id}".encode())
    store.close(checkpoint=False)
    return os.path.join(path, "wal.00000000")


def _check_atomicity(path, num_txns=12, keys_per_txn=3):
    with KVStore(path) as store:
        present = {k for k, _v in store.items("t")}
    for txn_id in range(num_txns):
        keys = {f"txn{txn_id:03d}-{j}".encode() for j in range(keys_per_txn)}
        overlap = keys & present
        assert overlap == set() or overlap == keys, (
            f"transaction {txn_id} partially applied: {overlap}"
        )
    return present


class TestWalTruncation:
    def test_full_wal_recovers_everything(self, tmp_path):
        path = str(tmp_path / "full")
        _build_store(path)
        present = _check_atomicity(path)
        assert len(present) == 36

    def test_empty_wal_recovers_nothing(self, tmp_path):
        path = str(tmp_path / "empty")
        wal = _build_store(path)
        with open(wal, "r+b") as fh:
            fh.truncate(0)
        present = _check_atomicity(path)
        assert present == set()

    @pytest.mark.parametrize("fraction", [0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    def test_truncation_points(self, tmp_path, fraction):
        path = str(tmp_path / f"frac{int(fraction * 100)}")
        wal = _build_store(path)
        size = os.path.getsize(wal)
        with open(wal, "r+b") as fh:
            fh.truncate(int(size * fraction))
        _check_atomicity(path)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.floats(min_value=0.0, max_value=1.0))
    def test_property_any_truncation_is_atomic(self, tmp_path_factory, cut):
        tmp = tmp_path_factory.mktemp("walfuzz")
        path = str(tmp / "store")
        wal = _build_store(path, num_txns=8, keys_per_txn=2)
        size = os.path.getsize(wal)
        with open(wal, "r+b") as fh:
            fh.truncate(int(size * cut))
        _check_atomicity(path, num_txns=8, keys_per_txn=2)

    def test_truncation_prefix_monotone(self, tmp_path):
        """A longer WAL prefix recovers a superset of transactions."""
        base = str(tmp_path / "base")
        wal = _build_store(base)
        size = os.path.getsize(wal)
        recovered = []
        for idx, fraction in enumerate((0.3, 0.6, 1.0)):
            path = str(tmp_path / f"copy{idx}")
            shutil.copytree(base, path)
            with open(os.path.join(path, "wal.00000000"), "r+b") as fh:
                fh.truncate(int(size * fraction))
            recovered.append(_check_atomicity(path))
        assert recovered[0] <= recovered[1] <= recovered[2]


class TestGarbageInjection:
    def test_random_garbage_wal_is_survivable(self, tmp_path):
        """A WAL full of random bytes must not crash recovery."""
        import numpy as np

        path = str(tmp_path / "garbage")
        os.makedirs(path)
        rng = np.random.default_rng(0)
        with open(os.path.join(path, "wal.00000000"), "wb") as fh:
            fh.write(rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        with KVStore(path) as store:
            assert store.items("t") == []

    def test_mid_wal_corruption_keeps_prefix(self, tmp_path):
        path = str(tmp_path / "midcorrupt")
        wal = _build_store(path, num_txns=10)
        size = os.path.getsize(wal)
        with open(wal, "r+b") as fh:
            fh.seek(size // 2)
            fh.write(b"\xde\xad\xbe\xef" * 8)
        present = _check_atomicity(path, num_txns=10)
        # The untouched first half must have survived.
        assert any(k.startswith(b"txn000") for k in present)
