"""Tests for the KV store facade: transactions, checkpoints, reopen."""

import random
import threading

import pytest

from repro.storage import KVStore, StoreClosedError, TransactionError


@pytest.fixture()
def store(tmp_path):
    s = KVStore(str(tmp_path / "store"))
    yield s
    s.close()


class TestBasicOps:
    def test_put_get(self, store):
        store.put("t", b"k", b"v")
        assert store.get("t", b"k") == b"v"

    def test_get_missing(self, store):
        assert store.get("t", b"missing") is None

    def test_delete(self, store):
        store.put("t", b"k", b"v")
        store.delete("t", b"k")
        assert store.get("t", b"k") is None

    def test_multiple_trees_isolated(self, store):
        store.put("a", b"k", b"va")
        store.put("b", b"k", b"vb")
        assert store.get("a", b"k") == b"va"
        assert store.get("b", b"k") == b"vb"
        assert sorted(store.tree_names()) == ["a", "b"]

    def test_items_ordered(self, store):
        for i in (3, 1, 2):
            store.put("t", f"{i}".encode(), b"v")
        assert [k for k, _ in store.items("t")] == [b"1", b"2", b"3"]

    def test_items_prefix(self, store):
        store.put("t", b"x:1", b"a")
        store.put("t", b"x:2", b"b")
        store.put("t", b"y:1", b"c")
        assert len(store.items("t", prefix=b"x:")) == 2

    def test_count(self, store):
        for i in range(10):
            store.put("t", str(i).encode(), b"v")
        assert store.count("t") == 10

    def test_reserved_tree_name_rejected(self, store):
        from repro.storage.errors import StorageError

        with pytest.raises(StorageError):
            store.put("__catalog__", b"k", b"v")

    def test_closed_store_rejects_ops(self, tmp_path):
        s = KVStore(str(tmp_path / "s2"))
        s.close()
        with pytest.raises(StoreClosedError):
            s.get("t", b"k")
        s.close()  # double close is a no-op


class TestTransactions:
    def test_commit_applies_all(self, store):
        with store.begin() as txn:
            txn.put("t", b"a", b"1")
            txn.put("u", b"b", b"2")
        assert store.get("t", b"a") == b"1"
        assert store.get("u", b"b") == b"2"

    def test_abort_applies_nothing(self, store):
        txn = store.begin()
        txn.put("t", b"a", b"1")
        txn.abort()
        assert store.get("t", b"a") is None

    def test_exception_in_context_aborts(self, store):
        with pytest.raises(RuntimeError):
            with store.begin() as txn:
                txn.put("t", b"a", b"1")
                raise RuntimeError("boom")
        assert store.get("t", b"a") is None

    def test_read_your_writes(self, store):
        store.put("t", b"k", b"old")
        with store.begin() as txn:
            assert txn.get("t", b"k") == b"old"
            txn.put("t", b"k", b"new")
            assert txn.get("t", b"k") == b"new"
            txn.delete("t", b"k")
            assert txn.get("t", b"k") is None
        assert store.get("t", b"k") is None

    def test_commit_twice_rejected(self, store):
        txn = store.begin()
        txn.put("t", b"k", b"v")
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_use_after_abort_rejected(self, store):
        txn = store.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.put("t", b"k", b"v")

    def test_empty_commit_ok(self, store):
        with store.begin():
            pass

    def test_txn_delete_then_put(self, store):
        with store.begin() as txn:
            txn.delete("t", b"k")
            txn.put("t", b"k", b"resurrected")
        assert store.get("t", b"k") == b"resurrected"

    def test_txids_monotonic(self, store):
        t1 = store.begin()
        t2 = store.begin()
        assert t2.txid > t1.txid
        t1.abort()
        t2.abort()


class TestPersistence:
    def test_reopen_after_close(self, tmp_path):
        path = str(tmp_path / "s")
        with KVStore(path) as s:
            for i in range(100):
                s.put("t", f"{i:03d}".encode(), str(i).encode())
        with KVStore(path) as s:
            assert s.count("t") == 100
            assert s.get("t", b"050") == b"50"

    def test_large_values_survive(self, tmp_path):
        path = str(tmp_path / "s")
        blob = bytes(range(256)) * 200
        with KVStore(path) as s:
            s.put("t", b"blob", blob)
        with KVStore(path) as s:
            assert s.get("t", b"blob") == blob

    def test_auto_checkpoint_triggers(self, tmp_path):
        s = KVStore(str(tmp_path / "s"), auto_checkpoint_ops=10)
        for i in range(25):
            s.put("t", str(i).encode(), b"v")
        assert s.checkpoint_id >= 2
        s.close()

    def test_random_workload_vs_model(self, tmp_path):
        path = str(tmp_path / "s")
        rng = random.Random(99)
        model = {}
        s = KVStore(path, auto_checkpoint_ops=100)
        for step in range(1500):
            key = str(rng.randrange(300)).encode()
            if rng.random() < 0.3 and model:
                victim = rng.choice(sorted(model))
                s.delete("t", victim)
                model.pop(victim)
            else:
                value = bytes([rng.randrange(256)]) * rng.randrange(0, 1500)
                s.put("t", key, value)
                model[key] = value
            if step % 500 == 250:
                s.close()
                s = KVStore(path, auto_checkpoint_ops=100)
        s.close()
        with KVStore(path) as s:
            assert dict(s.items("t")) == model


class TestConcurrency:
    def test_parallel_writers(self, tmp_path):
        s = KVStore(str(tmp_path / "s"), auto_checkpoint_ops=0)
        errors = []

        def writer(worker):
            try:
                for i in range(50):
                    with s.begin() as txn:
                        txn.put("t", f"w{worker}-{i:03d}".encode(), b"v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert s.count("t") == 200
        s.close()

    def test_readers_during_writes(self, tmp_path):
        s = KVStore(str(tmp_path / "s"))
        for i in range(100):
            s.put("t", f"{i:03d}".encode(), b"v")
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    items = s.items("t")
                    assert len(items) >= 100
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for i in range(100, 200):
            s.put("t", f"{i:03d}".encode(), b"v")
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        s.close()


class TestFailedStoreClose:
    def test_failed_store_close_never_syncs_wal(self, tmp_path):
        import errno

        from repro.faults import Fault, FaultKind, FaultyFilesystem
        from repro.storage import StorageError

        ffs = FaultyFilesystem()
        s = KVStore(
            str(tmp_path / "s"), sync_policy="none",
            auto_checkpoint_ops=0, fs=ffs,
        )
        s.put("t", b"k", b"v")
        # ENOSPC on the next I/O operation: the checkpoint fails on its
        # first page write, latching the store into the failed state
        # without breaking the WAL itself.
        ffs.plan.add(Fault(FaultKind.ERROR, ffs.op_count, errno=errno.ENOSPC))
        with pytest.raises(StorageError):
            s.checkpoint()
        assert s.failed
        synced_before = len(ffs.fsync_log)
        s.close()
        assert len(ffs.fsync_log) == synced_before  # teardown made nothing durable
