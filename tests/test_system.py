"""Tests for the FerretSystem facade (the assembled toolkit)."""

import numpy as np
import pytest

from repro.core import FeatureMeta, ObjectSignature, SearchMethod, SketchParams
from repro.core.plugin import DataTypePlugin
from repro.system import FerretSystem


def _plugin():
    meta = FeatureMeta(6, np.zeros(6), np.ones(6))

    def extract(path):
        return ObjectSignature(np.load(path), [1.0, 1.0])

    return DataTypePlugin("sys-test", meta, seg_extract=extract)


def _signature(rng, k=2):
    return ObjectSignature(rng.random((k, 6)), np.ones(k))


class TestLifecycle:
    def test_open_insert_search_close(self, tmp_path):
        rng = np.random.default_rng(0)
        with FerretSystem(_plugin(), str(tmp_path / "sys")) as system:
            base = _signature(rng)
            oid = system.insert(base, {"tag": "seed"})
            system.insert(
                ObjectSignature(base.features + 0.01, base.weights, normalize=False)
            )
            for _ in range(20):
                system.insert(_signature(rng))
            hits = system.search(oid, top_k=3)
            assert hits[0].object_id == 1  # the planted near-duplicate
            assert len(system) == 22

    def test_reopen_restores_everything(self, tmp_path):
        path = str(tmp_path / "sys")
        rng = np.random.default_rng(1)
        with FerretSystem(_plugin(), path) as system:
            oid = system.insert(_signature(rng), {"color": "red", "name": "one"})
            for _ in range(10):
                system.insert(_signature(rng))
            before = [r.object_id for r in system.search(oid, top_k=5)]

        with FerretSystem(_plugin(), path) as system:
            assert system.loaded == 11
            after = [r.object_id for r in system.search(oid, top_k=5)]
            assert before == after
            assert system.attribute_search("color:red") == [oid]
            assert system.attributes_of(oid) == {"color": "red", "name": "one"}

    def test_sketch_params_pinned(self, tmp_path):
        path = str(tmp_path / "sys")
        plugin = _plugin()
        params = SketchParams(128, plugin.meta, k_xor=2, seed=7)
        with FerretSystem(plugin, path, sketch_params=params):
            pass
        # Reopening without params reuses the stored triple.
        with FerretSystem(plugin, path) as system:
            assert system.engine.sketcher.n_bits == 128
            assert system.engine.sketcher.params.k_xor == 2
            assert system.engine.sketcher.params.seed == 7
        # Conflicting params are rejected.
        with pytest.raises(ValueError):
            FerretSystem(plugin, path,
                         sketch_params=SketchParams(64, plugin.meta, seed=9))


class TestSearch:
    def test_attr_restricted_search(self, tmp_path):
        rng = np.random.default_rng(2)
        with FerretSystem(_plugin(), str(tmp_path / "sys")) as system:
            ids = {}
            for group in ("a", "b"):
                for _ in range(8):
                    oid = system.insert(_signature(rng), {"group": group})
                    ids.setdefault(group, []).append(oid)
            hits = system.search(ids["a"][0], top_k=20, attr_query="group:a")
            assert {h.object_id for h in hits} <= set(ids["a"])

    def test_fresh_signature_as_seed(self, tmp_path):
        rng = np.random.default_rng(3)
        with FerretSystem(_plugin(), str(tmp_path / "sys")) as system:
            for _ in range(10):
                system.insert(_signature(rng))
            probe = _signature(rng)
            hits = system.search(probe, top_k=5)
            assert len(hits) == 5

    def test_all_methods(self, tmp_path):
        rng = np.random.default_rng(4)
        with FerretSystem(_plugin(), str(tmp_path / "sys")) as system:
            for _ in range(15):
                system.insert(_signature(rng))
            for method in SearchMethod:
                if method is SearchMethod.LSH:
                    continue  # system engines run without an LSH index
                assert system.search(0, top_k=3, method=method)


class TestAcquisition:
    def test_watch_directory_indexes_attributes(self, tmp_path):
        rng = np.random.default_rng(5)
        incoming = tmp_path / "incoming"
        incoming.mkdir()
        for i in range(3):
            np.save(str(incoming / f"item{i}.npy"), rng.random((2, 6)))
        with FerretSystem(_plugin(), str(tmp_path / "sys")) as system:
            scanner = system.watch_directory(
                str(incoming), extensions=(".npy",),
                attribute_fn=lambda p: {"source": "scan"},
            )
            scanner.scan_once()
            scanner.scan_once()
            assert len(system) == 3
            assert len(system.attribute_search("source:scan")) == 3

    def test_crash_recovery_of_system(self, tmp_path):
        import os
        import subprocess
        import sys
        import textwrap

        path = str(tmp_path / "sys")
        code = textwrap.dedent(f"""
            import os
            import numpy as np
            from repro.core import FeatureMeta, ObjectSignature
            from repro.core.plugin import DataTypePlugin
            from repro.system import FerretSystem

            meta = FeatureMeta(6, np.zeros(6), np.ones(6))
            system = FerretSystem(
                DataTypePlugin("sys-test", meta), {path!r},
                sync_policy="commit", auto_checkpoint_ops=0,
            )
            rng = np.random.default_rng(0)
            for i in range(12):
                system.insert(
                    ObjectSignature(rng.random((2, 6)), [1, 1]),
                    {{"idx": str(i)}},
                )
            os._exit(1)  # crash without close/checkpoint
        """)
        result = subprocess.run([sys.executable, "-c", code], capture_output=True)
        assert result.returncode == 1, result.stderr
        with FerretSystem(_plugin(), path) as system:
            assert len(system) == 12
            assert system.attribute_search("idx:7")
