"""Integration: the full toolkit assembled the way a system builder would.

Covers the paper's construction story (section 5): plug in a data type,
ingest through data acquisition, persist through metadata management,
search through the command protocol, bootstrap with attribute search.
"""

import os

import numpy as np
import pytest

from repro.acquisition import DirectoryScanner
from repro.attrsearch import PersistentIndex
from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams, meta_from_dataset
from repro.datatypes import build_demo_engine
from repro.datatypes.image import (
    make_image_plugin,
    random_scene,
    render_scene,
)
from repro.metadata import MetadataManager
from repro.server import CommandProcessor, FerretClient, serve_background
from repro.evaltool import evaluate_engine


class TestBuildDemoEngine:
    @pytest.mark.parametrize("datatype", ["genomic", "shape"])
    def test_engines_queryable(self, datatype):
        engine, _bench = build_demo_engine(datatype, size=40)
        assert len(engine) > 0
        first = next(iter(engine.objects))
        results = engine.query_by_id(first, top_k=3)
        assert results[0].object_id == first

    def test_unknown_datatype(self):
        with pytest.raises(KeyError):
            build_demo_engine("holograms")


class TestFullImagePipeline:
    def test_acquisition_to_search(self, tmp_path):
        """Render scenes to files, scan them in, persist, search, restart."""
        data_dir = tmp_path / "incoming"
        data_dir.mkdir()
        rng = np.random.default_rng(0)
        scenes = [random_scene(rng) for _ in range(8)]
        for i, scene in enumerate(scenes):
            np.save(str(data_dir / f"scene{i}.npy"), render_scene(scene, 40, 40, rng))

        plugin = make_image_plugin()
        with MetadataManager(str(tmp_path / "meta")) as manager:
            engine = SimilaritySearchEngine(
                plugin, SketchParams(96, plugin.meta, seed=1), metadata=manager
            )
            scanner = DirectoryScanner(
                engine, str(data_dir), extensions=(".npy",),
                attribute_fn=lambda p: {"file": os.path.basename(p)},
            )
            scanner.scan_once()
            report = scanner.scan_once()
            assert report.num_imported == 8
            results = engine.query_by_id(0, top_k=3)
            assert results[0].object_id == 0

        # Restart: reload from metadata, verify same search works.
        with MetadataManager(str(tmp_path / "meta")) as manager:
            engine2 = SimilaritySearchEngine(
                plugin, SketchParams(96, plugin.meta, seed=1), metadata=manager
            )
            assert engine2.load() == 8
            results = engine2.query_by_id(0, top_k=3)
            assert results[0].object_id == 0

    def test_scanner_resumes_from_file_mapping(self, tmp_path):
        data_dir = tmp_path / "incoming"
        data_dir.mkdir()
        rng = np.random.default_rng(1)
        np.save(str(data_dir / "a.npy"), render_scene(random_scene(rng), 32, 32, rng))
        plugin = make_image_plugin()

        with MetadataManager(str(tmp_path / "meta")) as manager:
            engine = SimilaritySearchEngine(
                plugin, SketchParams(64, plugin.meta, seed=1), metadata=manager
            )
            scanner = DirectoryScanner(engine, str(data_dir))
            scanner.scan_once()
            scanner.scan_once()
            assert len(engine) == 1

        with MetadataManager(str(tmp_path / "meta")) as manager:
            engine2 = SimilaritySearchEngine(
                plugin, SketchParams(64, plugin.meta, seed=1), metadata=manager
            )
            engine2.load()
            scanner2 = DirectoryScanner(engine2, str(data_dir))
            scanner2.scan_once()
            report = scanner2.scan_once()
            assert report.num_imported == 0  # mapping persisted: no re-import
            assert len(engine2) == 1


class TestAttributeBootstrappedSearch:
    def test_attr_then_similarity_over_network(self, genomic_benchmark, tmp_path):
        """The paper's flow: attribute query to find seeds, then
        similarity search restricted to the attribute matches."""
        from repro.datatypes.genomic import make_genomic_plugin
        from repro.storage import KVStore

        meta = meta_from_dataset(genomic_benchmark.dataset)
        plugin = make_genomic_plugin(
            genomic_benchmark.expression.num_experiments, meta=meta
        )
        engine = SimilaritySearchEngine(plugin, SketchParams(256, meta, seed=0))
        store = KVStore(str(tmp_path / "idx"))
        processor = CommandProcessor(engine, index=PersistentIndex(store))
        for obj in genomic_benchmark.dataset:
            engine.insert(obj)
            gene = genomic_benchmark.expression.gene_names[obj.object_id]
            module = genomic_benchmark.expression.module_of[obj.object_id]
            processor.register_attributes(
                obj.object_id,
                {"gene": gene, "kind": "module" if module >= 0 else "background"},
            )

        server = serve_background(processor)
        host, port = server.server_address
        try:
            with FerretClient(host, port) as client:
                seeds = client.attrquery("kind:module")
                assert seeds
                results = client.query(seeds[0], top=5, attr="kind:module")
                module_ids = set(client.attrquery("kind:module"))
                assert all(oid in module_ids for oid, _dist in results)
        finally:
            server.shutdown()
            server.server_close()
        store.close()


class TestCrossMethodConsistency:
    def test_filtering_quality_close_to_brute_force(self, genomic_benchmark):
        from repro.datatypes.genomic import make_genomic_plugin

        meta = meta_from_dataset(genomic_benchmark.dataset)
        plugin = make_genomic_plugin(
            genomic_benchmark.expression.num_experiments, distance="l1", meta=meta
        )
        engine = SimilaritySearchEngine(plugin, SketchParams(512, meta, seed=0))
        for obj in genomic_benchmark.dataset:
            engine.insert(obj)
        brute = evaluate_engine(
            engine, genomic_benchmark.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
        ).quality.average_precision
        filtered = evaluate_engine(
            engine, genomic_benchmark.suite, SearchMethod.FILTERING
        ).quality.average_precision
        assert filtered >= 0.8 * brute
