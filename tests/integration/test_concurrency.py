"""Concurrency: the engine as "a single, concurrent program" (section 3).

The server handles queries on multiple threads while data acquisition
inserts in the background; these tests hammer that pattern.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    FilterParams,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor, FerretClient, serve_background


def _engine():
    meta = FeatureMeta(6, np.zeros(6), np.ones(6))
    return SimilaritySearchEngine(
        DataTypePlugin("t", meta),
        SketchParams(128, meta, seed=0),
        FilterParams(num_query_segments=2, candidates_per_segment=16),
    )


class TestConcurrentEngine:
    def test_queries_during_inserts(self):
        engine = _engine()
        rng = np.random.default_rng(0)
        for _ in range(50):
            engine.insert(ObjectSignature(rng.random((2, 6)), [1, 1]))
        errors = []
        stop = threading.Event()

        def inserter():
            local = np.random.default_rng(1)
            try:
                for _ in range(150):
                    engine.insert(ObjectSignature(local.random((2, 6)), [1, 1]))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        def querier():
            try:
                while not stop.is_set():
                    results = engine.query_by_id(
                        3, top_k=5, method=SearchMethod.FILTERING
                    )
                    assert results and results[0].object_id == 3
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=inserter)] + [
            threading.Thread(target=querier) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(engine) == 200

    def test_concurrent_removals_and_queries(self):
        engine = _engine()
        rng = np.random.default_rng(2)
        for _ in range(200):
            engine.insert(ObjectSignature(rng.random((2, 6)), [1, 1]))
        errors = []
        stop = threading.Event()

        def remover():
            try:
                for oid in range(100, 200):
                    engine.remove(oid)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        def querier():
            try:
                while not stop.is_set():
                    engine.query_by_id(5, top_k=5, method=SearchMethod.FILTERING)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=remover)] + [
            threading.Thread(target=querier) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(engine) == 100


class TestConcurrentServer:
    def test_parallel_clients_mixed_workload(self):
        engine = _engine()
        rng = np.random.default_rng(3)
        proc = CommandProcessor(engine)
        for i in range(30):
            oid = engine.insert(ObjectSignature(rng.random((2, 6)), [1, 1]))
            proc.register_attributes(oid, {"bucket": str(i % 3)})
        server = serve_background(proc)
        host, port = server.server_address
        errors = []

        def client_worker(worker):
            try:
                with FerretClient(host, port) as client:
                    for i in range(20):
                        if i % 3 == 0:
                            client.query(worker % 30, top=5)
                        elif i % 3 == 1:
                            client.attrquery(f"bucket:{worker % 3}")
                        else:
                            assert client.count() >= 30
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client_worker, args=(w,)) for w in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        server.shutdown()
        server.server_close()
        assert not errors
