"""Integration: engine + metadata manager persistence and recovery."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.metadata import MetadataManager


def _meta():
    return FeatureMeta(6, np.zeros(6), np.ones(6))


def _engine(manager, seed=5):
    meta = _meta()
    return SimilaritySearchEngine(
        DataTypePlugin("t", meta),
        SketchParams(128, meta, seed=seed),
        metadata=manager,
    )


class TestEngineWithMetadata:
    def test_insert_writes_through(self, tmp_path):
        with MetadataManager(str(tmp_path / "m")) as manager:
            engine = _engine(manager)
            rng = np.random.default_rng(0)
            oid = engine.insert(
                ObjectSignature(rng.random((2, 6)), [1, 1]), attributes={"a": "b"}
            )
            assert manager.get_object(oid) is not None
            assert manager.get_attributes(oid) == {"a": "b"}
            assert manager.get_sketches(oid).shape == (2, 2)

    def test_reload_after_restart(self, tmp_path):
        path = str(tmp_path / "m")
        rng = np.random.default_rng(1)
        signatures = [ObjectSignature(rng.random((3, 6)), [1, 1, 1]) for _ in range(25)]

        with MetadataManager(path) as manager:
            engine = _engine(manager)
            for sig in signatures:
                engine.insert(sig)
            before = engine.query_by_id(0, top_k=5, exclude_self=True)

        with MetadataManager(path) as manager:
            engine2 = _engine(manager)  # same sketch seed
            loaded = engine2.load()
            assert loaded == 25
            after = engine2.query_by_id(0, top_k=5, exclude_self=True)

        assert [r.object_id for r in before] == [r.object_id for r in after]
        for b, a in zip(before, after):
            assert b.distance == pytest.approx(a.distance, rel=1e-5, abs=1e-6)

    def test_reload_stored_sketches_match(self, tmp_path):
        """Persisted sketches are byte-identical to freshly computed ones."""
        path = str(tmp_path / "m")
        rng = np.random.default_rng(2)
        sig = ObjectSignature(rng.random((4, 6)), [1, 1, 1, 1])
        with MetadataManager(path) as manager:
            engine = _engine(manager, seed=9)
            oid = engine.insert(sig)
            fresh = engine.sketcher.sketch_many(sig.features)
            stored = manager.get_sketches(oid)
            assert np.array_equal(fresh, stored)

    def test_load_is_idempotent(self, tmp_path):
        path = str(tmp_path / "m")
        with MetadataManager(path) as manager:
            engine = _engine(manager)
            engine.insert(ObjectSignature(np.random.rand(1, 6), [1.0]))
        with MetadataManager(path) as manager:
            engine2 = _engine(manager)
            assert engine2.load() == 1
            assert engine2.load() == 0  # already loaded
            assert len(engine2) == 1

    def test_insert_after_reload_continues_ids(self, tmp_path):
        path = str(tmp_path / "m")
        with MetadataManager(path) as manager:
            engine = _engine(manager)
            for _ in range(5):
                engine.insert(ObjectSignature(np.random.rand(1, 6), [1.0]))
        with MetadataManager(path) as manager:
            engine2 = _engine(manager)
            engine2.load()
            new_id = engine2.insert(ObjectSignature(np.random.rand(1, 6), [1.0]))
            assert new_id == 5

    def test_queries_work_after_reload_all_methods(self, tmp_path):
        path = str(tmp_path / "m")
        rng = np.random.default_rng(3)
        with MetadataManager(path) as manager:
            engine = _engine(manager)
            for _ in range(30):
                engine.insert(ObjectSignature(rng.random((2, 6)), [1, 1]))
        with MetadataManager(path) as manager:
            engine2 = _engine(manager)
            engine2.load()
            for method in SearchMethod:
                if method is SearchMethod.LSH:
                    continue  # engine built without lsh_params
                results = engine2.query_by_id(3, top_k=5, method=method)
                assert results[0].object_id == 3
