"""The CI throughput regression gate (benchmarks/check_regression.py).

The gate script lives outside the package (benchmarks/ is not on the
import path), so it is loaded by file path here.  These tests pin its
contract: pass within tolerance, fail beyond it, refuse mismatched
run shapes, and exit 2 on unusable input.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_module()


def _payload(seq=100.0, batched=120.0, fused=500.0, exact=40.0,
             cascade_speedup=3.0):
    return {
        "num_objects": 12000,
        "num_queries": 24,
        "n_bits": 256,
        "end_to_end": {
            "exact_sequential_qps": exact,
            "sequential_qps": seq,
            "batched_qps": batched,
            "cascade_speedup": cascade_speedup,
        },
        "batch_filter": {"fused_many_qps": fused},
    }


class TestCheck:
    def test_identical_runs_pass(self, gate):
        assert gate.check(_payload(), _payload(), 0.15) == []

    def test_small_drop_within_tolerance(self, gate):
        current = _payload(seq=90.0, batched=110.0, fused=440.0)
        assert gate.check(_payload(), current, 0.15) == []

    def test_improvement_passes(self, gate):
        current = _payload(seq=200.0, batched=300.0, fused=900.0)
        assert gate.check(_payload(), current, 0.15) == []

    def test_large_drop_fails_naming_series(self, gate):
        current = _payload(seq=80.0)  # 20% drop > 15% tolerance
        failures = gate.check(_payload(), current, 0.15)
        assert len(failures) == 1
        assert "end_to_end.sequential_qps" in failures[0]
        assert "20.0%" in failures[0]

    def test_each_series_gated_independently(self, gate):
        current = _payload(seq=50.0, fused=100.0)
        failures = gate.check(_payload(), current, 0.15)
        assert len(failures) == 2

    def test_boundary_is_inclusive(self, gate):
        # exactly at the floor (15% drop with 15% tolerance) still passes
        current = _payload(seq=85.0)
        assert gate.check(_payload(), current, 0.15) == []

    def test_shape_mismatch_refuses_comparison(self, gate):
        current = _payload()
        current["num_objects"] = 50000
        failures = gate.check(_payload(), current, 0.15)
        assert len(failures) == 1
        assert "not comparable" in failures[0]

    def test_missing_series_fails(self, gate):
        current = _payload()
        del current["batch_filter"]
        failures = gate.check(_payload(), current, 0.15)
        assert any("batch_filter.fused_many_qps" in f for f in failures)

    def test_cascade_speedup_floor(self, gate):
        # The cascade-speedup gate is absolute: even with a baseline that
        # also sat below the floor, a current run under 2.0x fails.
        low = _payload(cascade_speedup=1.5)
        failures = gate.check(low, low, 0.15)
        assert len(failures) == 1
        assert "end_to_end.cascade_speedup" in failures[0]
        assert "floor" in failures[0]

    def test_cascade_speedup_at_floor_passes(self, gate):
        current = _payload(cascade_speedup=2.0)
        assert gate.check(_payload(), current, 0.15) == []

    def test_missing_cascade_speedup_fails(self, gate):
        current = _payload()
        del current["end_to_end"]["cascade_speedup"]
        failures = gate.check(_payload(), current, 0.15)
        assert any("end_to_end.cascade_speedup" in f for f in failures)


class TestMain:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_pass_exit_zero(self, gate, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _payload())
        cur = self._write(tmp_path, "cur.json", _payload(seq=95.0))
        assert gate.main([base, cur]) == 0
        out = capsys.readouterr().out
        assert "ok  end_to_end.sequential_qps" in out

    def test_regression_exit_one(self, gate, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _payload())
        cur = self._write(tmp_path, "cur.json", _payload(seq=10.0))
        assert gate.main([base, cur]) == 1
        assert "THROUGHPUT REGRESSION" in capsys.readouterr().out

    def test_tighter_tolerance_flag(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _payload())
        cur = self._write(tmp_path, "cur.json", _payload(seq=90.0))
        assert gate.main([base, cur]) == 0
        assert gate.main([base, cur, "--tolerance", "0.05"]) == 1

    def test_unreadable_input_exit_two(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _payload())
        assert gate.main([base, str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert gate.main([base, str(bad)]) == 2

    def test_bad_tolerance_exit_two(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _payload())
        assert gate.main([base, base, "--tolerance", "1.5"]) == 2

    def test_committed_baseline_compares_to_itself(self, gate):
        baseline = _SCRIPT.parents[1] / "BENCH_query_throughput.json"
        assert gate.main([str(baseline), str(baseline)]) == 0

    def test_missing_current_without_recovery_exit_two(self, gate, tmp_path):
        base = self._write(tmp_path, "base.json", _payload())
        assert gate.main([base]) == 2


class TestRecoveryGate:
    def _write(self, tmp_path, rate):
        payload = {
            "num_txns": 800,
            "ops_per_txn": 4,
            "recovery": {"replay_txns_per_sec": rate, "rounds": 5},
        }
        path = tmp_path / "recovery.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_above_floor_passes(self, gate, tmp_path, capsys):
        path = self._write(tmp_path, 14000.0)
        assert gate.main(["--recovery", path]) == 0
        assert "ok  recovery.replay_txns_per_sec" in capsys.readouterr().out

    def test_below_floor_fails(self, gate, tmp_path, capsys):
        path = self._write(tmp_path, 10.0)
        assert gate.main(["--recovery", path]) == 1
        assert "RECOVERY REGRESSION" in capsys.readouterr().out

    def test_missing_series_fails(self, gate, tmp_path):
        path = tmp_path / "recovery.json"
        path.write_text(json.dumps({"num_txns": 800}), encoding="utf-8")
        assert gate.main(["--recovery", str(path)]) == 1

    def test_two_paths_with_recovery_exit_two(self, gate, tmp_path):
        path = self._write(tmp_path, 14000.0)
        assert gate.main(["--recovery", path, path]) == 2

    def test_unreadable_recovery_input_exit_two(self, gate, tmp_path):
        assert gate.main(["--recovery", str(tmp_path / "missing.json")]) == 2
