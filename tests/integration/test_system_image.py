"""Integration: FerretSystem with the real image plug-in end to end.

This is the paper's full construction story on the real pipeline:
render scenes to files, watch a directory, persist everything, search
with attribute bootstrap, survive a restart.
"""

import os

import numpy as np
import pytest

from repro.core import SketchParams
from repro.datatypes.image import (
    make_image_plugin,
    perturb_scene,
    random_scene,
    render_scene,
)
from repro.system import FerretSystem


@pytest.fixture()
def photo_dir(tmp_path):
    rng = np.random.default_rng(3)
    incoming = tmp_path / "photos"
    incoming.mkdir()
    scenes = {}
    # Two renditions of one scene plus distractors.
    base = random_scene(rng)
    np.save(str(incoming / "base_sunny.npy"), render_scene(base, 40, 40, rng))
    variant = perturb_scene(base, rng, strength=0.3)
    np.save(str(incoming / "base_cloudy.npy"), render_scene(variant, 40, 40, rng))
    for i in range(6):
        np.save(
            str(incoming / f"other_{i}.npy"),
            render_scene(random_scene(rng), 40, 40, rng),
        )
    return incoming


def _attrs(path):
    stem = os.path.splitext(os.path.basename(path))[0]
    return {"name": stem, "group": stem.split("_")[0]}


class TestImageSystem:
    def test_full_lifecycle(self, tmp_path, photo_dir):
        plugin = make_image_plugin()
        store_dir = str(tmp_path / "sys")
        with FerretSystem(
            plugin, store_dir,
            sketch_params=SketchParams(96, plugin.meta, seed=1),
        ) as system:
            scanner = system.watch_directory(
                str(photo_dir), extensions=(".npy",), attribute_fn=_attrs
            )
            scanner.scan_once()
            report = scanner.scan_once()
            assert report.num_imported == 8

            # Attribute bootstrap: find the 'base' group photos.
            base_ids = system.attribute_search("group:base")
            assert len(base_ids) == 2

            # The two renditions of one scene find each other.
            hits = system.search(base_ids[0], top_k=1)
            assert hits[0].object_id == base_ids[1]

            # Restricted search stays within the attribute matches.
            restricted = system.search(base_ids[0], top_k=5,
                                       attr_query="group:other")
            assert all(
                h.object_id not in base_ids for h in restricted
            )
            before = [h.object_id for h in system.search(base_ids[0], top_k=3)]

        # Restart: everything reloads, including the file mapping (no
        # re-import) and the attribute index.
        with FerretSystem(plugin, store_dir) as system:
            assert system.loaded == 8
            scanner = system.watch_directory(
                str(photo_dir), extensions=(".npy",), attribute_fn=_attrs
            )
            scanner.scan_once()
            assert scanner.scan_once().num_imported == 0
            base_ids = system.attribute_search("group:base")
            after = [h.object_id for h in system.search(base_ids[0], top_k=3)]
            assert before == after
