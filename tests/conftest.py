"""Shared fixtures: small cached benchmarks so expensive generation
(rendering, synthesis, SH descriptors) happens once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FeatureMeta, ObjectSignature


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def unit_meta():
    """8-dim unit-cube feature space."""
    return FeatureMeta(8, np.zeros(8), np.ones(8))


def random_signature(rng, k, dim=8, object_id=None):
    return ObjectSignature(
        rng.random((k, dim)), rng.random(k) + 0.1, object_id=object_id
    )


@pytest.fixture(scope="session")
def image_benchmark():
    from repro.datatypes.image import generate_image_benchmark

    return generate_image_benchmark(
        num_sets=6, set_size=4, num_distractors=40, image_size=40, seed=99
    )


@pytest.fixture(scope="session")
def audio_benchmark():
    from repro.datatypes.audio import generate_audio_benchmark

    return generate_audio_benchmark(
        num_sentences=6, speakers_per_sentence=4, seed=99
    )


@pytest.fixture(scope="session")
def shape_benchmark():
    from repro.datatypes.shape import generate_shape_benchmark

    return generate_shape_benchmark(
        num_classes=8, instances_per_class=3, num_samples=3000, seed=99
    )


@pytest.fixture(scope="session")
def genomic_benchmark():
    from repro.datatypes.genomic import generate_genomic_benchmark

    return generate_genomic_benchmark(
        num_modules=8, genes_per_module=6, num_background=60,
        num_experiments=40, seed=99,
    )
