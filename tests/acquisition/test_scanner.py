"""Tests for the directory-scan data acquisition component."""

import os
import time

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.acquisition import DirectoryScanner


def _make_engine():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))

    def extract(path):
        return ObjectSignature(np.load(path), [1.0, 1.0])

    plugin = DataTypePlugin("npy", meta, seg_extract=extract)
    return SimilaritySearchEngine(plugin, SketchParams(64, meta, seed=0))


def _write(directory, name, rng):
    path = os.path.join(directory, name)
    np.save(path, rng.random((2, 4)))
    return path + ".npy" if not path.endswith(".npy") else path


class TestScanOnce:
    def test_two_pass_import(self, tmp_path):
        """First pass records sizes, second pass imports stable files."""
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path), extensions=(".npy",))
        rng = np.random.default_rng(0)
        _write(str(tmp_path), "a", rng)
        _write(str(tmp_path), "b", rng)
        first = scanner.scan_once()
        assert first.num_imported == 0
        assert len(first.skipped_unstable) == 2
        second = scanner.scan_once()
        assert second.num_imported == 2
        assert len(engine) == 2

    def test_no_reimport(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path))
        rng = np.random.default_rng(1)
        _write(str(tmp_path), "a", rng)
        scanner.scan_once()
        scanner.scan_once()
        third = scanner.scan_once()
        assert third.num_imported == 0
        assert len(engine) == 1

    def test_growing_file_waits(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path))
        rng = np.random.default_rng(2)
        path = _write(str(tmp_path), "grow", rng)
        scanner.scan_once()  # records size
        with open(path, "ab") as fh:  # file grows between scans
            fh.write(b"\0" * 10)
        report = scanner.scan_once()
        assert report.num_imported == 0  # size changed: still unstable

    def test_extension_filter(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path), extensions=(".npy",))
        with open(tmp_path / "readme.txt", "w") as fh:
            fh.write("not data")
        scanner.scan_once()
        report = scanner.scan_once()
        assert report.num_imported == 0

    def test_failed_import_reported(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path))
        bad = tmp_path / "bad.npy"
        with open(bad, "wb") as fh:
            fh.write(b"this is not a npy file")
        scanner.scan_once()
        report = scanner.scan_once()
        assert str(bad) in report.failed
        assert len(engine) == 0

    def test_attribute_fn_applied(self, tmp_path):
        engine = _make_engine()
        seen = {}
        scanner = DirectoryScanner(
            engine, str(tmp_path),
            attribute_fn=lambda p: {"file": os.path.basename(p)},
        )
        scanner.on_import = lambda path, oid: seen.update({path: oid})
        rng = np.random.default_rng(3)
        _write(str(tmp_path), "tagged", rng)
        scanner.scan_once()
        scanner.scan_once()
        assert len(seen) == 1

    def test_missing_directory_is_empty_scan(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path / "ghost"))
        report = scanner.scan_once()
        assert report.num_imported == 0

    def test_recursive_scan(self, tmp_path):
        engine = _make_engine()
        sub = tmp_path / "nested"
        sub.mkdir()
        rng = np.random.default_rng(4)
        _write(str(sub), "deep", rng)
        flat = DirectoryScanner(engine, str(tmp_path))
        flat.scan_once()
        assert flat.scan_once().num_imported == 0
        deep = DirectoryScanner(engine, str(tmp_path), recursive=True)
        deep.scan_once()
        assert deep.scan_once().num_imported == 1


class TestBackgroundPolling:
    def test_start_stop(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path))
        rng = np.random.default_rng(5)
        _write(str(tmp_path), "bg", rng)
        scanner.start(interval=0.05)
        deadline = time.time() + 5.0
        while len(engine) < 1 and time.time() < deadline:
            time.sleep(0.05)
        scanner.stop()
        assert len(engine) == 1

    def test_double_start_rejected(self, tmp_path):
        engine = _make_engine()
        scanner = DirectoryScanner(engine, str(tmp_path))
        scanner.start(interval=10)
        try:
            with pytest.raises(RuntimeError):
                scanner.start(interval=10)
        finally:
            scanner.stop()
