"""Tests for the command processor."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor, ProtocolError, parse_command


@pytest.fixture()
def processor():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(0)
    proc = CommandProcessor(engine)
    for i in range(20):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
        proc.register_attributes(oid, {"parity": "even" if i % 2 == 0 else "odd"})
    return proc


def run(proc, line):
    return proc.execute(parse_command(line))


class TestBasicCommands:
    def test_ping(self, processor):
        assert run(processor, "ping") == ["pong"]

    def test_count(self, processor):
        assert run(processor, "count") == ["20"]

    def test_stat_contains_ratio(self, processor):
        lines = run(processor, "stat")
        assert any(line.startswith("compression_ratio") for line in lines)
        assert any(line == "objects 20" for line in lines)

    def test_unknown_command(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "frobnicate")


class TestQueryCommand:
    def test_basic_query(self, processor):
        lines = run(processor, "query 0 top=5")
        assert len(lines) <= 5
        oid, dist = lines[0].split()
        assert oid.isdigit()
        float(dist)

    def test_self_excluded_by_default(self, processor):
        lines = run(processor, "query 3 top=20 method=brute_force_original")
        assert all(line.split()[0] != "3" for line in lines)

    def test_self_included_on_request(self, processor):
        lines = run(processor, "query 3 top=20 self=yes method=brute_force_original")
        assert lines[0].split()[0] == "3"

    def test_method_selection(self, processor):
        for method in ("filtering", "brute_force_sketch", "brute_force_original"):
            assert run(processor, f"query 0 top=3 method={method}")

    def test_attr_restriction(self, processor):
        lines = run(processor, "query 0 top=20 attr=parity:even method=brute_force_original")
        ids = [int(line.split()[0]) for line in lines]
        assert all(i % 2 == 0 for i in ids)

    def test_unknown_object(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "query 999")

    def test_bad_object_id(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "query abc")

    def test_missing_arg(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "query")

    def test_bad_attr_expr(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, 'query 0 attr="(unbalanced"')


class TestQueryManyCommand:
    def test_matches_single_queries(self, processor):
        batched = run(processor, "querymany 0,5,9 top=4")
        singles = []
        for oid in (0, 5, 9):
            singles.extend(
                f"{oid} {line}" for line in run(processor, f"query {oid} top=4")
            )
        assert batched == singles

    def test_single_id_batch(self, processor):
        lines = run(processor, "querymany 7 top=3")
        assert lines
        assert all(line.split()[0] == "7" for line in lines)

    def test_attr_restriction(self, processor):
        lines = run(processor, "querymany 0,2 top=20 attr=parity:even")
        assert all(int(line.split()[1]) % 2 == 0 for line in lines)

    def test_self_included_on_request(self, processor):
        lines = run(processor, "querymany 3 top=20 self=yes method=brute_force_original")
        assert lines[0].split()[:2] == ["3", "3"]

    def test_unknown_object(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "querymany 0,999")

    def test_bad_ids(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "querymany 1,abc")
        with pytest.raises(ProtocolError):
            run(processor, "querymany ,")
        with pytest.raises(ProtocolError):
            run(processor, "querymany")


class TestAttrCommands:
    def test_attrquery(self, processor):
        lines = run(processor, "attrquery parity:odd")
        assert len(lines) == 10
        assert all(int(line) % 2 == 1 for line in lines)

    def test_attrquery_boolean(self, processor):
        lines = run(processor, "attrquery parity:odd OR parity:even")
        assert len(lines) == 20

    def test_attrs_dump(self, processor):
        lines = run(processor, "attrs 2")
        assert lines == ["parity=even"]

    def test_attrquery_empty_expr(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "attrquery")


class TestSetParam:
    def test_set_candidates(self, processor):
        run(processor, "setparam candidates_per_segment 7")
        assert processor.engine.filter_params.candidates_per_segment == 7

    def test_set_threshold_none(self, processor):
        run(processor, "setparam threshold_fraction none")
        assert processor.engine.filter_params.threshold_fraction is None

    def test_set_num_query_segments(self, processor):
        run(processor, "setparam num_query_segments 2")
        assert processor.engine.filter_params.num_query_segments == 2

    def test_unknown_param(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "setparam nope 1")

    def test_rank_cascade_toggle(self, processor):
        assert processor.engine.rank_params.cascade is True
        assert run(processor, "setparam rank_cascade off") == [
            "rank_cascade=off"
        ]
        assert processor.engine.rank_params.cascade is False
        run(processor, "setparam rank_cascade on")
        assert processor.engine.rank_params.cascade is True

    def test_rank_bound_toggles(self, processor):
        run(processor, "setparam rank_centroid_bound off")
        run(processor, "setparam rank_rowcol_bound off")
        run(processor, "setparam rank_dedup off")
        params = processor.engine.rank_params
        assert params.centroid_bound is False
        assert params.rowcol_bound is False
        assert params.dedup_segments is False
        assert params.cascade is True  # untouched knob keeps its value

    def test_rank_toggle_rejects_non_flag(self, processor):
        with pytest.raises(ProtocolError):
            run(processor, "setparam rank_cascade maybe")

    def test_stat_reports_rank_lines(self, processor):
        run(processor, "query 0 top=3")
        lines = run(processor, "stat")
        assert any(line == "rank_cascade on" for line in lines)
        assert any(line.startswith("rank_prune_rate ") for line in lines)
        evals = [l for l in lines if l.startswith("rank_exact_evals ")]
        assert evals and int(evals[0].split()[1]) >= 1
        assert any(
            line.startswith("rank_lower_bound_prunes ") for line in lines
        )


class TestQueryFallbackScope:
    def test_lsh_unavailable_falls_back_to_filtering(self, processor):
        # The fixture engine has no LSH index: method=lsh still answers.
        lines = run(processor, "query 0 top=3 method=lsh")
        assert lines == run(processor, "query 0 top=3 method=filtering")
        assert processor.health.degraded_components().get("lsh_index")

    def test_non_lsh_bug_is_not_masked_by_fallback(self, processor, monkeypatch):
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise RuntimeError("ranking bug")

        monkeypatch.setattr(processor.engine, "query_by_id", boom)
        with pytest.raises(RuntimeError):
            run(processor, "query 0 top=3 method=lsh")
        assert len(calls) == 1  # the query was not silently re-executed
