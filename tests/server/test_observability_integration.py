"""End-to-end observability: metrics + trace round-trip the wire protocol.

Spins a real TCP server and drives it through :class:`FerretClient`:
the ``metrics`` command, ``setparam trace on`` plus the last-query stage
breakdown, the slow-query log view, and the extended ``stat`` keys —
exactly what an operator at a terminal would see.  Also pins the client
bug-fixes that rode along: an empty command line must fail as a timeout
(never an IndexError), and an already-expired deadline must raise
*before* anything is written.
"""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import (
    ClientError,
    CommandProcessor,
    FerretClient,
    serve_background,
)
from repro.server.client import ClientTimeout


@pytest.fixture()
def served():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(5)
    proc = CommandProcessor(engine)
    for i in range(12):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1.0, 1.0]))
        proc.register_attributes(oid, {"bucket": str(i % 2)})
    server = serve_background(proc)
    host, port = server.server_address
    yield host, port, engine
    server.shutdown()
    server.server_close()


class TestMetricsCommand:
    def test_metrics_round_trip(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.query(0, top=5)
            metrics = client.metrics()
            # Counters moved through the full pipeline: server dispatch,
            # engine query, filtering scan, ranking.
            assert int(metrics["server.commands"]) >= 1
            assert int(metrics["server.command.query"]) >= 1
            assert int(metrics["engine.queries"]) >= 1
            assert int(metrics["engine.distance_evals"]) >= 1
            assert int(metrics["engine.query_seconds_count"]) >= 1

    def test_metrics_line_format_stable(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            for line in client.send("metrics"):
                name, _, value = line.partition(" ")
                assert name and " " not in name
                float(value)  # every value parses as a number

    def test_metrics_toggle(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            try:
                client.set_param("metrics", "off")
                before = int(client.metrics()["engine.queries"])
                client.query(0, top=3)
                assert int(client.metrics()["engine.queries"]) == before
            finally:
                client.set_param("metrics", "on")
            client.query(0, top=3)
            assert int(client.metrics()["engine.queries"]) == before + 1


class TestTraceCommand:
    def test_trace_off_by_default(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.query(0, top=3)
            trace = client.trace()
            assert trace["tracing"] == "off"
            assert "no_trace_recorded" in trace

    def test_last_query_stage_breakdown(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            client.query(0, top=5)
            trace = client.trace()
            assert trace["method"] == "filtering"
            assert trace["queries"] == "1"
            assert float(trace["total_seconds"]) > 0.0
            assert "stage.filter_seconds" in trace
            assert "stage.rank_seconds" in trace
            assert int(trace["count.candidates"]) >= 1
            assert int(trace["count.distance_evals"]) >= 1
            assert trace["note.scan"] in ("serial", "parallel", "cache")

    def test_cache_hit_visible_in_trace(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            client.query(0, top=5)
            client.query(0, top=5)  # identical: served from the cache
            trace = client.trace()
            assert trace["note.scan"] == "cache"
            assert trace["count.cache_hits"] == "1"

    def test_slow_query_log_view(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            # Threshold of ~0 ms is rejected; 0.0001 ms catches everything.
            client.set_param("slow_query_ms", "0.0001")
            client.query(0, top=3)
            lines = client.send("trace slow 5")
            assert lines[0].startswith("slow_queries_total ")
            assert int(lines[0].split()[1]) >= 1
            assert "method=filtering" in lines[1]
            stats = client.stat()
            assert int(stats["slow_queries"]) >= 1

    def test_bad_trace_args_rejected(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientError):
                client.send("trace bogus")
            with pytest.raises(ClientError):
                client.send("trace slow nope")
            with pytest.raises(ClientError):
                client.set_param("slow_query_ms", "-5")
            with pytest.raises(ClientError):
                client.set_param("trace", "sideways")


class TestExtendedStat:
    def test_observability_keys_present(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            stats = client.stat()
            assert stats["metrics"] in ("on", "off")
            assert stats["trace"] in ("on", "off")
            assert "slow_queries" in stats
            assert float(stats["slow_query_ms"]) > 0
            assert "cache_evictions" in stats


class TestClientFixes:
    def test_empty_command_is_timeout_not_indexerror(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            # The server skips blank lines without replying, so the only
            # correct outcome is a timeout naming the (empty) command —
            # this used to die with IndexError on line.split()[0].
            with pytest.raises(ClientTimeout, match="<empty>"):
                client.send("   ", timeout=0.3)

    def test_expired_deadline_raises_before_write(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientTimeout, match="before 'ping' was sent"):
                client.send("ping", timeout=0)
            # Nothing hit the wire: the connection is still synchronized.
            assert client.connected
            assert client.ping()


@pytest.fixture()
def served_parallel():
    """Server whose engine answers filter scans through a 2-worker pool."""
    from repro.core import FilterParams, ParallelConfig

    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta),
        SketchParams(128, meta, seed=0),
        FilterParams(num_query_segments=2, candidates_per_segment=8),
        # Pin the process backend: this class tests *cross-process*
        # telemetry (worker.* folding, queue-wait spans), which the
        # thread backend that "auto" now prefers has no need for.
        parallel=ParallelConfig(
            num_workers=2, min_segments=1, cache_entries=0,
            backend="process",
        ),
    )
    rng = np.random.default_rng(5)
    proc = CommandProcessor(engine)
    for _ in range(12):
        engine.insert(ObjectSignature(rng.random((2, 4)), [1.0, 1.0]))
    server = serve_background(proc)
    host, port = server.server_address
    yield host, port, engine
    server.shutdown()
    server.server_close()
    engine.close()


class TestWorkerTelemetryOverWire:
    def test_metrics_include_worker_series_after_pool_query(
        self, served_parallel
    ):
        host, port, engine = served_parallel
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            client.query(0, top=5)
            assert engine.parallel_info()["active"]
            metrics = client.metrics()
            # Worker-side series, absent before this PR, are now folded
            # into the parent dump under both namespaces.
            assert int(metrics["workers.scan.requests"]) >= 2
            assert int(metrics["worker.0.scan.requests"]) >= 1
            assert int(metrics["worker.1.scan.requests"]) >= 1
            assert int(metrics["workers.scan.compute_seconds_count"]) >= 2
            # ... and the same pool-enabled query traced per-shard spans.
            trace = client.trace()
            assert trace["note.scan"] == "parallel"
            assert "span.worker.0.compute_seconds" in trace
            assert "span.worker.1.queue_wait_seconds" in trace

    def test_metrics_prefix_filter(self, served_parallel):
        host, port, _ = served_parallel
        with FerretClient(host, port) as client:
            client.query(0, top=3)
            filtered = client.metrics(prefix="workers.")
            assert filtered
            assert all(k.startswith("workers.") for k in filtered)
            # the filter actually shrinks the payload
            assert len(filtered) < len(client.metrics())

    def test_stat_pulls_worker_deltas(self, served_parallel):
        host, port, engine = served_parallel
        with FerretClient(host, port) as client:
            client.query(0, top=3)
            client.stat()  # folds pending worker deltas
            from repro.observability import metrics as _m

            assert _m.get_registry().value("workers.arena.loads") >= 2


class TestPrometheusExposition:
    def test_metrics_p_parses_as_prometheus(self, served):
        import re

        host, port, _ = served
        type_re = re.compile(
            r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
        )
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
            r"(nan|[+-]?(inf|\d+(\.\d+)?([eE][+-]?\d+)?))$"
        )
        with FerretClient(host, port) as client:
            client.query(0, top=3)
            lines = client.send("metrics -p")
            assert lines
            for line in lines:
                assert type_re.match(line) or sample_re.match(line), line
            assert "# TYPE ferret_engine_queries counter" in lines
            assert any(
                l.startswith('ferret_engine_query_seconds_bucket{le="+Inf"}')
                for l in lines
            )

    def test_prometheus_prefix_filter(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            body = client.metrics_prometheus(prefix="server.")
            assert "ferret_server_commands" in body
            assert "ferret_engine_queries" not in body

    def test_bad_metrics_args_rejected(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientError):
                client.send("metrics -p a b")


class TestProfileCommand:
    def test_profile_reports_slow_query_capture(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            # Force every query over the slow threshold: the recorder's
            # auto-profile hook must capture at least one stack.
            client.set_param("slow_query_ms", "0.0001")
            client.query(0, top=3)
            lines = client.profile()
            header = dict(
                l.split(" ", 1) for l in lines[:5]
            )
            assert header["running"] == "no"
            assert int(header["slow_captures"]) >= 1
            assert int(header["unique_stacks"]) >= 1
            stacks = lines[5:]
            assert stacks
            # collapsed folded format: frame;frame;frame count
            frame_part, count = stacks[0].rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in frame_part

    def test_profile_on_off_continuous_sampling(self, served):
        host, port, engine = served
        with FerretClient(host, port) as client:
            client.set_param("profile", "on")
            try:
                import time as _time

                deadline = _time.monotonic() + 2.0
                while (
                    engine.tracer.profiler.stats()["samples"] < 2
                    and _time.monotonic() < deadline
                ):
                    _time.sleep(0.01)
                lines = client.profile(limit=5)
                assert lines[0] == "running yes"
                assert int(dict(
                    l.split(" ", 1) for l in lines[:5]
                )["samples"]) >= 2
            finally:
                client.set_param("profile", "off")
            assert client.profile()[0] == "running no"
            with pytest.raises(ClientError):
                client.set_param("profile", "sideways")

    def test_bad_profile_args_rejected(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientError):
                client.send("profile 0")
            with pytest.raises(ClientError):
                client.send("profile -3")
            with pytest.raises(ClientError):
                client.send("profile many")


class TestTraceSlowValidation:
    def test_nonpositive_limit_rejected(self, served):
        """`trace slow 0` / negative n answer a usage error, never an
        empty (or full) silent slice."""
        host, port, _ = served
        with FerretClient(host, port) as client:
            for bad in ("0", "-1", "-100"):
                with pytest.raises(ClientError, match="usage: trace slow"):
                    client.send(f"trace slow {bad}")
            # the boundary valid value still works
            assert client.send("trace slow 1")[0].startswith(
                "slow_queries_total"
            )


class TestStatPercentiles:
    def test_quantile_lines_track_queries(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            stats = client.stat()
            for key in ("query_p50_ms", "query_p95_ms", "query_p99_ms"):
                assert key in stats  # present (nan) even before queries
            client.query(0, top=3)
            stats = client.stat()
            p50 = float(stats["query_p50_ms"])
            p95 = float(stats["query_p95_ms"])
            p99 = float(stats["query_p99_ms"])
            assert 0.0 < p50 <= p95 <= p99
