"""End-to-end observability: metrics + trace round-trip the wire protocol.

Spins a real TCP server and drives it through :class:`FerretClient`:
the ``metrics`` command, ``setparam trace on`` plus the last-query stage
breakdown, the slow-query log view, and the extended ``stat`` keys —
exactly what an operator at a terminal would see.  Also pins the client
bug-fixes that rode along: an empty command line must fail as a timeout
(never an IndexError), and an already-expired deadline must raise
*before* anything is written.
"""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import (
    ClientError,
    CommandProcessor,
    FerretClient,
    serve_background,
)
from repro.server.client import ClientTimeout


@pytest.fixture()
def served():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(5)
    proc = CommandProcessor(engine)
    for i in range(12):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1.0, 1.0]))
        proc.register_attributes(oid, {"bucket": str(i % 2)})
    server = serve_background(proc)
    host, port = server.server_address
    yield host, port, engine
    server.shutdown()
    server.server_close()


class TestMetricsCommand:
    def test_metrics_round_trip(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.query(0, top=5)
            metrics = client.metrics()
            # Counters moved through the full pipeline: server dispatch,
            # engine query, filtering scan, ranking.
            assert int(metrics["server.commands"]) >= 1
            assert int(metrics["server.command.query"]) >= 1
            assert int(metrics["engine.queries"]) >= 1
            assert int(metrics["engine.distance_evals"]) >= 1
            assert int(metrics["engine.query_seconds_count"]) >= 1

    def test_metrics_line_format_stable(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            for line in client.send("metrics"):
                name, _, value = line.partition(" ")
                assert name and " " not in name
                float(value)  # every value parses as a number

    def test_metrics_toggle(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            try:
                client.set_param("metrics", "off")
                before = int(client.metrics()["engine.queries"])
                client.query(0, top=3)
                assert int(client.metrics()["engine.queries"]) == before
            finally:
                client.set_param("metrics", "on")
            client.query(0, top=3)
            assert int(client.metrics()["engine.queries"]) == before + 1


class TestTraceCommand:
    def test_trace_off_by_default(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.query(0, top=3)
            trace = client.trace()
            assert trace["tracing"] == "off"
            assert "no_trace_recorded" in trace

    def test_last_query_stage_breakdown(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            client.query(0, top=5)
            trace = client.trace()
            assert trace["method"] == "filtering"
            assert trace["queries"] == "1"
            assert float(trace["total_seconds"]) > 0.0
            assert "stage.filter_seconds" in trace
            assert "stage.rank_seconds" in trace
            assert int(trace["count.candidates"]) >= 1
            assert int(trace["count.distance_evals"]) >= 1
            assert trace["note.scan"] in ("serial", "parallel", "cache")

    def test_cache_hit_visible_in_trace(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            client.query(0, top=5)
            client.query(0, top=5)  # identical: served from the cache
            trace = client.trace()
            assert trace["note.scan"] == "cache"
            assert trace["count.cache_hits"] == "1"

    def test_slow_query_log_view(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            client.set_param("trace", "on")
            # Threshold of ~0 ms is rejected; 0.0001 ms catches everything.
            client.set_param("slow_query_ms", "0.0001")
            client.query(0, top=3)
            lines = client.send("trace slow 5")
            assert lines[0].startswith("slow_queries_total ")
            assert int(lines[0].split()[1]) >= 1
            assert "method=filtering" in lines[1]
            stats = client.stat()
            assert int(stats["slow_queries"]) >= 1

    def test_bad_trace_args_rejected(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientError):
                client.send("trace bogus")
            with pytest.raises(ClientError):
                client.send("trace slow nope")
            with pytest.raises(ClientError):
                client.set_param("slow_query_ms", "-5")
            with pytest.raises(ClientError):
                client.set_param("trace", "sideways")


class TestExtendedStat:
    def test_observability_keys_present(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            stats = client.stat()
            assert stats["metrics"] in ("on", "off")
            assert stats["trace"] in ("on", "off")
            assert "slow_queries" in stats
            assert float(stats["slow_query_ms"]) > 0
            assert "cache_evictions" in stats


class TestClientFixes:
    def test_empty_command_is_timeout_not_indexerror(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            # The server skips blank lines without replying, so the only
            # correct outcome is a timeout naming the (empty) command —
            # this used to die with IndexError on line.split()[0].
            with pytest.raises(ClientTimeout, match="<empty>"):
                client.send("   ", timeout=0.3)

    def test_expired_deadline_raises_before_write(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientTimeout, match="before 'ping' was sent"):
                client.send("ping", timeout=0)
            # Nothing hit the wire: the connection is still synchronized.
            assert client.connected
            assert client.ping()
