"""Tests for the interactive shell."""

import io

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor, FerretClient, serve_background
from repro.server.shell import run_shell


class _LocalBackend:
    def __init__(self, processor):
        self.processor = processor

    def send(self, line):
        from repro.server import parse_command

        return self.processor.execute(parse_command(line))


@pytest.fixture()
def backend():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(64, meta, seed=0)
    )
    rng = np.random.default_rng(0)
    proc = CommandProcessor(engine)
    for i in range(10):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
        proc.register_attributes(oid, {"n": str(i)})
    return _LocalBackend(proc)


def _run(backend, script, interactive=False):
    out = io.StringIO()
    errors = run_shell(backend, io.StringIO(script), out, interactive=interactive)
    return errors, out.getvalue()


class TestRunShell:
    def test_basic_session(self, backend):
        errors, out = _run(backend, "ping\ncount\nquit\n")
        assert errors == 0
        assert "pong" in out
        assert "10" in out

    def test_query_output(self, backend):
        errors, out = _run(backend, "query 0 top=3\n")
        assert errors == 0
        assert len([l for l in out.splitlines() if l]) == 3

    def test_comments_and_blanks_skipped(self, backend):
        errors, out = _run(backend, "# a comment\n\nping\n")
        assert errors == 0
        assert out.strip() == "pong"

    def test_help_local(self, backend):
        errors, out = _run(backend, "help\n")
        assert errors == 0
        assert "attrquery" in out

    def test_numeric_attr_query_via_shell(self, backend):
        errors, out = _run(backend, "attrquery n>=8\n")
        assert errors == 0
        assert out.split() == ["8", "9"]

    def test_prompt_in_interactive_mode(self, backend):
        _errors, out = _run(backend, "ping\n", interactive=True)
        assert "ferret>" in out


class TestShellOverNetwork:
    def test_against_real_server(self, backend):
        server = serve_background(backend.processor)
        host, port = server.server_address
        try:
            with FerretClient(host, port) as client:
                out = io.StringIO()
                errors = run_shell(
                    client,
                    io.StringIO("count\nbogus command\nping\n"),
                    out,
                    interactive=False,
                )
            assert errors == 1  # the bogus command
            assert "error:" in out.getvalue()
            assert "pong" in out.getvalue()
        finally:
            server.shutdown()
            server.server_close()
