"""Tests for file-seeded queries (engine.query_file + queryfile command)."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor, ProtocolError, parse_command


@pytest.fixture()
def setup(tmp_path):
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))

    def extract(path):
        return ObjectSignature(np.load(path), [1.0, 1.0])

    engine = SimilaritySearchEngine(
        DataTypePlugin("npy", meta, seg_extract=extract),
        SketchParams(128, meta, seed=0),
    )
    rng = np.random.default_rng(0)
    proc = CommandProcessor(engine)
    base = rng.random((2, 4))
    engine.insert(ObjectSignature(base, [1, 1]))
    proc.register_attributes(0, {"kind": "seedlike"})
    for i in range(1, 15):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
        proc.register_attributes(oid, {"kind": "other"})
    # A probe file nearly identical to object 0.
    probe = str(tmp_path / "probe.npy")
    np.save(probe, np.clip(base + 0.01, 0, 1))
    return engine, proc, probe


class TestEngineQueryFile:
    def test_finds_near_duplicate(self, setup):
        engine, _proc, probe = setup
        results = engine.query_file(probe, top_k=3)
        assert results[0].object_id == 0

    def test_does_not_insert(self, setup):
        engine, _proc, probe = setup
        before = len(engine)
        engine.query_file(probe, top_k=1)
        assert len(engine) == before

    def test_method_selection(self, setup):
        engine, _proc, probe = setup
        for method in (SearchMethod.BRUTE_FORCE_ORIGINAL, SearchMethod.FILTERING):
            assert engine.query_file(probe, top_k=2, method=method)


class TestQueryFileCommand:
    def _run(self, proc, line):
        return proc.execute(parse_command(line))

    def test_basic(self, setup):
        _engine, proc, probe = setup
        lines = self._run(proc, f'queryfile "{probe}" top=3')
        assert lines[0].split()[0] == "0"

    def test_attr_restriction(self, setup):
        _engine, proc, probe = setup
        lines = self._run(proc, f'queryfile "{probe}" top=10 attr=kind:other')
        assert all(line.split()[0] != "0" for line in lines)

    def test_missing_file(self, setup):
        _engine, proc, _probe = setup
        with pytest.raises(ProtocolError):
            self._run(proc, "queryfile /nonexistent/file.npy")

    def test_usage_error(self, setup):
        _engine, proc, _probe = setup
        with pytest.raises(ProtocolError):
            self._run(proc, "queryfile")
