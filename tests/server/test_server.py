"""End-to-end tests for the TCP server + client."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import ClientError, CommandProcessor, FerretClient, serve_background


@pytest.fixture()
def served():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(1)
    proc = CommandProcessor(engine)
    for i in range(15):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
        proc.register_attributes(oid, {"bucket": str(i % 3)})
    server = serve_background(proc)
    host, port = server.server_address
    yield host, port, engine
    server.shutdown()
    server.server_close()


class TestClientServer:
    def test_ping_and_count(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            assert client.ping()
            assert client.count() == 15

    def test_query_roundtrip(self, served):
        host, port, engine = served
        with FerretClient(host, port) as client:
            results = client.query(0, top=5, method="brute_force_original")
            assert len(results) == 5
            # Compare against a direct engine query.
            direct = engine.query_by_id(
                0, top_k=5, exclude_self=True,
                method=__import__("repro.core", fromlist=["SearchMethod"]).SearchMethod.BRUTE_FORCE_ORIGINAL,
            )
            assert [r.object_id for r in direct] == [oid for oid, _ in results]

    def test_attrquery(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            ids = client.attrquery("bucket:0")
            assert ids == [0, 3, 6, 9, 12]

    def test_query_with_attr_filter(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            results = client.query(0, top=10, attr="bucket:1")
            assert all(oid % 3 == 1 for oid, _ in results)

    def test_error_surfaced(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientError):
                client.query(12345)

    def test_stat(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            stats = client.stat()
            assert stats["objects"] == "15"

    def test_set_param(self, served):
        host, port, engine = served
        with FerretClient(host, port) as client:
            client.set_param("candidates_per_segment", "9")
        assert engine.filter_params.candidates_per_segment == 9

    def test_multiple_clients(self, served):
        host, port, _ = served
        clients = [FerretClient(host, port) for _ in range(4)]
        try:
            for c in clients:
                assert c.count() == 15
        finally:
            for c in clients:
                c.close()

    def test_connection_survives_error(self, served):
        host, port, _ = served
        with FerretClient(host, port) as client:
            with pytest.raises(ClientError):
                client.send("bogus command")
            assert client.ping()  # connection still usable
