"""HealthState under concurrent transitions (ISSUE: the cluster tier
hammers one ledger from scatter threads, the prober, and write paths).

The guarantees checked here:

- no lost updates: error/fallback counts equal the number of calls even
  when many threads race on the same component;
- the ledger never tears: ``status_lines`` snapshots are internally
  consistent at any interleaving;
- terminal states are deterministic: a component whose last transition
  was ``mark_healthy`` is not degraded, and vice versa;
- the ``health.*`` metric mirrors (``health.errors``,
  ``health.fallbacks``, ``health.degraded_components``) track the
  ledger.
"""

import threading

import pytest

from repro.observability import metrics as _metrics
from repro.system import HealthState

THREADS = 8
ROUNDS = 200


def run_threads(worker):
    barrier = threading.Barrier(THREADS)
    errors = []

    def wrapped(i):
        barrier.wait()
        try:
            worker(i)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestNoLostUpdates:
    def test_error_counts_exact_under_contention(self):
        health = HealthState()
        mirror = _metrics.counter("health.errors")
        mirror_before = mirror.value

        def worker(i):
            for _ in range(ROUNDS):
                health.record_error("shared", RuntimeError("boom"))

        run_threads(worker)
        lines = dict(
            line.split(" ", 1) for line in health.status_lines()
        )
        assert lines["errors.shared"] == str(THREADS * ROUNDS)
        assert mirror.value == mirror_before + THREADS * ROUNDS

    def test_fallback_counts_exact_under_contention(self):
        health = HealthState()
        mirror = _metrics.counter("health.fallbacks")
        mirror_before = mirror.value

        def worker(i):
            for _ in range(ROUNDS):
                health.record_fallback(f"comp{i % 4}", "degraded path")

        run_threads(worker)
        lines = dict(line.split(" ", 1) for line in health.status_lines())
        per_component = THREADS // 4 * ROUNDS
        for c in range(4):
            assert lines[f"fallbacks.comp{c}"] == str(per_component)
        assert mirror.value == mirror_before + THREADS * ROUNDS


class TestConsistentSnapshots:
    def test_status_lines_never_tear(self):
        health = HealthState()
        stop = threading.Event()
        bad = []

        def mutate(i):
            component = f"comp{i}"
            for _ in range(ROUNDS):
                health.record_error(component, RuntimeError("x"))
                health.mark_healthy(component)

        def observe():
            while not stop.is_set():
                lines = health.status_lines()
                status = lines[0].split()[1]
                n_degraded = sum(
                    1 for line in lines if line.startswith("degraded.")
                )
                # status and the degraded.* lines come from one locked
                # snapshot: they must agree.
                if status == "ok" and n_degraded:
                    bad.append(lines)
                if status == "degraded" and not n_degraded:
                    bad.append(lines)

        observer = threading.Thread(target=observe)
        observer.start()
        try:
            run_threads(mutate)
        finally:
            stop.set()
            observer.join()
        assert not bad

    def test_degraded_flag_matches_components(self):
        health = HealthState()

        def worker(i):
            component = f"comp{i}"
            for _ in range(ROUNDS):
                health.record_error(component, RuntimeError("x"))
                assert health.degraded
                health.mark_healthy(component)

        run_threads(worker)
        # Every thread's last transition was mark_healthy.
        assert not health.degraded
        assert health.degraded_components() == {}
        assert health.reason() == ""


class TestTerminalState:
    def test_last_writer_wins_per_component(self):
        health = HealthState()

        def worker(i):
            component = f"comp{i}"
            for _ in range(ROUNDS):
                health.record_error(component, RuntimeError("flap"))
                health.record_fallback(component, "fallback reason")
                health.mark_healthy(component)
            if i % 2:
                health.record_error(component, RuntimeError("final"))

        run_threads(worker)
        components = health.degraded_components()
        for i in range(THREADS):
            if i % 2:
                assert f"comp{i}" in components
                assert "final" in components[f"comp{i}"]
            else:
                assert f"comp{i}" not in components

    def test_degraded_gauge_mirror_settles(self):
        health = HealthState()
        gauge = _metrics.gauge("health.degraded_components")

        def worker(i):
            for _ in range(ROUNDS):
                health.record_error(f"comp{i}", RuntimeError("x"))
                health.mark_healthy(f"comp{i}")

        run_threads(worker)
        # All components healthy: the ledger is empty.  The gauge mirror
        # is advisory (set outside the ledger lock) but must settle once
        # the threads are done and this ledger is the only writer.
        health.record_error("settle", RuntimeError("x"))
        assert gauge.value == 1.0
        health.mark_healthy("settle")
        assert gauge.value == 0.0
        assert not health.degraded

    def test_recovery_is_idempotent(self):
        health = HealthState()

        def worker(i):
            for _ in range(ROUNDS):
                health.mark_healthy("never_degraded")

        run_threads(worker)
        assert not health.degraded
        assert health.status_lines()[0] == "status ok"
