"""Tests for the line protocol codec."""

import pytest

from repro.server import (
    ProtocolError,
    format_error,
    format_ok,
    parse_command,
    quote,
)


class TestParseCommand:
    def test_bare_command(self):
        cmd = parse_command("ping")
        assert cmd.name == "ping"
        assert cmd.args == []
        assert cmd.kwargs == []

    def test_positional_args(self):
        cmd = parse_command("query 42 extra")
        assert cmd.args == ["42", "extra"]

    def test_keyword_args(self):
        cmd = parse_command("query 5 top=20 method=filtering")
        assert cmd.get("top") == "20"
        assert cmd.get("method") == "filtering"
        assert cmd.get("missing", "dflt") == "dflt"

    def test_name_lowercased(self):
        assert parse_command("QUERY 1").name == "query"

    def test_quoted_values(self):
        cmd = parse_command('insertfile "my file.npy" attr.note="two words"')
        assert cmd.args == ["my file.npy"]
        assert cmd.get("attr.note") == "two words"

    def test_repeated_keys(self):
        cmd = parse_command("insert attr.a=1 attr.a=2")
        assert cmd.get_all("attr.a") == ["1", "2"]
        assert cmd.get("attr.a") == "2"  # last wins

    def test_empty_line_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command("   ")

    def test_unbalanced_quote_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command('query "unterminated')

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command("query =value")


class TestQuote:
    def test_plain_passthrough(self):
        assert quote("simple") == "simple"

    def test_space_quoted(self):
        assert quote("two words") == '"two words"'

    def test_roundtrip_through_parser(self):
        value = 'tricky "quoted" \\ value'
        cmd = parse_command(f"cmd key={quote(value)}")
        assert cmd.get("key") == value

    def test_empty_value(self):
        assert quote("") == '""'


class TestResponses:
    def test_format_ok(self):
        assert format_ok(["a", "b"]) == "OK 2\na\nb\n"
        assert format_ok([]) == "OK 0\n"

    def test_format_error_single_line(self):
        assert format_error("boom\nsecond line") == "ERR boom\n"
        assert format_error("") == "ERR unknown error\n"
