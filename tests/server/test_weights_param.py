"""Tests for the query command's adjusted-weights parameter (§4.1.4)."""

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor, ProtocolError, parse_command


@pytest.fixture()
def processor():
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(0)
    # Object 0: two very different segments.
    seg_a = np.full(4, 0.1)
    seg_b = np.full(4, 0.9)
    engine.insert(ObjectSignature(np.stack([seg_a, seg_b]), [1, 1]))
    # Object 1 matches segment A only; object 2 matches segment B only.
    engine.insert(ObjectSignature(seg_a[None, :], [1.0]))
    engine.insert(ObjectSignature(seg_b[None, :], [1.0]))
    for _ in range(10):
        engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
    return CommandProcessor(engine)


def _top(proc, line):
    return int(proc.execute(parse_command(line))[0].split()[0])


class TestAdjustedWeights:
    def test_weights_steer_the_match(self, processor):
        # Emphasizing segment A pulls object 1 to the top; B pulls 2.
        top_a = _top(processor, "query 0 top=1 weights=0.95,0.05 method=brute_force_original")
        top_b = _top(processor, "query 0 top=1 weights=0.05,0.95 method=brute_force_original")
        assert top_a == 1
        assert top_b == 2

    def test_wrong_weight_count_rejected(self, processor):
        with pytest.raises(ProtocolError):
            processor.execute(parse_command("query 0 weights=1,2,3"))

    def test_non_numeric_weights_rejected(self, processor):
        with pytest.raises(ProtocolError):
            processor.execute(parse_command("query 0 weights=a,b"))

    def test_negative_weights_rejected(self, processor):
        with pytest.raises(ProtocolError):
            processor.execute(parse_command("query 0 weights=-1,2"))

    def test_without_weights_unchanged(self, processor):
        lines = processor.execute(parse_command("query 0 top=2 method=brute_force_original"))
        assert len(lines) == 2


class TestPerSetBreakdown:
    def test_report_and_worst_sets(self):
        from repro.evaltool import BenchmarkSuite, evaluate_engine
        from repro.core import SearchMethod

        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        engine = SimilaritySearchEngine(
            DataTypePlugin("t", meta), SketchParams(64, meta, seed=0)
        )
        rng = np.random.default_rng(1)
        suite = BenchmarkSuite("breakdown")
        # An easy set (near-duplicates) and a hard one (random members).
        base = rng.random((1, 4))
        easy = [engine.insert(ObjectSignature(base + rng.normal(0, 0.005, base.shape), [1.0]))
                for _ in range(3)]
        hard = [engine.insert(ObjectSignature(rng.random((1, 4)), [1.0]))
                for _ in range(3)]
        for _ in range(20):
            engine.insert(ObjectSignature(rng.random((1, 4)), [1.0]))
        suite.add("easy", easy)
        suite.add("hard", hard)

        result = evaluate_engine(engine, suite, SearchMethod.BRUTE_FORCE_ORIGINAL)
        assert set(result.per_set) == {"easy", "hard"}
        assert (
            result.per_set["easy"].average_precision
            > result.per_set["hard"].average_precision
        )
        worst = result.worst_sets(1)
        assert worst[0][0] == "hard"
        report = result.report()
        assert "easy" in report and "hard" in report
