"""Server-side fault tolerance: hostile clients, degraded components,
and the resilient client's reconnect/retry/deadline behavior."""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import (
    ClientError,
    ClientTimeout,
    CommandProcessor,
    FerretClient,
    FerretServer,
    RetryPolicy,
    ServerDegraded,
    serve_background,
)
from repro.server.server import MAX_LINE_BYTES
from repro.storage.errors import StorageError
from repro.system import HealthState


def _build_processor(num_objects=12):
    meta = FeatureMeta(4, np.zeros(4), np.ones(4))
    engine = SimilaritySearchEngine(
        DataTypePlugin("t", meta), SketchParams(128, meta, seed=0)
    )
    rng = np.random.default_rng(2)
    proc = CommandProcessor(engine, health=HealthState())
    for i in range(num_objects):
        oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
        proc.register_attributes(oid, {"bucket": str(i % 3)})
    return proc, engine


@pytest.fixture()
def served():
    proc, engine = _build_processor()
    server = serve_background(proc)
    host, port = server.server_address
    yield host, port, proc, engine
    server.shutdown()
    server.server_close()


def _raw_roundtrip(host, port, payload, read_bytes=4096):
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(payload)
        sock.settimeout(5.0)
        return sock.recv(read_bytes)


# ---------------------------------------------------------------------------
# Hostile input
# ---------------------------------------------------------------------------

class TestMalformedInput:
    @pytest.mark.parametrize(
        "line",
        [
            b'query "unterminated\n',
            b"\x00\x01\x02\xff\xfe\n",
            b"query\n",
            b"insertfile\n",
            b"query notanumber\n",
            b"query 0 top=NaNsense\n",
            b"=weird\n",
        ],
    )
    def test_malformed_lines_get_err_not_crash(self, served, line):
        host, port, _, _ = served
        reply = _raw_roundtrip(host, port, line)
        assert reply.startswith(b"ERR ")
        # And the server is still alive for the next client.
        with FerretClient(host, port) as client:
            assert client.ping()

    def test_oversized_request_is_rejected_and_connection_closed(self, served):
        host, port, _, _ = served
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"query " + b"9" * (MAX_LINE_BYTES + 64) + b"\n")
            sock.settimeout(10.0)
            chunks = b""
            while b"\n" not in chunks:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks += chunk
            assert chunks.startswith(b"ERR ")
            assert b"exceeds" in chunks
            # The stream is unrecoverable; the server must hang up.
            sock.settimeout(5.0)
            assert sock.recv(4096) == b""
        with FerretClient(host, port) as client:
            assert client.ping()

    def test_disconnect_mid_response_does_not_kill_server(self, served):
        host, port, _, _ = served
        for _ in range(3):
            sock = socket.create_connection((host, port), timeout=5.0)
            # Ask for a full result set, then vanish without reading.
            sock.sendall(b"query 0 top=10\n")
            sock.close()
        time.sleep(0.1)
        with FerretClient(host, port) as client:
            assert client.ping()
            assert client.count() == 12

    def test_concurrent_clients_with_failures_mixed_in(self, served):
        host, port, _, _ = served
        errors = []

        def hammer(i):
            try:
                with FerretClient(host, port) as client:
                    for _ in range(10):
                        assert client.count() == 12
                        if i % 2:
                            with pytest.raises(ClientError):
                                client.send("query 99999")
                        assert len(client.query(i % 12, top=3)) == 3
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# ---------------------------------------------------------------------------
# Health + graceful degradation
# ---------------------------------------------------------------------------

class TestDegradation:
    def test_health_command_reports_ok(self, served):
        host, port, _, _ = served
        with FerretClient(host, port) as client:
            report = client.health()
        assert report["status"] == "ok"
        assert float(report["uptime_seconds"]) >= 0.0

    def test_storage_error_becomes_err_degraded(self, served):
        host, port, proc, engine = served
        original = engine.stats
        engine.stats = lambda: (_ for _ in ()).throw(StorageError("disk gone"))
        try:
            with FerretClient(host, port) as client:
                with pytest.raises(ServerDegraded) as exc_info:
                    client.stat()
                assert "disk gone" in exc_info.value.reason
                # The connection survives a DEGRADED answer...
                assert client.ping()
                # ...and health now reflects the failure.
                report = client.health()
                assert report["status"] == "degraded"
                assert "degraded.storage" in report
                assert report["errors.storage"] == "1"
        finally:
            engine.stats = original
        assert proc.health.degraded

    def test_degraded_is_never_retried(self, served):
        host, port, _, engine = served
        original = engine.stats
        calls = []

        def failing():
            calls.append(1)
            raise StorageError("still broken")

        engine.stats = failing
        try:
            client = FerretClient(host, port, retry=RetryPolicy(max_attempts=4))
            with client:
                with pytest.raises(ServerDegraded):
                    client.stat()
        finally:
            engine.stats = original
        assert len(calls) == 1  # the server answered; retrying won't help

    def test_lsh_failure_falls_back_to_filtering(self, served):
        host, port, proc, _ = served
        # The engine was built without lsh_params: the LSH path raises,
        # and the processor must answer through filtering instead.
        with FerretClient(host, port) as client:
            results = client.query(0, top=5, method="lsh")
            assert len(results) == 5
            expected = client.query(0, top=5, method="filtering")
            assert results == expected
            report = client.health()
            assert report["fallbacks.lsh_index"] == "1"
        assert proc.health.degraded_components().get("lsh_index")


# ---------------------------------------------------------------------------
# Resilient client
# ---------------------------------------------------------------------------

class _TrackingServer(FerretServer):
    """FerretServer that can force-sever live connections (crash stand-in)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._conns = []

    def process_request(self, request, client_address):
        self._conns.append(request)
        super().process_request(request, client_address)

    def force_stop(self):
        self.shutdown()
        for conn in self._conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self.server_close()


def _serve_tracking(proc, host="127.0.0.1", port=0):
    server = _TrackingServer(proc, host, port)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


class TestResilientClient:
    def test_client_timeout_is_distinct_and_per_command(self):
        assert issubclass(ClientTimeout, ClientError)
        # A listener that accepts (via the backlog) but never answers.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = FerretClient(host, port, timeout=30.0)
            start = time.monotonic()
            with pytest.raises(ClientTimeout):
                client.send("ping", timeout=0.3)  # per-command override
            elapsed = time.monotonic() - start
            assert elapsed < 5.0  # the 30 s client-wide timeout did not apply
            client.close()
        finally:
            listener.close()

    def test_retry_client_survives_server_restart(self):
        proc, _ = _build_processor()
        server = _serve_tracking(proc)
        host, port = server.server_address

        retry_client = FerretClient(
            host, port, timeout=5.0,
            retry=RetryPolicy(max_attempts=5, base_delay=0.05, seed=1),
        )
        plain_client = FerretClient(host, port, timeout=5.0)
        try:
            batch = list(range(6))
            results = [retry_client.query(batch[0], top=3)]
            assert plain_client.ping()

            # Forced restart: sever every connection, rebind the port.
            server.force_stop()
            server = _serve_tracking(proc, host, port)

            # Even the plain client recovers idempotent commands: a torn
            # connection earns one free immediate reconnect, counted in
            # errors_absorbed.client_reconnect.
            from repro.observability import metrics as _metrics

            reconnects = _metrics.counter("errors_absorbed.client_reconnect")
            before = reconnects.value
            assert len(plain_client.query(batch[1], top=3)) == 3
            assert reconnects.value > before

            # The retry client finishes the batch across the restart.
            for object_id in batch[1:]:
                results.append(retry_client.query(object_id, top=3))
            assert len(results) == len(batch)
            assert all(len(r) == 3 for r in results)
        finally:
            retry_client.close()
            plain_client.close()
            server.force_stop()

    def test_plain_client_does_not_retry_connect(self):
        # Grab a port and close it so nothing is listening there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        with pytest.raises(OSError):
            FerretClient(host, port, timeout=0.5)

    def test_nonidempotent_commands_are_not_retried(self):
        proc, _ = _build_processor()
        server = _serve_tracking(proc)
        host, port = server.server_address
        client = FerretClient(
            host, port, timeout=5.0, retry=RetryPolicy(max_attempts=5)
        )
        try:
            assert client.ping()
            server.force_stop()
            # insertfile mutates state: one attempt only, no blind replay.
            with pytest.raises(ClientError) as exc_info:
                client.send("insertfile /nonexistent.npy")
            assert not isinstance(exc_info.value, ServerDegraded)
        finally:
            client.close()
            server.server_close()

    def test_retry_delays_are_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.25, seed=3)
        assert policy.delays() == policy.delays()
        for delay, base in zip(policy.delays(), (0.1, 0.2, 0.4)):
            assert base * 0.75 <= delay <= base * 1.25
