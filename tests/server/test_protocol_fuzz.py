"""Fuzz tests: the protocol layer must never raise anything unexpected."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.server import CommandProcessor, ProtocolError, parse_command, quote
from repro.server.protocol import format_error, format_ok


class TestParserFuzz:
    @settings(max_examples=300)
    @given(st.text(max_size=200))
    def test_parse_never_raises_unexpected(self, line):
        """Arbitrary input: either a Command or a ProtocolError."""
        try:
            command = parse_command(line)
            assert command.name
        except ProtocolError:
            pass

    @settings(max_examples=200)
    @given(st.text(max_size=80))
    def test_quote_roundtrip(self, value):
        """quote() output must survive the parser and come back intact
        (protocol values are single-line; embedded newlines are the
        transport's job, so normalize them first)."""
        value = value.replace("\n", " ").replace("\r", " ")
        command = parse_command(f"cmd key={quote(value)}")
        assert command.get("key") == value

    @settings(max_examples=100)
    @given(st.lists(st.text(min_size=1, max_size=20), max_size=5))
    def test_format_ok_line_count(self, lines):
        safe = [line.replace("\n", " ").replace("\r", " ") for line in lines]
        encoded = format_ok(safe)
        header, *body = encoded.rstrip("\n").split("\n")
        assert header == f"OK {len(safe)}"
        assert len(body) == len(safe) - sum(1 for s in safe if not s) or len(body) >= 0

    def test_format_error_single_line_always(self):
        assert "\n" not in format_error("a\nb\nc").rstrip("\n")


class TestProcessorFuzz:
    @pytest.fixture(scope="class")
    def processor(self):
        meta = FeatureMeta(4, np.zeros(4), np.ones(4))
        engine = SimilaritySearchEngine(
            DataTypePlugin("fuzz", meta), SketchParams(64, meta, seed=0)
        )
        rng = np.random.default_rng(0)
        proc = CommandProcessor(engine)
        for i in range(5):
            oid = engine.insert(ObjectSignature(rng.random((2, 4)), [1, 1]))
            proc.register_attributes(oid, {"n": str(i)})
        return proc

    @settings(max_examples=300, deadline=None)
    @given(st.text(max_size=120))
    def test_arbitrary_commands_contained(self, processor, line):
        """Any input line produces data lines or a ProtocolError/ValueError
        — never a crash of the processor itself."""
        try:
            command = parse_command(line)
        except ProtocolError:
            return
        try:
            result = processor.execute(command)
            assert isinstance(result, list)
        except (ProtocolError, ValueError, KeyError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(
        st.sampled_from(["query", "attrquery", "attrs", "setparam", "insertfile"]),
        st.lists(st.text(min_size=1, max_size=15).map(lambda s: s.replace("\n", "")), max_size=4),
    )
    def test_known_commands_with_random_args(self, processor, name, args):
        parts = [name] + [quote(a) for a in args if a.strip()]
        try:
            command = parse_command(" ".join(parts))
        except ProtocolError:
            return
        try:
            processor.execute(command)
        except (ProtocolError, ValueError, KeyError, FileNotFoundError):
            pass
