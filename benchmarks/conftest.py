"""Benchmark fixtures: session-cached synthetic quality benchmarks.

Dataset sizes are scaled down from the paper's (the substrate is a
pure-Python simulator); set ``FERRET_BENCH_SCALE=full`` for runs closer
to the paper's sizes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import scaled


@pytest.fixture(scope="session")
def image_quality_bench():
    from repro.datatypes.image import generate_image_benchmark

    return generate_image_benchmark(
        num_sets=scaled(12, 32),
        set_size=5,
        num_distractors=scaled(150, 500),
        image_size=48,
        seed=101,
    )


@pytest.fixture(scope="session")
def audio_quality_bench():
    from repro.datatypes.audio import generate_audio_benchmark

    return generate_audio_benchmark(
        num_sentences=scaled(25, 100), speakers_per_sentence=7, seed=101
    )


@pytest.fixture(scope="session")
def shape_quality_bench():
    from repro.datatypes.shape import generate_shape_benchmark

    return generate_shape_benchmark(
        instances_per_class=scaled(6, 10), num_samples=5000, seed=101
    )
