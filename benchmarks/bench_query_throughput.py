"""Query throughput — the batched Hamming kernel and multi-query pipeline.

Measures three things the batching PR claims:

1. *Filtering-scan speedup*: ``sketch_filter`` (one fused
   ``hamming_many_to_many`` pass with the native ``np.bitwise_count``
   popcount + vectorized selection) against the pre-batch seed
   implementation: ``sketch_filter_reference`` (one ``hamming_to_many``
   scan per query segment) forced onto the 16-bit LUT popcount the seed
   shipped with.  Target: >= 3x at the paper's default r=4.
2. *Batch filtering throughput*: ``sketch_filter_many`` (one fused scan
   for the whole batch) against a per-query ``sketch_filter`` loop —
   this is where the multi-query fusion pays off, since the database is
   streamed once per batch instead of once per query.
3. *End-to-end throughput*: ``engine.query_many`` against a sequential
   ``query`` loop, in queries/sec.  End-to-end time is dominated by
   exact EMD ranking, so this mostly shows the pipeline does not regress.
4. *Metrics overhead*: the same sequential query loop with the metrics
   registry enabled vs disabled.  The observability layer claims
   near-zero cost (one branch per instrument with metrics off, a lock +
   add with them on); this section holds it to < 5% end-to-end.

Assertions fail the bench if any batched path stops returning the same
candidates, the r=4 scan speedup drops below 3x, or the metrics-enabled
query path regresses more than 5% against metrics-disabled.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    FilterParams,
    SearchMethod,
    sketch_filter,
    sketch_filter_many,
    sketch_filter_reference,
)
from repro.core import bitvector
from repro.datatypes.bulk import bulk_image_dataset
from repro.observability import metrics as obs_metrics

from bench_common import build_engine, scaled, write_json, write_result

N_BITS = 256


def _build(num_objects, num_queries, seed=0):
    from repro.datatypes.image import make_image_plugin

    dataset = bulk_image_dataset(num_objects, seed=seed)
    plugin = make_image_plugin()
    engine = build_engine(
        plugin, n_bits=N_BITS,
        filter_params=FilterParams(num_query_segments=4,
                                   candidates_per_segment=32),
    )
    engine.insert_many(list(dataset))
    rng = np.random.default_rng(seed + 1)
    query_ids = rng.choice(num_objects, num_queries, replace=False)
    queries = [engine.get_object(int(i)) for i in query_ids]
    return engine, queries


def _time_filter(filter_fn, engine, queries, sketches, repeats):
    started = time.perf_counter()
    out = []
    for _ in range(repeats):
        out = [
            filter_fn(
                q, qs, engine._store, engine.filter_params,
                n_bits=engine.sketcher.n_bits,
            )
            for q, qs in zip(queries, sketches)
        ]
    elapsed = time.perf_counter() - started
    return elapsed / (repeats * len(queries)), out


def _time_filter_lut(engine, queries, sketches, repeats):
    """Time the pre-batch reference with the LUT popcount the seed used.

    ``popcount64`` gained a native ``np.bitwise_count`` fast path in the
    same PR as the batched kernel, so an honest "before" measurement has
    to pin the dispatch back to the table-lookup path.
    """
    saved = bitvector._HAS_BITWISE_COUNT
    bitvector._HAS_BITWISE_COUNT = False
    try:
        return _time_filter(
            sketch_filter_reference, engine, queries, sketches, repeats
        )
    finally:
        bitvector._HAS_BITWISE_COUNT = saved


def test_query_throughput():
    # Large enough that the sketch database (~4 MB at 12k objects) spills
    # out of L2: that is the regime the filtering unit targets, and where
    # streaming the database once per *batch* instead of once per query
    # pays off.
    num_objects = scaled(12000, 50000)
    num_queries = scaled(24, 64)
    repeats = scaled(3, 3)
    engine, queries = _build(num_objects, num_queries)
    sketches = [engine.sketcher.sketch_many(q.features) for q in queries]

    # -- 1. filtering scan: batched kernel vs pre-batch seed -------------
    ref_latency, ref_sets = _time_filter_lut(engine, queries, sketches, repeats)
    new_latency, new_sets = _time_filter(
        sketch_filter, engine, queries, sketches, repeats
    )
    assert ref_sets == new_sets, "batched filter changed candidate sets"
    scan_speedup = ref_latency / new_latency

    # -- 2. batch filtering: fused multi-query scan vs per-query loop ----
    started = time.perf_counter()
    loop_sets = []
    for _ in range(repeats):
        loop_sets = [
            sketch_filter(q, qs, engine._store, engine.filter_params,
                          n_bits=engine.sketcher.n_bits)
            for q, qs in zip(queries, sketches)
        ]
    loop_elapsed = (time.perf_counter() - started) / repeats
    started = time.perf_counter()
    many_sets = []
    for _ in range(repeats):
        many_sets = sketch_filter_many(
            queries, sketches, engine._store, engine.filter_params,
            n_bits=engine.sketcher.n_bits,
        )
    many_elapsed = (time.perf_counter() - started) / repeats
    assert many_sets == loop_sets, "fused batch filter changed candidate sets"
    loop_qps = len(queries) / loop_elapsed
    many_qps = len(queries) / many_elapsed

    # -- 3. end-to-end: query_many vs sequential query loop --------------
    started = time.perf_counter()
    sequential = [
        engine.query(q, top_k=10, method=SearchMethod.FILTERING,
                     exclude_self=True)
        for q in queries
    ]
    seq_elapsed = time.perf_counter() - started
    seq_qps = len(queries) / seq_elapsed

    started = time.perf_counter()
    batched = engine.query_many(queries, top_k=10, exclude_self=True)
    batch_elapsed = time.perf_counter() - started
    batch_qps = len(queries) / batch_elapsed
    for got, expected in zip(batched, sequential):
        assert [r.object_id for r in got] == [r.object_id for r in expected]

    # -- 4. metrics overhead: instrumented query path on vs off ----------
    # The filter cache is cleared before every timed pass so both
    # configurations do identical work (full serial scan + ranking);
    # best-of-N per configuration suppresses scheduler noise on the
    # 1-core CI box.  Alternating the order (on, off, on, off, ...)
    # keeps thermal/cache drift from biasing one side.
    overhead_queries = queries[: max(8, len(queries) // 2)]
    overhead_repeats = 3
    registry = obs_metrics.get_registry()
    was_enabled = registry.enabled

    def _time_query_loop() -> float:
        engine._filter_cache.clear()
        started = time.perf_counter()
        for q in overhead_queries:
            engine.query(q, top_k=10, method=SearchMethod.FILTERING,
                         exclude_self=True)
        return time.perf_counter() - started

    best_on = float("inf")
    best_off = float("inf")
    try:
        _time_query_loop()  # warm-up, outside both measurements
        for _ in range(overhead_repeats):
            obs_metrics.set_enabled(True)
            best_on = min(best_on, _time_query_loop())
            obs_metrics.set_enabled(False)
            best_off = min(best_off, _time_query_loop())
    finally:
        registry.enabled = was_enabled
    metrics_on_qps = len(overhead_queries) / best_on
    metrics_off_qps = len(overhead_queries) / best_off
    metrics_overhead = (best_on - best_off) / best_off

    lines = [
        "# Query throughput: batched Hamming kernel + multi-query pipeline",
        f"# {num_objects} objects, {engine.stats().num_segments} segments, "
        f"r=4, k=32, {N_BITS}-bit sketches, {num_queries} queries",
        "",
        "## Filtering scan (candidate generation, per query)",
        f"seed per-segment scan (LUT popcount)   {ref_latency * 1e3:10.3f} ms",
        f"batched scan (np.bitwise_count)        {new_latency * 1e3:10.3f} ms",
        f"scan speedup                           {scan_speedup:10.2f} x",
        "",
        "## Batch filtering (whole batch through the filter stage)",
        f"per-query sketch_filter loop           {loop_qps:10.0f} queries/s",
        f"fused sketch_filter_many               {many_qps:10.0f} queries/s",
        f"batch filter speedup                   {many_qps / loop_qps:10.2f} x",
        "",
        "## End-to-end (filter + exact EMD ranking, top 10)",
        f"sequential query() loop      {seq_qps:10.1f} queries/s "
        f"({seq_elapsed / len(queries) * 1e3:.3f} ms/query)",
        f"query_many() batch           {batch_qps:10.1f} queries/s "
        f"({batch_elapsed / len(queries) * 1e3:.3f} ms/query)",
        f"batch speedup                {batch_qps / seq_qps:10.2f} x",
        "",
        "## Metrics overhead (sequential query loop, best of "
        f"{overhead_repeats})",
        f"metrics enabled              {metrics_on_qps:10.1f} queries/s",
        f"metrics disabled             {metrics_off_qps:10.1f} queries/s",
        f"overhead                     {metrics_overhead * 100:10.2f} %",
    ]
    write_result("query_throughput", lines)
    write_json("query_throughput", {
        "num_objects": num_objects,
        "num_segments": engine.stats().num_segments,
        "n_bits": N_BITS,
        "num_queries": num_queries,
        "scan": {
            "reference_lut_ms_per_query": ref_latency * 1e3,
            "batched_ms_per_query": new_latency * 1e3,
            "speedup": scan_speedup,
        },
        "batch_filter": {
            "per_query_loop_qps": loop_qps,
            "fused_many_qps": many_qps,
            "speedup": many_qps / loop_qps,
        },
        "end_to_end": {
            "sequential_qps": seq_qps,
            "batched_qps": batch_qps,
            "speedup": batch_qps / seq_qps,
        },
        "metrics_overhead": {
            "enabled_qps": metrics_on_qps,
            "disabled_qps": metrics_off_qps,
            "overhead_fraction": metrics_overhead,
        },
        "identical_candidate_sets": True,
    })

    assert scan_speedup >= 3.0, (
        f"r=4 filtering scan speedup {scan_speedup:.2f}x below the 3x target"
    )
    assert many_qps > loop_qps, "fused batch filter slower than per-query loop"
    # End-to-end is dominated by exact EMD ranking, so the fused scan is a
    # small fraction of total time; just require the batch path not regress.
    assert batch_qps >= 0.9 * seq_qps, "batch pipeline regressed end-to-end"
    assert metrics_overhead < 0.05, (
        f"metrics-enabled query path {metrics_overhead * 100:.2f}% slower "
        f"than disabled (budget: 5%)"
    )


if __name__ == "__main__":
    test_query_throughput()
