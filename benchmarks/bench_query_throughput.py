"""Query throughput — the batched Hamming kernel and multi-query pipeline.

Measures three things the batching PR claims:

1. *Filtering-scan speedup*: ``sketch_filter`` (one fused
   ``hamming_many_to_many`` pass with the native ``np.bitwise_count``
   popcount + vectorized selection) against the pre-batch seed
   implementation: ``sketch_filter_reference`` (one ``hamming_to_many``
   scan per query segment) forced onto the 16-bit LUT popcount the seed
   shipped with.  Target: >= 3x at the paper's default r=4.
2. *Batch filtering throughput*: ``sketch_filter_many`` (one fused scan
   for the whole batch) against a per-query ``sketch_filter`` loop —
   this is where the multi-query fusion pays off, since the database is
   streamed once per batch instead of once per query.
3. *End-to-end throughput*: three configurations in queries/sec — the
   pre-cascade baseline (a sequential ``query`` loop with the ranking
   cascade disabled: one exact transportation solve per candidate), the
   sequential loop with the cascade on, and ``engine.query_many`` with
   the cascade on.  All three must return identical ``(object_id,
   distance)`` lists; the batched-vs-exact ratio is the PR's headline
   ``cascade_speedup`` (gated >= 2x here and in check_regression.py).
   A filter-vs-rank phase split (from the engine's stage histograms)
   plus prune-rate counters are recorded per configuration.
4. *Metrics overhead*: the same sequential query loop with the metrics
   registry enabled vs disabled.  The observability layer claims
   near-zero cost (one branch per instrument with metrics off, a lock +
   add with them on); this section holds it to < 5% end-to-end.

Assertions fail the bench if any batched path stops returning the same
candidates, the r=4 scan speedup drops below 3x, or the metrics-enabled
query path regresses more than 5% against metrics-disabled.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    FilterParams,
    RankParams,
    SearchMethod,
    sketch_filter,
    sketch_filter_many,
    sketch_filter_reference,
)
from repro.core import bitvector
from repro.datatypes.bulk import bulk_image_dataset
from repro.observability import metrics as obs_metrics

from bench_common import QUICK, build_engine, scaled, write_json, write_result

N_BITS = 256


def _build(num_objects, num_queries, seed=0):
    from repro.datatypes.image import make_image_plugin

    dataset = bulk_image_dataset(num_objects, seed=seed)
    plugin = make_image_plugin()
    engine = build_engine(
        plugin, n_bits=N_BITS,
        filter_params=FilterParams(num_query_segments=4,
                                   candidates_per_segment=32),
    )
    engine.insert_many(list(dataset))
    rng = np.random.default_rng(seed + 1)
    query_ids = rng.choice(num_objects, num_queries, replace=False)
    queries = [engine.get_object(int(i)) for i in query_ids]
    return engine, queries


def _time_filter(filter_fn, engine, queries, sketches, repeats):
    started = time.perf_counter()
    out = []
    for _ in range(repeats):
        out = [
            filter_fn(
                q, qs, engine._store, engine.filter_params,
                n_bits=engine.sketcher.n_bits,
            )
            for q, qs in zip(queries, sketches)
        ]
    elapsed = time.perf_counter() - started
    return elapsed / (repeats * len(queries)), out


def _time_filter_lut(engine, queries, sketches, repeats):
    """Time the pre-batch reference with the LUT popcount the seed used.

    ``popcount64`` gained a native ``np.bitwise_count`` fast path in the
    same PR as the batched kernel, so an honest "before" measurement has
    to pin the dispatch back to the table-lookup path.
    """
    saved = bitvector._HAS_BITWISE_COUNT
    bitvector._HAS_BITWISE_COUNT = False
    try:
        return _time_filter(
            sketch_filter_reference, engine, queries, sketches, repeats
        )
    finally:
        bitvector._HAS_BITWISE_COUNT = saved


def _phase_snapshot():
    """Cumulative filter/rank stage time + cascade counters from the
    metrics registry; deltas around a timed pass give its phase split."""
    registry = obs_metrics.get_registry()

    def _sum(name):
        metric = registry.get(name)
        return float(metric.sum) if metric is not None else 0.0

    def _val(name):
        metric = registry.get(name)
        return float(metric.value) if metric is not None else 0.0

    return {
        "filter_seconds": _sum("engine.filter_seconds"),
        "rank_seconds": _sum("engine.rank_seconds"),
        "exact_evals": _val("rank.exact_evals"),
        "lower_bound_prunes": _val("rank.lower_bound_prunes"),
    }


def _phase_delta(before, after):
    delta = {key: after[key] - before[key] for key in before}
    considered = delta["exact_evals"] + delta["lower_bound_prunes"]
    delta["prune_rate"] = (
        delta["lower_bound_prunes"] / considered if considered else 0.0
    )
    delta["exact_evals"] = int(delta["exact_evals"])
    delta["lower_bound_prunes"] = int(delta["lower_bound_prunes"])
    return delta


def test_query_throughput():
    # Large enough that the sketch database (~4 MB at 12k objects) spills
    # out of L2: that is the regime the filtering unit targets, and where
    # streaming the database once per *batch* instead of once per query
    # pays off.
    num_objects = scaled(12000, 50000, quick=1500)
    num_queries = scaled(24, 64, quick=8)
    repeats = scaled(3, 3, quick=1)
    engine, queries = _build(num_objects, num_queries)
    sketches = [engine.sketcher.sketch_many(q.features) for q in queries]

    # -- 1. filtering scan: batched kernel vs pre-batch seed -------------
    ref_latency, ref_sets = _time_filter_lut(engine, queries, sketches, repeats)
    new_latency, new_sets = _time_filter(
        sketch_filter, engine, queries, sketches, repeats
    )
    assert ref_sets == new_sets, "batched filter changed candidate sets"
    scan_speedup = ref_latency / new_latency

    # -- 2. batch filtering: fused multi-query scan vs per-query loop ----
    started = time.perf_counter()
    loop_sets = []
    for _ in range(repeats):
        loop_sets = [
            sketch_filter(q, qs, engine._store, engine.filter_params,
                          n_bits=engine.sketcher.n_bits)
            for q, qs in zip(queries, sketches)
        ]
    loop_elapsed = (time.perf_counter() - started) / repeats
    started = time.perf_counter()
    many_sets = []
    for _ in range(repeats):
        many_sets = sketch_filter_many(
            queries, sketches, engine._store, engine.filter_params,
            n_bits=engine.sketcher.n_bits,
        )
    many_elapsed = (time.perf_counter() - started) / repeats
    assert many_sets == loop_sets, "fused batch filter changed candidate sets"
    loop_qps = len(queries) / loop_elapsed
    many_qps = len(queries) / many_elapsed

    # -- 3. end-to-end: exact baseline vs ranking cascade ---------------
    # Each pass clears the filter cache first so all three pay a real
    # filtering scan, and the phase split is read from the engine's own
    # stage histograms around the timed region.
    obs_metrics.set_enabled(True)
    phase_split = {}

    def _timed_pass(label, fn):
        engine._filter_cache.clear()
        before = _phase_snapshot()
        started = time.perf_counter()
        results = fn()
        elapsed = time.perf_counter() - started
        phase_split[label] = _phase_delta(before, _phase_snapshot())
        return results, elapsed

    engine.rank_params = RankParams(cascade=False)
    exact_sequential, exact_elapsed = _timed_pass(
        "exact_sequential",
        lambda: [
            engine.query(q, top_k=10, method=SearchMethod.FILTERING,
                         exclude_self=True)
            for q in queries
        ],
    )
    exact_seq_qps = len(queries) / exact_elapsed

    engine.rank_params = RankParams()
    sequential, seq_elapsed = _timed_pass(
        "cascade_sequential",
        lambda: [
            engine.query(q, top_k=10, method=SearchMethod.FILTERING,
                         exclude_self=True)
            for q in queries
        ],
    )
    seq_qps = len(queries) / seq_elapsed

    batched, batch_elapsed = _timed_pass(
        "cascade_batched",
        lambda: engine.query_many(queries, top_k=10, exclude_self=True),
    )
    batch_qps = len(queries) / batch_elapsed
    cascade_speedup = batch_qps / exact_seq_qps

    # Identity against the exact per-candidate EMD path: same ids, same
    # distances (bit-for-bit), same order — for both cascade passes.
    for variant in (sequential, batched):
        for got, expected in zip(variant, exact_sequential):
            assert [(r.object_id, r.distance) for r in got] == [
                (r.object_id, r.distance) for r in expected
            ], "cascade changed ranked results vs the exact EMD path"

    # -- 4. metrics overhead: instrumented query path on vs off ----------
    # The filter cache is cleared before every timed pass so both
    # configurations do identical work (full serial scan + ranking);
    # best-of-N per configuration suppresses scheduler noise on the
    # 1-core CI box.  Alternating the order (on, off, on, off, ...)
    # keeps thermal/cache drift from biasing one side.
    # The ranking cascade cut per-query time ~6x, so the fixed metric
    # cost is measured against a much smaller denominator than when this
    # gate was introduced: the full query set and best-of-7 keep
    # scheduler noise (easily +-10% per pass on a busy box) from
    # swamping the microsecond-scale true overhead.
    overhead_queries = queries
    overhead_repeats = 7
    registry = obs_metrics.get_registry()
    was_enabled = registry.enabled

    def _time_query_loop() -> float:
        engine._filter_cache.clear()
        started = time.perf_counter()
        for q in overhead_queries:
            engine.query(q, top_k=10, method=SearchMethod.FILTERING,
                         exclude_self=True)
        return time.perf_counter() - started

    best_on = float("inf")
    best_off = float("inf")
    try:
        _time_query_loop()  # warm-up, outside both measurements
        for _ in range(overhead_repeats):
            obs_metrics.set_enabled(True)
            best_on = min(best_on, _time_query_loop())
            obs_metrics.set_enabled(False)
            best_off = min(best_off, _time_query_loop())
    finally:
        registry.enabled = was_enabled
    metrics_on_qps = len(overhead_queries) / best_on
    metrics_off_qps = len(overhead_queries) / best_off
    metrics_overhead = (best_on - best_off) / best_off

    lines = [
        "# Query throughput: batched Hamming kernel + multi-query pipeline",
        f"# {num_objects} objects, {engine.stats().num_segments} segments, "
        f"r=4, k=32, {N_BITS}-bit sketches, {num_queries} queries",
        "",
        "## Filtering scan (candidate generation, per query)",
        f"seed per-segment scan (LUT popcount)   {ref_latency * 1e3:10.3f} ms",
        f"batched scan (np.bitwise_count)        {new_latency * 1e3:10.3f} ms",
        f"scan speedup                           {scan_speedup:10.2f} x",
        "",
        "## Batch filtering (whole batch through the filter stage)",
        f"per-query sketch_filter loop           {loop_qps:10.0f} queries/s",
        f"fused sketch_filter_many               {many_qps:10.0f} queries/s",
        f"batch filter speedup                   {many_qps / loop_qps:10.2f} x",
        "",
        "## End-to-end (filter + EMD ranking, top 10)",
        f"exact sequential (cascade off) {exact_seq_qps:10.1f} queries/s "
        f"({exact_elapsed / len(queries) * 1e3:.3f} ms/query)",
        f"cascade sequential             {seq_qps:10.1f} queries/s "
        f"({seq_elapsed / len(queries) * 1e3:.3f} ms/query)",
        f"cascade query_many() batch     {batch_qps:10.1f} queries/s "
        f"({batch_elapsed / len(queries) * 1e3:.3f} ms/query)",
        f"batch-vs-sequential speedup    {batch_qps / seq_qps:10.2f} x",
        f"cascade speedup vs exact       {cascade_speedup:10.2f} x",
        "",
        "## Phase split (seconds per pass; prune rate of the cascade)",
    ] + [
        f"{label:<18} filter {split['filter_seconds']:8.3f} s   "
        f"rank {split['rank_seconds']:8.3f} s   "
        f"prune_rate {split['prune_rate']:.3f}   "
        f"exact_evals {split['exact_evals']}"
        for label, split in phase_split.items()
    ] + [
        "",
        "## Metrics overhead (sequential query loop, best of "
        f"{overhead_repeats})",
        f"metrics enabled              {metrics_on_qps:10.1f} queries/s",
        f"metrics disabled             {metrics_off_qps:10.1f} queries/s",
        f"overhead                     {metrics_overhead * 100:10.2f} %",
    ]
    write_result("query_throughput", lines)
    write_json("query_throughput", {
        "num_objects": num_objects,
        "num_segments": engine.stats().num_segments,
        "n_bits": N_BITS,
        "num_queries": num_queries,
        "scan": {
            "reference_lut_ms_per_query": ref_latency * 1e3,
            "batched_ms_per_query": new_latency * 1e3,
            "speedup": scan_speedup,
        },
        "batch_filter": {
            "per_query_loop_qps": loop_qps,
            "fused_many_qps": many_qps,
            "speedup": many_qps / loop_qps,
        },
        "end_to_end": {
            "exact_sequential_qps": exact_seq_qps,
            "sequential_qps": seq_qps,
            "batched_qps": batch_qps,
            "speedup": batch_qps / seq_qps,
            "cascade_speedup": cascade_speedup,
        },
        "phase_split": phase_split,
        "metrics_overhead": {
            "enabled_qps": metrics_on_qps,
            "disabled_qps": metrics_off_qps,
            "overhead_fraction": metrics_overhead,
        },
        "identical_candidate_sets": True,
    })

    if QUICK:
        # Smoke run: speedup ratios on a tiny dataset are dominated by
        # constant overheads, so only the identity assertions above gate.
        return
    assert scan_speedup >= 3.0, (
        f"r=4 filtering scan speedup {scan_speedup:.2f}x below the 3x target"
    )
    assert many_qps > loop_qps, "fused batch filter slower than per-query loop"
    assert batch_qps >= 0.9 * seq_qps, "batch pipeline regressed end-to-end"
    assert cascade_speedup >= 2.0, (
        f"ranking-cascade end-to-end speedup {cascade_speedup:.2f}x below "
        "the 2x target vs the exact per-candidate EMD path"
    )
    assert metrics_overhead < 0.05, (
        f"metrics-enabled query path {metrics_overhead * 100:.2f}% slower "
        f"than disabled (budget: 5%)"
    )


if __name__ == "__main__":
    test_query_throughput()
