"""Microbenchmarks for the storage substrate (the Berkeley DB substitute).

Not a paper table — the paper leans on Berkeley DB for transactional
metadata (section 4.1.3) and these benches quantify what our embedded
store delivers: transactional put throughput under the relaxed (batch)
fsync policy the paper describes, keyed reads through the B-tree, range
scans, and metadata-manager object round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ObjectSignature
from repro.metadata import MetadataManager
from repro.storage import KVStore


@pytest.fixture()
def store(tmp_path):
    s = KVStore(str(tmp_path / "bench"), sync_policy="batch",
                auto_checkpoint_ops=0)
    yield s
    s.close()


def test_bench_kv_put(store, benchmark):
    counter = iter(range(10_000_000))

    def put():
        i = next(counter)
        store.put("t", f"{i:012d}".encode(), b"v" * 100)

    benchmark(put)


def test_bench_kv_get(store, benchmark):
    for i in range(2000):
        store.put("t", f"{i:06d}".encode(), b"v" * 100)
    rng = np.random.default_rng(0)
    keys = [f"{int(i):06d}".encode() for i in rng.integers(0, 2000, 256)]
    key_iter = iter(keys * 10_000)

    benchmark(lambda: store.get("t", next(key_iter)))


def test_bench_kv_scan(store, benchmark):
    for i in range(2000):
        store.put("t", f"{i:06d}".encode(), b"v" * 50)

    def scan():
        assert len(store.items("t", start=b"000500", end=b"001500")) == 1000

    benchmark(scan)


def test_bench_txn_commit(store, benchmark):
    counter = iter(range(10_000_000))

    def commit_batch():
        base = next(counter) * 10
        with store.begin() as txn:
            for j in range(10):
                txn.put("t", f"{base + j:012d}".encode(), b"v" * 64)

    benchmark(commit_batch)


def test_bench_checkpoint(tmp_path, benchmark):
    s = KVStore(str(tmp_path / "ckpt"), auto_checkpoint_ops=0)
    for i in range(500):
        s.put("t", f"{i:06d}".encode(), b"v" * 200)
    counter = iter(range(10_000_000))

    def touch_and_checkpoint():
        s.put("t", f"x{next(counter)}".encode(), b"y")
        s.checkpoint()

    benchmark(touch_and_checkpoint)
    s.close()


def test_bench_metadata_put_object(tmp_path, benchmark):
    manager = MetadataManager(str(tmp_path / "meta"), auto_checkpoint_ops=0)
    rng = np.random.default_rng(1)
    signature = ObjectSignature(rng.random((10, 14)), rng.random(10) + 0.1)
    sketches = rng.integers(0, 2**63, size=(10, 2), dtype=np.uint64)
    counter = iter(range(10_000_000))

    benchmark(
        lambda: manager.put_object(
            next(counter), signature, sketches, {"name": "bench"}
        )
    )
    manager.close()


def test_bench_sketch_scan(benchmark):
    """The filtering inner loop: Hamming scan over a big sketch matrix."""
    from repro.core.bitvector import hamming_to_many

    rng = np.random.default_rng(2)
    database = rng.integers(0, 2**63, size=(100_000, 2), dtype=np.uint64)
    query = database[0]

    benchmark(hamming_to_many, query, database)


def test_bench_emd(benchmark):
    """One exact EMD between two 10-segment objects (the ranking cost)."""
    from repro.core import emd

    rng = np.random.default_rng(3)
    a = ObjectSignature(rng.random((10, 14)), rng.random(10) + 0.1)
    b = ObjectSignature(rng.random((11, 14)), rng.random(11) + 0.1)
    benchmark(emd, a, b)
