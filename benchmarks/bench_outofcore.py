"""Extension bench: out-of-core filtering vs the in-memory engine.

The paper's future work targets "out-of-core indexing data structures
... to further improve support for very large data sets".  This bench
runs the disk-resident sketch scan (bounded-memory blocked streaming
through the transactional store) against the in-memory engine on the
same data: result equivalence, per-query latency, and the block-size
sensitivity of the streaming scan.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    DataTypePlugin,
    EMDDistance,
    FeatureMeta,
    FilterParams,
    SearchMethod,
    SimilaritySearchEngine,
    SketchConstructor,
    SketchParams,
)
from repro.metadata import MetadataManager, OutOfCoreSearcher, OutOfCoreSketchStore

from bench_common import scaled, write_result


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """One metadata store + one in-memory engine over identical data."""
    tmp = tmp_path_factory.mktemp("ooc-bench")
    meta = FeatureMeta(14, np.zeros(14), np.ones(14))
    sketcher = SketchConstructor(SketchParams(96, meta, seed=1))
    manager = MetadataManager(str(tmp / "store"), auto_checkpoint_ops=50_000)
    params = FilterParams(num_query_segments=4, candidates_per_segment=32)
    searcher = OutOfCoreSearcher(
        manager,
        OutOfCoreSketchStore(manager.store, sketcher.n_words, block_size=2048),
        sketcher,
        EMDDistance(),
        params,
    )
    engine = SimilaritySearchEngine(
        DataTypePlugin("ooc", meta), SketchParams(96, meta, seed=1), params
    )
    rng = np.random.default_rng(0)
    count = scaled(1200, 10_000)
    from repro.core import ObjectSignature

    for i in range(count):
        k = max(1, int(rng.poisson(6)))
        sig = ObjectSignature(rng.random((k, 14)), rng.random(k) + 0.1)
        searcher.insert(i, sig)
        engine.insert(
            ObjectSignature(sig.features.copy(), sig.weights.copy(), normalize=False)
        )
    manager.checkpoint()
    yield manager, searcher, engine, count
    manager.close()


def test_outofcore_equivalence_and_latency(populated, benchmark):
    manager, searcher, engine, count = populated
    lines = [
        f"# out-of-core vs in-memory filtering ({count} objects)",
        f"{'path':>12} {'s/query':>9}",
    ]

    query = manager.get_object(7)
    ooc_ids = [r.object_id for r in searcher.query(query, top_k=10, exclude_self=True)]
    mem_ids = [
        r.object_id
        for r in engine.query_by_id(7, top_k=10, method=SearchMethod.FILTERING,
                                    exclude_self=True)
    ]
    # Same parameters => same candidates up to ties at the k-th nearest
    # segment (the two scans break Hamming ties in different orders), so
    # the heads must agree exactly and the tails must overlap heavily.
    assert ooc_ids[:3] == mem_ids[:3]
    assert len(set(ooc_ids) & set(mem_ids)) >= 8

    for label, run in (
        ("out-of-core", lambda: searcher.query(query, top_k=10, exclude_self=True)),
        ("in-memory", lambda: engine.query_by_id(
            7, top_k=10, method=SearchMethod.FILTERING, exclude_self=True)),
    ):
        started = time.perf_counter()
        for _ in range(3):
            run()
        lines.append(f"{label:>12} {(time.perf_counter() - started) / 3:>9.4f}")
    write_result("outofcore_vs_memory", lines)

    benchmark(searcher.query, query, 10)


def test_outofcore_block_size_sweep(populated, benchmark):
    """Streaming scan cost vs block size: tiny blocks pay per-batch
    overhead; past a few thousand entries the curve flattens."""
    manager, searcher, _engine, count = populated
    sketcher = searcher.sketcher
    query = manager.get_object(3)
    query_sketch = sketcher.sketch_many(query.features)[0]

    lines = [f"# scan_nearest latency vs block size ({count} objects)",
             f"{'block':>7} {'s/scan':>9}"]
    timings = {}
    for block_size in (64, 512, 2048, 8192):
        store = OutOfCoreSketchStore(
            manager.store, sketcher.n_words, block_size=block_size
        )
        started = time.perf_counter()
        store.scan_nearest(query_sketch, k=32)
        elapsed = time.perf_counter() - started
        timings[block_size] = elapsed
        lines.append(f"{block_size:>7} {elapsed:>9.4f}")
    write_result("outofcore_block_size", lines)
    assert timings[2048] <= timings[64] * 1.5  # bigger blocks not slower

    store = OutOfCoreSketchStore(manager.store, sketcher.n_words, block_size=2048)
    benchmark(store.scan_nearest, query_sketch, 32)
