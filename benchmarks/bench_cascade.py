"""Extension bench: cascade ranking (filter -> sketch pre-rank -> exact EMD).

The paper's conclusion notes the improved EMD "is relatively inefficient
to compute" and plans "more efficiently computable distance functions".
Cascading inserts the cheap sketch-estimated object distance between the
filter and the exact ranker, so only the best few candidates pay the
exact EMD.  This bench measures the latency/quality trade on the image
benchmark across cascade widths.
"""

from __future__ import annotations

import pytest

from repro.core import FilterParams, SearchMethod, SimilaritySearchEngine, SketchParams
from repro.evaltool import evaluate_engine
from repro.evaltool.benchmark import EvaluationResult
from repro.evaltool.metrics import QualityScores, score_query

import time

from bench_common import write_result


def _evaluate_with_cascade(engine, suite, cascade):
    """evaluate_engine doesn't thread the cascade arg; inline the loop."""
    import numpy as np

    scores = []
    total = 0.0
    for sim_set in suite.sets:
        qid = sim_set.query_id
        started = time.perf_counter()
        results = engine.query_by_id(
            qid, top_k=20, method=SearchMethod.FILTERING, exclude_self=True,
            cascade=cascade,
        )
        total += time.perf_counter() - started
        scores.append(
            score_query([r.object_id for r in results], sim_set.members, qid,
                        len(engine))
        )
    return QualityScores.mean(scores), total / len(suite.sets)


def test_cascade_tradeoff(image_quality_bench, benchmark):
    from repro.datatypes.image import make_image_plugin

    bench = image_quality_bench
    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(
        plugin,
        SketchParams(96, plugin.meta, seed=0),
        # A generous filter so the cascade has something to cut down.
        FilterParams(num_query_segments=6, candidates_per_segment=256,
                     threshold_fraction=None),
    )
    for obj in bench.dataset:
        engine.insert(obj)

    lines = [
        "# cascade width vs quality and latency (image benchmark)",
        f"{'cascade':>8} {'avg prec':>9} {'s/query':>9}",
    ]
    results = {}
    for cascade in (None, 64, 32, 16, 8):
        quality, per_query = _evaluate_with_cascade(engine, bench.suite, cascade)
        label = "off" if cascade is None else str(cascade)
        results[cascade] = (quality.average_precision, per_query)
        lines.append(f"{label:>8} {quality.average_precision:>9.3f} {per_query:>9.4f}")
    write_result("cascade_tradeoff", lines)

    # A moderate cascade must be faster than exact ranking of the full
    # candidate set while staying close in quality.
    assert results[32][1] < results[None][1]
    assert results[32][0] > 0.85 * results[None][0]

    benchmark(
        engine.query_by_id, bench.suite.sets[0].query_id, top_k=20,
        method=SearchMethod.FILTERING, exclude_self=True, cascade=32,
    )
