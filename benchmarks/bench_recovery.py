"""Recovery-time benchmarks: reopen cost as a function of WAL length.

Crash recovery replays every complete transaction in the live WAL
segment (docs/ROBUSTNESS.md), so recovery time should grow linearly
with the un-checkpointed tail.  These benches pin that curve — and
quantify what a checkpoint buys: recovery after a checkpoint only
replays the records logged since, so the same store with a recent
checkpoint reopens in near-constant time.

Recovery itself checkpoints (to shrink the next crash's window), so a
recovered directory has nothing left to replay; each measured round
therefore reopens a fresh copy of the crashed snapshot, restored by an
untimed setup step.

Run with ``pytest benchmarks/bench_recovery.py`` for the full
pytest-benchmark curves, or as a script (``python bench_recovery.py``)
for the CI gate: the script mode times WAL replay directly and writes
``BENCH_recovery.json`` with the ``recovery.replay_txns_per_sec``
series that ``check_regression.py --recovery`` holds to an absolute
floor.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

import pytest

from repro.storage import KVStore


def _populate(directory: str, num_txns: int, ops_per_txn: int = 4) -> None:
    """Commit ``num_txns`` transactions and close WITHOUT a checkpoint,
    leaving the whole history in the WAL for recovery to replay."""
    store = KVStore(directory, sync_policy="none", auto_checkpoint_ops=0)
    for i in range(num_txns):
        with store.begin() as txn:
            for j in range(ops_per_txn):
                key = f"k{(i * ops_per_txn + j) % 512:05d}".encode()
                txn.put("bench", key, b"v" * 64)
    store.close(checkpoint=False)


def _bench_reopen(benchmark, snapshot: str, workdir: str):
    def setup():
        shutil.rmtree(workdir, ignore_errors=True)
        shutil.copytree(snapshot, workdir)
        return (), {}

    def reopen():
        store = KVStore(workdir, auto_checkpoint_ops=0)
        report = store.last_recovery
        store.close(checkpoint=False)
        return report

    return benchmark.pedantic(reopen, setup=setup, rounds=10)


@pytest.mark.parametrize("num_txns", [100, 400, 1600])
def test_bench_recovery_vs_wal_length(tmp_path, benchmark, num_txns):
    """Reopen (replay the full WAL) for increasing WAL lengths."""
    snapshot = str(tmp_path / "snapshot")
    _populate(snapshot, num_txns)
    report = _bench_reopen(benchmark, snapshot, str(tmp_path / "work"))
    assert report is not None and report.transactions_replayed == num_txns


def test_bench_recovery_after_checkpoint(tmp_path, benchmark):
    """A checkpoint truncates the replay work: same data, short WAL."""
    snapshot = str(tmp_path / "snapshot")
    store = KVStore(snapshot, sync_policy="none", auto_checkpoint_ops=0)
    for i in range(1600):
        with store.begin() as txn:
            txn.put("bench", f"k{i % 512:05d}".encode(), b"v" * 64)
    store.checkpoint()
    # A small post-checkpoint tail keeps the replay path non-trivial.
    for i in range(20):
        with store.begin() as txn:
            txn.put("bench", f"t{i:05d}".encode(), b"v" * 64)
    store.close(checkpoint=False)

    report = _bench_reopen(benchmark, snapshot, str(tmp_path / "work"))
    assert report is not None and report.transactions_replayed == 20


def main() -> None:
    """Script mode: measure WAL replay throughput for the CI floor gate."""
    from bench_common import scaled, write_json, write_result

    num_txns = scaled(800, 3200, 200)
    ops_per_txn = 4
    rounds = 5
    rates = []
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = os.path.join(tmp, "snapshot")
        _populate(snapshot, num_txns, ops_per_txn)
        for round_index in range(rounds):
            workdir = os.path.join(tmp, f"work{round_index}")
            shutil.copytree(snapshot, workdir)
            started = time.perf_counter()
            store = KVStore(workdir, auto_checkpoint_ops=0)
            elapsed = time.perf_counter() - started
            report = store.last_recovery
            store.close(checkpoint=False)
            assert (
                report is not None
                and report.transactions_replayed == num_txns
            ), "recovery did not replay the expected WAL tail"
            rates.append(num_txns / elapsed)
    best = max(rates)
    write_result("recovery", [
        "# Crash recovery: WAL replay throughput (reopen of an",
        f"# unclean snapshot; {num_txns} txns x {ops_per_txn} ops, "
        f"best of {rounds})",
        "",
        f"replay throughput   {best:10.0f} txns/s",
        f"replay latency      {num_txns / best * 1e3:10.1f} ms "
        f"for the full tail",
    ])
    write_json("recovery", {
        "num_txns": num_txns,
        "ops_per_txn": ops_per_txn,
        "recovery": {
            "replay_txns_per_sec": best,
            "rounds": rounds,
            "all_rates": rates,
        },
    })


if __name__ == "__main__":
    main()
