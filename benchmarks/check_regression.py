"""Throughput regression gate over BENCH_query_throughput.json.

Compares a freshly produced ``bench_query_throughput`` JSON against a
baseline (normally the committed ``BENCH_query_throughput.json``) and
fails if any throughput series regressed by more than the tolerance.

Usage::

    python check_regression.py BASELINE.json CURRENT.json [--tolerance 0.15]
    python check_regression.py --recovery BENCH_recovery.json

The compared series are queries/sec figures, so *lower is worse*:

- ``end_to_end.exact_sequential_qps`` — query() loop, ranking cascade off
- ``end_to_end.sequential_qps``   — per-query engine.query() loop
- ``end_to_end.batched_qps``      — engine.query_many() pipeline
- ``batch_filter.fused_many_qps`` — fused multi-query filter scan

On top of the relative series, ``end_to_end.cascade_speedup`` (batched
cascade vs exact per-candidate ranking) is held to an absolute floor of
2.0x — the ranking-cascade PR's headline claim — independent of the
baseline.

``--recovery`` switches to the crash-recovery gate: a single
``BENCH_recovery.json`` (from ``python bench_recovery.py``) is held to
the absolute floors in ``RECOVERY_FLOOR_KEYS`` — no baseline, because
the WAL-replay rate is asserted outright, not relative to a prior run.

``--parallel`` gates a single ``BENCH_parallel_scan.json``: candidate
sets must be identical across backends, the batched dispatch must cost
at most one round trip per shard, and either the >= 2x speedup floor
holds (gate armed: >= 4 effective cores, >= 100k segments) or the run
carries an explicit ``speedup_gate_skipped_reason`` — a host that
cannot measure parallelism must say so, never silently disarm.

``--churn`` gates a single ``BENCH_index_churn.json`` (from
``bench_index_churn.py``): every measured insert batch must have become
visible through the delta path (``delta_loads >= batches`` and
``full_loads_after_warmup == 0``), and — when the timing gate is armed
— the per-batch refresh cost must not scale with total arena rows
(``refresh_scaling`` stays under ``scaling_limit`` even though the
large arena is several times the small one).  Quick-mode runs disarm
only the timing ratio, with an explicit skip reason; the counter
assertions always apply.

``--cluster-obs`` gates a single ``BENCH_cluster_obs.json`` (from
``bench_cluster_obs.py``): the stitched cross-node trace must carry a
subtree from every live shard, metric federation must see every
backend, and — when the overhead gate is armed — traced queries must
cost under ``overhead_limit_percent`` (5%) versus untraced ones.
Quick-mode runs disarm only the overhead ratio, with an explicit skip
reason; the trace/federation assertions always apply.

Machine-size drift is the obvious failure mode of comparing absolute
qps across runs, which is why the default tolerance is a generous 15%
and why the gate refuses to compare runs of different dataset sizes.
Exit status: 0 = within tolerance, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

THROUGHPUT_KEYS = (
    "end_to_end.exact_sequential_qps",
    "end_to_end.sequential_qps",
    "end_to_end.batched_qps",
    "batch_filter.fused_many_qps",
)

SHAPE_KEYS = ("num_objects", "num_queries", "n_bits")

# Absolute floors: (dotted key, minimum value).  Unlike the qps series
# these do not compare against the baseline — they assert the current
# run still delivers the claimed ratio on its own.
FLOOR_KEYS = (("end_to_end.cascade_speedup", 2.0),)

# Crash-recovery floors (--recovery mode).  Local runs replay ~14k
# txns/s; 1k leaves an order of magnitude of headroom for loaded CI
# boxes while still catching an accidentally quadratic replay path.
RECOVERY_FLOOR_KEYS = (("recovery.replay_txns_per_sec", 1000.0),)


def _lookup(payload: dict, dotted: str) -> Optional[float]:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def check(baseline: dict, current: dict, tolerance: float) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    for key in SHAPE_KEYS:
        if baseline.get(key) != current.get(key):
            failures.append(
                f"shape mismatch on {key!r}: baseline "
                f"{baseline.get(key)} vs current {current.get(key)} "
                "(runs are not comparable)"
            )
    if failures:
        return failures
    for key in THROUGHPUT_KEYS:
        base = _lookup(baseline, key)
        cur = _lookup(current, key)
        if base is None:
            failures.append(f"baseline missing series {key!r}")
            continue
        if cur is None:
            failures.append(f"current run missing series {key!r}")
            continue
        if base <= 0:
            failures.append(f"baseline {key!r} is non-positive ({base})")
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            drop = (base - cur) / base
            failures.append(
                f"{key}: {cur:.1f} qps is {drop * 100:.1f}% below "
                f"baseline {base:.1f} qps (tolerance {tolerance * 100:.0f}%)"
            )
    for key, floor in FLOOR_KEYS:
        cur = _lookup(current, key)
        if cur is None:
            failures.append(f"current run missing series {key!r}")
        elif cur < floor:
            failures.append(
                f"{key}: {cur:.2f} is below the absolute floor {floor:.2f}"
            )
    return failures


def check_recovery(current: dict) -> list:
    """Absolute-floor check of a BENCH_recovery.json payload."""
    failures = []
    for key, floor in RECOVERY_FLOOR_KEYS:
        cur = _lookup(current, key)
        if cur is None:
            failures.append(f"current run missing series {key!r}")
        elif cur < floor:
            failures.append(
                f"{key}: {cur:.0f} is below the absolute floor {floor:.0f}"
            )
    return failures


def check_parallel(current: dict) -> list:
    """Gate a BENCH_parallel_scan.json payload (no baseline)."""
    failures = []
    if current.get("identical_candidate_sets") is not True:
        failures.append(
            "identical_candidate_sets is not true: a parallel backend "
            "changed the scan's answer"
        )
    trips = _lookup(current, "dispatch_round_trips_per_batch")
    shards = _lookup(current, "shards")
    if trips is None or shards is None:
        failures.append(
            "missing dispatch_round_trips_per_batch/shards: cannot "
            "verify the one-round-trip dispatch claim"
        )
    elif not 0 < trips <= shards:
        failures.append(
            f"dispatch_round_trips_per_batch {trips:.1f} outside "
            f"(0, shards={shards:.0f}]: batched dispatch regressed "
            "to per-shard messaging"
        )
    target = _lookup(current, "speedup_target") or 2.0
    if current.get("speedup_gate_armed"):
        best = _lookup(current, "best_speedup")
        if best is None:
            failures.append("gate armed but best_speedup is missing")
        elif best < target:
            failures.append(
                f"best_speedup {best:.2f}x is below the {target:.1f}x "
                f"floor on {_lookup(current, 'effective_cores'):.0f} "
                "effective cores"
            )
    else:
        reason = current.get("speedup_gate_skipped_reason")
        if not isinstance(reason, str) or not reason.strip():
            failures.append(
                "speedup gate disarmed without a "
                "speedup_gate_skipped_reason — silent disarming is "
                "exactly what this gate forbids"
            )
    return failures


def check_churn(current: dict) -> list:
    """Gate a BENCH_index_churn.json payload (no baseline)."""
    failures = []
    delta = _lookup(current, "delta_loads")
    full = _lookup(current, "full_loads_after_warmup")
    batches = _lookup(current, "batches")
    if delta is None or full is None or batches is None:
        failures.append(
            "missing delta_loads/full_loads_after_warmup/batches: cannot "
            "verify that inserts became visible through the delta path"
        )
        return failures
    if delta < batches:
        failures.append(
            f"delta_loads {delta:.0f} < batches {batches:.0f}: some insert "
            "batches became visible without a delta load"
        )
    if full != 0:
        failures.append(
            f"full_loads_after_warmup is {full:.0f}: a warmed pool fell "
            "back to full snapshot reloads under insert churn"
        )
    limit = _lookup(current, "scaling_limit") or 4.0
    if current.get("scaling_gate_armed"):
        scaling = _lookup(current, "refresh_scaling")
        ratio = _lookup(current, "arena_ratio")
        if scaling is None or ratio is None:
            failures.append(
                "gate armed but refresh_scaling/arena_ratio is missing"
            )
        elif scaling > limit:
            failures.append(
                f"refresh_scaling {scaling:.2f}x exceeds the {limit:.1f}x "
                f"limit (arena grew {ratio:.1f}x): per-batch refresh cost "
                "is scaling with arena size again"
            )
    else:
        reason = current.get("scaling_gate_skipped_reason")
        if not isinstance(reason, str) or not reason.strip():
            failures.append(
                "scaling gate disarmed without a "
                "scaling_gate_skipped_reason — silent disarming is "
                "exactly what this gate forbids"
            )
    return failures


def check_cluster_obs(current: dict) -> list:
    """Gate a BENCH_cluster_obs.json payload (no baseline)."""
    failures = []
    nodes = _lookup(current, "trace_nodes")
    covered = _lookup(current, "trace_shards_covered")
    shards = _lookup(current, "shards")
    if nodes is None or covered is None or shards is None:
        failures.append(
            "missing trace_nodes/trace_shards_covered/shards: cannot "
            "verify the stitched cross-node trace"
        )
    elif covered < shards:
        failures.append(
            f"stitched trace covered {covered:.0f} of {shards:.0f} "
            "shards: a live shard contributed no subtree"
        )
    backends = _lookup(current, "backends")
    nodes_up = _lookup(current, "federated_nodes_up")
    if backends is None or nodes_up is None:
        failures.append(
            "missing backends/federated_nodes_up: cannot verify metric "
            "federation"
        )
    elif nodes_up < backends:
        failures.append(
            f"federation saw {nodes_up:.0f}/{backends:.0f} nodes on a "
            "healthy cluster"
        )
    limit = _lookup(current, "overhead_limit_percent") or 5.0
    if current.get("overhead_gate_armed"):
        overhead = _lookup(current, "cluster_obs.overhead_percent")
        if overhead is None:
            failures.append("gate armed but cluster_obs.overhead_percent missing")
        elif overhead > limit:
            failures.append(
                f"cluster_obs.overhead_percent {overhead:.2f}% exceeds "
                f"the {limit:.1f}% limit: tracing is no longer "
                "pay-only-when-sampled"
            )
    else:
        reason = current.get("overhead_gate_skipped_reason")
        if not isinstance(reason, str) or not reason.strip():
            failures.append(
                "overhead gate disarmed without an "
                "overhead_gate_skipped_reason — silent disarming is "
                "exactly what this gate forbids"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on query-throughput regression vs a baseline run"
    )
    parser.add_argument(
        "baseline",
        help="baseline BENCH_query_throughput.json "
        "(with --recovery: the BENCH_recovery.json to gate)",
    )
    parser.add_argument(
        "current", nargs="?", default=None,
        help="current BENCH_query_throughput.json (omit with --recovery)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed fractional drop per series (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--recovery", action="store_true",
        help="gate a BENCH_recovery.json against the absolute "
        "crash-recovery floors instead of comparing throughput runs",
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help="gate a BENCH_parallel_scan.json: identical candidate "
        "sets, batched dispatch bound, and the speedup floor (or an "
        "explicit skip reason)",
    )
    parser.add_argument(
        "--churn", action="store_true",
        help="gate a BENCH_index_churn.json: inserts become visible "
        "through delta loads only, and per-batch refresh cost must not "
        "scale with arena size",
    )
    parser.add_argument(
        "--cluster-obs", action="store_true",
        help="gate a BENCH_cluster_obs.json: stitched traces cover every "
        "shard, federation sees every node, and traced queries cost "
        "under the overhead limit (or an explicit skip reason)",
    )
    args = parser.parse_args(argv)

    if args.cluster_obs:
        if args.churn or args.parallel or args.recovery or args.current is not None:
            print(
                "error: --cluster-obs takes a single BENCH_cluster_obs.json",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                current = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.baseline}: {exc}", file=sys.stderr)
            return 2
        failures = check_cluster_obs(current)
        if failures:
            print("CLUSTER TELEMETRY REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"ok  stitched trace: {_lookup(current, 'trace_nodes'):.0f} node "
            f"subtrees over {_lookup(current, 'shards'):.0f} shards, "
            f"federation {_lookup(current, 'federated_nodes_up'):.0f}/"
            f"{_lookup(current, 'backends'):.0f} nodes"
        )
        if current.get("overhead_gate_armed"):
            print(
                f"ok  tracing overhead: "
                f"{_lookup(current, 'cluster_obs.overhead_percent'):.2f}% "
                f"(limit {_lookup(current, 'overhead_limit_percent'):.1f}%)"
            )
        else:
            print(
                "ok  overhead gate skipped: "
                f"{current.get('overhead_gate_skipped_reason')}"
            )
        return 0

    if args.churn:
        if args.parallel or args.recovery or args.current is not None:
            print(
                "error: --churn takes a single BENCH_index_churn.json",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                current = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.baseline}: {exc}", file=sys.stderr)
            return 2
        failures = check_churn(current)
        if failures:
            print("INDEX CHURN REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"ok  delta_loads: {_lookup(current, 'delta_loads'):.0f} "
            f"(>= {_lookup(current, 'batches'):.0f} batches), "
            "full_loads_after_warmup: 0"
        )
        if current.get("scaling_gate_armed"):
            print(
                f"ok  refresh_scaling: "
                f"{_lookup(current, 'refresh_scaling'):.2f}x "
                f"(limit {_lookup(current, 'scaling_limit'):.1f}x, arena "
                f"grew {_lookup(current, 'arena_ratio'):.1f}x)"
            )
        else:
            print(
                "ok  scaling gate skipped: "
                f"{current.get('scaling_gate_skipped_reason')}"
            )
        return 0

    if args.parallel:
        if args.recovery or args.current is not None:
            print(
                "error: --parallel takes a single BENCH_parallel_scan.json",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                current = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.baseline}: {exc}", file=sys.stderr)
            return 2
        failures = check_parallel(current)
        if failures:
            print("PARALLEL SCAN REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        best = _lookup(current, "best_speedup")
        trips = _lookup(current, "dispatch_round_trips_per_batch")
        shards = _lookup(current, "shards")
        print(
            f"ok  dispatch_round_trips_per_batch: {trips:.0f} "
            f"(<= {shards:.0f} shards)"
        )
        if current.get("speedup_gate_armed"):
            print(
                f"ok  best_speedup: {best:.2f}x "
                f"(floor {_lookup(current, 'speedup_target'):.1f}x)"
            )
        else:
            print(
                "ok  speedup gate skipped: "
                f"{current.get('speedup_gate_skipped_reason')}"
            )
        return 0

    if args.recovery:
        if args.current is not None:
            print(
                "error: --recovery takes a single BENCH_recovery.json",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                current = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.baseline}: {exc}", file=sys.stderr)
            return 2
        failures = check_recovery(current)
        if failures:
            print("RECOVERY REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        for key, floor in RECOVERY_FLOOR_KEYS:
            cur = _lookup(current, key)
            print(f"ok  {key}: {cur:.0f} (floor {floor:.0f})")
        return 0

    if args.current is None:
        print("error: CURRENT.json is required without --recovery", file=sys.stderr)
        return 2
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    payloads = []
    for path in (args.baseline, args.current):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payloads.append(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    baseline, current = payloads

    failures = check(baseline, current, args.tolerance)
    if failures:
        print("THROUGHPUT REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    for key in THROUGHPUT_KEYS:
        base, cur = _lookup(baseline, key), _lookup(current, key)
        delta = (cur - base) / base * 100.0
        print(f"ok  {key}: {cur:.1f} qps ({delta:+.1f}% vs baseline)")
    for key, floor in FLOOR_KEYS:
        cur = _lookup(current, key)
        print(f"ok  {key}: {cur:.2f} (floor {floor:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
