"""Ablation on the filtering unit's parameters.

The filter takes the ``r`` highest-weight query segments and keeps the
``k`` nearest database segments of each (within a weight-dependent
threshold).  This bench sweeps r and k on the image benchmark and
reports candidate-set size, recall of the gold-standard neighbors into
the candidate set, and end-to-end average precision — the trade-off a
system builder tunes with the performance evaluation tool (section 5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FilterParams, SearchMethod, SimilaritySearchEngine, SketchParams
from repro.core.filtering import sketch_filter
from repro.evaltool import evaluate_engine

from bench_common import write_result


@pytest.fixture(scope="module")
def image_engine(image_quality_bench):
    from repro.datatypes.image import make_image_plugin

    plugin = make_image_plugin()
    engine = SimilaritySearchEngine(plugin, SketchParams(96, plugin.meta, seed=0))
    for obj in image_quality_bench.dataset:
        engine.insert(obj)
    return engine


def _candidate_stats(engine, bench, params):
    """Average candidate-set size and gold-standard recall into it."""
    sizes, recalls = [], []
    for sim_set in bench.suite.sets:
        query = engine.get_object(sim_set.query_id)
        candidates = sketch_filter(
            query,
            engine.sketcher.sketch_many(query.features),
            engine._store,
            params,
            n_bits=engine.sketcher.n_bits,
        )
        sizes.append(len(candidates))
        targets = set(sim_set.members) - {sim_set.query_id}
        recalls.append(len(candidates & targets) / len(targets))
    return float(np.mean(sizes)), float(np.mean(recalls))


def test_ablation_filter_r_and_k(image_engine, image_quality_bench, benchmark):
    bench = image_quality_bench
    total = len(bench.dataset)
    lines = [
        "# filter parameter sweep (image benchmark, 96-bit sketches)",
        f"{'r':>3} {'k':>5} {'cand set':>9} {'frac':>6} {'recall':>7} {'avg prec':>9}",
    ]
    recall_by_k = {}
    for r in (1, 2, 4, 8):
        for k in (8, 32, 128):
            params = FilterParams(
                num_query_segments=r, candidates_per_segment=k,
                threshold_fraction=0.5,
            )
            avg_size, recall = _candidate_stats(image_engine, bench, params)
            image_engine.filter_params = params
            ap = evaluate_engine(
                image_engine, bench.suite, SearchMethod.FILTERING
            ).quality.average_precision
            lines.append(
                f"{r:>3} {k:>5} {avg_size:>9.1f} {avg_size / total:>6.2f} "
                f"{recall:>7.3f} {ap:>9.3f}"
            )
            recall_by_k.setdefault(r, {})[k] = recall
    write_result("ablation_filter_params", lines)

    # More candidates per segment => recall never decreases.
    for r, by_k in recall_by_k.items():
        assert by_k[8] <= by_k[32] + 1e-9
        assert by_k[32] <= by_k[128] + 1e-9

    params = FilterParams(num_query_segments=4, candidates_per_segment=32)
    query = image_engine.get_object(bench.suite.sets[0].query_id)
    sketches = image_engine.sketcher.sketch_many(query.features)
    benchmark(
        sketch_filter, query, sketches, image_engine._store, params,
        image_engine.sketcher.n_bits,
    )


def test_ablation_threshold_fraction(image_engine, image_quality_bench, benchmark):
    """The weight-dependent distance threshold trades candidate-set size
    against recall; disabling it (None) is the pure k-NN criterion."""
    bench = image_quality_bench
    total = len(bench.dataset)
    lines = [
        "# threshold_fraction sweep (r=4, k=32)",
        f"{'threshold':>10} {'cand set':>9} {'recall':>7}",
    ]
    sizes = {}
    # The k-NN criterion already keeps only very close sketches, so the
    # threshold binds at small fractions of the sketch width.
    for fraction in (0.02, 0.05, 0.1, 0.3, None):
        params = FilterParams(
            num_query_segments=4, candidates_per_segment=32,
            threshold_fraction=fraction,
        )
        avg_size, recall = _candidate_stats(image_engine, bench, params)
        sizes[fraction] = avg_size
        label = "none" if fraction is None else f"{fraction:.2f}"
        lines.append(f"{label:>10} {avg_size:>9.1f} {recall:>7.3f}")
    write_result("ablation_filter_threshold", lines)
    # Tighter thresholds cut the candidate set.
    assert sizes[0.02] <= sizes[0.1] <= sizes[None]
    benchmark(lambda: None)
