"""Cluster telemetry overhead bench: tracing must be (nearly) free.

The telemetry plane's bargain is that cross-node tracing is paid only
by sampled requests: an untraced query through the coordinator must not
slow down because the tracing machinery exists, and a traced query's
piggybacked span tree must cost noise, not milliseconds.  This bench
stands up a real in-process cluster (TCP backends behind a
:class:`~repro.cluster.coordinator.FerretCoordinator`), alternates
timed rounds of untraced and traced queries, and writes
``BENCH_cluster_obs.json`` for the ``check_regression.py
--cluster-obs`` gate:

- ``cluster_obs.overhead_percent`` — traced-vs-untraced qps penalty,
  held under ``overhead_limit_percent`` (5%) whenever the gate is
  armed (quick mode disarms it with an explicit skip reason: tiny
  corpora make per-query cost too noisy to ratio);
- correctness fields — every live shard contributed a subtree with
  engine stages to the stitched trace, untraced queries piggybacked
  nothing, and federation saw every node.

Run as a script (``python bench_cluster_obs.py``); honours
``FERRET_BENCH_SCALE=quick|default|full``.
"""

from __future__ import annotations

import time

from repro.cluster import ClusterConfig, FerretCoordinator
from repro.observability.context import TraceContext
from repro.server.commands import CommandProcessor
from repro.server.server import serve_background

BACKENDS = 4
SHARDS = 2
REPLICATION = 2


def _start_cluster(size: int):
    """Four TCP backends over deterministic demo corpora + coordinator.

    Returns ``(servers, coordinator, num_objects)`` — the demo builder
    rounds ``size`` to whole similarity groups, so the actual object
    count (ids ``0..n-1``) comes from the built engine, not ``size``.
    """
    from repro.datatypes import build_demo_engine

    servers = []
    endpoints = []
    num_objects = 0
    for _ in range(BACKENDS):
        engine, _plugin = build_demo_engine("sensor", size=size, seed=42)
        num_objects = len(engine)
        server = serve_background(CommandProcessor(engine))
        servers.append(server)
        endpoints.append(server.server_address)
    coordinator = FerretCoordinator(
        endpoints,
        num_shards=SHARDS,
        config=ClusterConfig(replication=REPLICATION, cache_entries=0),
    )
    return servers, coordinator, num_objects


def _timed_batch(coordinator, num_queries: int, size: int, traced: bool) -> float:
    """One timed batch; returns elapsed seconds."""
    started = time.perf_counter()
    for i in range(num_queries):
        ctx = TraceContext.generate() if traced else None
        coordinator.query(i % size, top_k=10, trace_context=ctx)
    return time.perf_counter() - started


def _assert_trace_correct(coordinator, size: int) -> dict:
    """One traced query must yield a stitched tree covering every shard."""
    ctx = TraceContext.generate()
    result = coordinator.query(1 % size, top_k=5, trace_context=ctx)
    assert not result.partial, "bench cluster unexpectedly degraded"
    tree = coordinator.trace_store.get(ctx.trace_id)
    assert tree is not None, "traced query stored no stitched trace"
    nodes = tree.get("nodes", {})
    shards_covered = {int(key.split(".")[0]) for key in nodes}
    assert shards_covered == set(range(SHARDS)), (
        f"stitched trace covers shards {sorted(shards_covered)}, "
        f"expected all of {list(range(SHARDS))}"
    )
    for key, subtree in nodes.items():
        stages = set(subtree.get("stages", {}))
        assert {"filter", "rank"} <= stages, (
            f"node {key} subtree is missing engine stages: {sorted(stages)}"
        )
    return {"trace_nodes": len(nodes), "trace_shards_covered": len(shards_covered)}


def main() -> None:
    from bench_common import QUICK, scaled, write_json, write_result

    size = scaled(48, 96, 24)
    batch = scaled(25, 50, 10)
    # Loopback-TCP timings drift over seconds (scheduler, GC, thermal);
    # fine-grained alternating batches make the drift hit both modes
    # equally, so the 5% gate measures tracing cost, not the drift.
    pairs = scaled(12, 20, 4)
    num_queries = batch * pairs

    servers, coordinator, size = _start_cluster(size)
    try:
        # Warm up connections, sketch pools, and code paths on both modes.
        _timed_batch(coordinator, batch, size, traced=False)
        _timed_batch(coordinator, batch, size, traced=True)

        stored_before = len(coordinator.trace_store)
        off_seconds = on_seconds = 0.0
        for _ in range(pairs):
            off_seconds += _timed_batch(coordinator, batch, size, False)
            on_seconds += _timed_batch(coordinator, batch, size, True)
        qps_off = num_queries / off_seconds
        qps_on = num_queries / on_seconds
        overhead = max(0.0, (qps_off - qps_on) / qps_off * 100.0)

        # Untraced rounds must not have stored traces; traced ones must.
        stored = len(coordinator.trace_store)
        assert stored > stored_before, "traced rounds stored no traces"

        trace_facts = _assert_trace_correct(coordinator, size)

        nodes_up = coordinator.collect_node_metrics()
        assert nodes_up == BACKENDS, (
            f"federation saw {nodes_up}/{BACKENDS} nodes on a healthy cluster"
        )
    finally:
        coordinator.close()
        for server in servers:
            server.shutdown()
            server.server_close()

    armed = not QUICK
    payload = {
        "backends": BACKENDS,
        "shards": SHARDS,
        "replication": REPLICATION,
        "num_objects": size,
        "num_queries": num_queries,
        "pairs": pairs,
        "cluster_obs": {
            "qps_trace_off": qps_off,
            "qps_trace_on": qps_on,
            "overhead_percent": overhead,
        },
        "overhead_limit_percent": 5.0,
        "overhead_gate_armed": armed,
        "federated_nodes_up": nodes_up,
        **trace_facts,
    }
    if not armed:
        payload["overhead_gate_skipped_reason"] = (
            "quick mode: corpus too small for a stable qps ratio"
        )
    write_result("cluster_obs", [
        "# Cluster telemetry overhead: traced vs untraced scatter/gather",
        f"# ({BACKENDS} backends, {SHARDS} shards x R{REPLICATION}, "
        f"{size} objects/node, {pairs} alternating pairs x {batch})",
        "",
        f"untraced   {qps_off:8.1f} qps",
        f"traced     {qps_on:8.1f} qps",
        f"overhead   {overhead:8.2f} %",
        f"trace nodes stitched   {trace_facts['trace_nodes']}",
        f"federated nodes up     {nodes_up}/{BACKENDS}",
    ])
    write_json("cluster_obs", payload)


if __name__ == "__main__":
    main()
