"""Shared helpers for the benchmark harness (imported by bench modules)."""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

SCALE = os.environ.get("FERRET_BENCH_SCALE", "default")

# Quick mode (FERRET_BENCH_SCALE=quick) shrinks every bench to a smoke
# run: CI's `make rank-smoke` uses it to produce the phase-split JSON in
# seconds.  Perf gates are skipped in quick mode (tiny datasets make
# speedup ratios meaningless); correctness assertions still run.
QUICK = SCALE == "quick"


def scaled(default: int, full: int, quick: int = None) -> int:
    """Pick a dataset size: quick smoke vs scaled-down default vs
    paper-sized full run."""
    if SCALE == "full":
        return full
    if QUICK:
        return quick if quick is not None else max(1, default // 8)
    return default


def write_result(name: str, lines) -> None:
    """Persist a table/series under benchmarks/results/<name>.txt and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(str(line) for line in lines) + "\n"
    path.write_text(text, encoding="utf-8")
    print()
    print(text)


def write_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result as BENCH_<name>.json at the repo
    root (where CI and the driver pick it up) and print the path.

    Quick-mode runs write BENCH_<name>_quick.json instead so a smoke run
    can never clobber the committed baseline."""
    suffix = "_quick" if QUICK else ""
    path = REPO_ROOT / f"BENCH_{name}{suffix}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {path}")


def build_engine(plugin, n_bits, filter_params=None, seed=0):
    from repro.core import FilterParams, SimilaritySearchEngine, SketchParams

    return SimilaritySearchEngine(
        plugin,
        SketchParams(n_bits, plugin.meta, seed=seed),
        filter_params
        or FilterParams(num_query_segments=4, candidates_per_segment=64),
    )
