"""Figure 8 — query performance of the three search methods vs dataset size.

Regenerates the paper's Figure 8: for each data type, sweep the dataset
size and measure per-query time for BruteForceOriginal, BruteForceSketch
and Filtering.

Expected shapes (section 6.3.3):
- BruteForceOriginal grows linearly and is the slowest for multi-segment
  data (EMD per object dominates).
- BruteForceSketch also grows linearly; the gap over BruteForceOriginal
  tracks the compression ratio — small for images (5:1, "almost no
  performance improvement"), large for shapes (22:1, ~4x in the paper).
- Filtering is fastest: it scans compact sketches and ranks only a small
  candidate set.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import FilterParams, SearchMethod, meta_from_dataset
from repro.datatypes.bulk import (
    bulk_audio_dataset,
    bulk_image_dataset,
    bulk_shape_dataset,
)

from bench_common import build_engine, scaled, write_result

_METHODS = [
    SearchMethod.BRUTE_FORCE_ORIGINAL,
    SearchMethod.BRUTE_FORCE_SKETCH,
    SearchMethod.FILTERING,
]


def _panel(name, plugin_factory, dataset_factory, sizes, n_bits, num_queries=3):
    """Measure all methods at each size; returns {method: [times]}."""
    lines = [
        f"# Figure 8 panel: {name} ({n_bits}-bit sketches)",
        f"{'objects':>8} " + " ".join(f"{m.value:>22}" for m in _METHODS),
    ]
    times = {m: [] for m in _METHODS}
    full = dataset_factory(max(sizes))
    plugin = plugin_factory(full)
    for size in sizes:
        engine = build_engine(
            plugin, n_bits=n_bits,
            filter_params=FilterParams(candidates_per_segment=32),
        )
        for oid in sorted(full.objects)[:size]:
            engine.insert(full[oid])
        rng = np.random.default_rng(0)
        query_ids = rng.choice(size, num_queries, replace=False)
        row = [f"{size:>8}"]
        for method in _METHODS:
            started = time.perf_counter()
            for qid in query_ids:
                engine.query_by_id(int(qid), top_k=20, method=method,
                                   exclude_self=True)
            per_query = (time.perf_counter() - started) / num_queries
            times[method].append(per_query)
            row.append(f"{per_query:>22.4f}")
        lines.append(" ".join(row))
    write_result(f"fig8_{name}", lines)
    return times


def _assert_figure8_shapes(times, sizes, multi_segment):
    brute = times[SearchMethod.BRUTE_FORCE_ORIGINAL]
    filt = times[SearchMethod.FILTERING]
    # Brute force grows with dataset size (roughly linear).
    assert brute[-1] > brute[0]
    growth = brute[-1] / max(brute[0], 1e-9)
    size_growth = sizes[-1] / sizes[0]
    assert growth > 0.3 * size_growth
    # Filtering is fastest at the largest size.
    assert filt[-1] < brute[-1]


@pytest.fixture(scope="module")
def _clean_ids():
    # Bulk datasets assign ids 0..n-1; re-slicing keeps prefixes valid.
    return None


def test_fig8_image(benchmark):
    from repro.datatypes.image import make_image_plugin

    sizes = [scaled(s, f) for s, f in ((250, 2000), (500, 8000), (1000, 30000), (2000, 100000))]
    times = _panel(
        "image",
        lambda ds: make_image_plugin(),
        lambda n: bulk_image_dataset(n, seed=4),
        sizes,
        n_bits=96,
    )
    _assert_figure8_shapes(times, sizes, multi_segment=True)

    # The 5:1 image ratio gives little sketch-vs-original speedup (the
    # paper's first observation) — both are within a small factor.
    sketch = times[SearchMethod.BRUTE_FORCE_SKETCH][-1]
    brute = times[SearchMethod.BRUTE_FORCE_ORIGINAL][-1]
    assert sketch < 3 * brute

    dataset = bulk_image_dataset(sizes[0], seed=4)
    from repro.datatypes.image import make_image_plugin as mk

    engine = build_engine(mk(), n_bits=96)
    for obj in dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, 0, top_k=20, method=SearchMethod.FILTERING,
              exclude_self=True)


def test_fig8_audio(benchmark):
    from repro.datatypes.audio import make_audio_plugin

    sizes = [scaled(s, f) for s, f in ((250, 1000), (500, 2500), (1000, 6300))]
    times = _panel(
        "audio",
        lambda ds: make_audio_plugin(meta_from_dataset(ds)),
        lambda n: bulk_audio_dataset(n, seed=5),
        sizes,
        n_bits=600,
    )
    _assert_figure8_shapes(times, sizes, multi_segment=True)

    dataset = bulk_audio_dataset(sizes[0], seed=5)
    from repro.datatypes.audio import make_audio_plugin as mk

    engine = build_engine(mk(meta_from_dataset(dataset)), n_bits=600)
    for obj in dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, 0, top_k=20, method=SearchMethod.FILTERING,
              exclude_self=True)


def test_fig8_shape(benchmark):
    from repro.datatypes.shape import make_shape_plugin

    sizes = [scaled(s, f) for s, f in ((1000, 5000), (2500, 10000), (5000, 20000), (10000, 40000))]
    times = _panel(
        "shape",
        lambda ds: make_shape_plugin(meta_from_dataset(ds)),
        lambda n: bulk_shape_dataset(n, seed=6),
        sizes,
        n_bits=800,
        num_queries=5,
    )
    _assert_figure8_shapes(times, sizes, multi_segment=False)

    # The 22:1 shape ratio makes sketch scans clearly faster than
    # full-vector brute force (the paper measured ~4x).
    sketch = times[SearchMethod.BRUTE_FORCE_SKETCH][-1]
    brute = times[SearchMethod.BRUTE_FORCE_ORIGINAL][-1]
    assert sketch < brute

    dataset = bulk_shape_dataset(sizes[0], seed=6)
    from repro.datatypes.shape import make_shape_plugin as mk

    engine = build_engine(mk(meta_from_dataset(dataset)), n_bits=800)
    for obj in dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, 0, top_k=20, method=SearchMethod.FILTERING,
              exclude_self=True)
