"""Ablations on the sketch construction (Algorithms 1 and 2).

Two design choices the paper highlights:

1. **K (threshold control / XOR folding)** — K>1 dampens large distances
   to limit the influence of outliers.  We measure (a) the distance-
   dampening effect directly and (b) retrieval quality across K on the
   image benchmark.
2. **Weighted dimension sampling** — Algorithm 1 samples dimension ``i``
   with probability proportional to ``w_i * (max_i - min_i)``.  We
   compare against uniform dimension sampling on a feature space with
   wildly uneven ranges (the shape descriptor) to show why the weighting
   matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FeatureMeta,
    SearchMethod,
    SketchConstructor,
    SketchParams,
    meta_from_dataset,
)
from repro.evaltool import evaluate_engine

from bench_common import build_engine, write_result


def test_ablation_k_xor_dampening(benchmark):
    """Direct measurement: the far/near Hamming ratio shrinks with K."""
    meta = FeatureMeta(8, np.zeros(8), np.ones(8))
    near = (np.zeros(8), np.full(8, 0.04))
    far = (np.zeros(8), np.full(8, 0.75))
    lines = ["# K-XOR dampening: Hamming(far)/Hamming(near) vs K",
             f"{'K':>3} {'near':>7} {'far':>7} {'ratio':>7}"]
    ratios = []
    for k in (1, 2, 3, 4):
        sk = SketchConstructor(SketchParams(4096, meta, k_xor=k, seed=7))
        h_near = sk.hamming(sk.sketch(near[0]), sk.sketch(near[1]))
        h_far = sk.hamming(sk.sketch(far[0]), sk.sketch(far[1]))
        ratio = h_far / max(h_near, 1)
        ratios.append(ratio)
        lines.append(f"{k:>3} {h_near:>7} {h_far:>7} {ratio:>7.1f}")
    write_result("ablation_k_dampening", lines)
    # Monotone dampening: each extra XOR fold compresses the far range.
    assert ratios == sorted(ratios, reverse=True)

    sk = SketchConstructor(SketchParams(4096, meta, k_xor=2, seed=7))
    benchmark(sk.sketch, near[1])


def test_ablation_k_xor_quality(image_quality_bench, benchmark):
    """Retrieval quality across K at a fixed 96-bit budget."""
    from repro.datatypes.image import make_image_plugin

    bench = image_quality_bench
    plugin = make_image_plugin()
    lines = ["# image avg precision vs K (96-bit sketches, sketch-only search)",
             f"{'K':>3} {'avg precision':>14}"]
    quality = {}
    for k in (1, 2, 3, 4):
        from repro.core import FilterParams, SimilaritySearchEngine

        engine = SimilaritySearchEngine(
            plugin, SketchParams(96, plugin.meta, k_xor=k, seed=0)
        )
        for obj in bench.dataset:
            engine.insert(obj)
        ap = evaluate_engine(
            engine, bench.suite, SearchMethod.BRUTE_FORCE_SKETCH
        ).quality.average_precision
        quality[k] = ap
        lines.append(f"{k:>3} {ap:>14.3f}")
    write_result("ablation_k_quality", lines)
    # All K settings must produce a usable sketch (sanity floor), and
    # the best K should not be wildly ahead — the paper treats K as a
    # dataset-dependent tuning knob, not a cliff.
    assert min(quality.values()) > 0.2
    benchmark(lambda: None)


def test_ablation_weighted_dimension_sampling(shape_quality_bench, benchmark):
    """Algorithm 1's range-weighted sampling vs uniform dimension sampling.

    With *calibrated* bounds, per-dimension ranges already track the
    informative spread, and on the SHD space the range-weighted rule
    over-invests bits in the high-variance degree-0 dimensions; uniform
    sampling spreads bits across the discriminative higher degrees and
    measures slightly better.  (On uncalibrated static bounds, weighted
    sampling is what keeps sketches usable at all — see the calibration
    discussion in docs/PLUGIN_GUIDE.md.)  Both configurations must stay
    functional; the delta is the finding this bench reports.
    """
    bench = shape_quality_bench
    meta = meta_from_dataset(bench.dataset)
    # Uniform sampling = equal weighted range per dimension: encode as
    # weights 1/range so w_i * range_i is constant.
    uniform_meta = FeatureMeta(
        meta.dim, meta.min_values, meta.max_values,
        weights=1.0 / np.maximum(meta.ranges, 1e-12),
    )
    from repro.datatypes.shape import make_shape_plugin

    lines = ["# shape avg precision: weighted vs uniform dimension sampling",
             f"{'sampling':>10} {'avg precision':>14}"]
    results = {}
    for label, m in (("weighted", meta), ("uniform", uniform_meta)):
        plugin = make_shape_plugin(m)
        engine = build_engine(plugin, n_bits=256)
        for obj in bench.dataset:
            engine.insert(obj)
        ap = evaluate_engine(
            engine, bench.suite, SearchMethod.BRUTE_FORCE_SKETCH
        ).quality.average_precision
        results[label] = ap
        lines.append(f"{label:>10} {ap:>14.3f}")
    lines.append(f"delta (weighted - uniform): {results['weighted'] - results['uniform']:+.3f}")
    write_result("ablation_dim_sampling", lines)
    # Both sampling rules must deliver usable sketches at this budget.
    assert min(results.values()) > 0.5
    benchmark(lambda: None)


def test_ablation_seed_stability(shape_quality_bench, benchmark):
    """Reproducibility of sketch-based quality across random seeds.

    The (i, t) pairs are random; a sound configuration should deliver
    stable quality regardless of the seed.  Five seeds on the shape
    benchmark at the paper's 800 bits: the spread should be tight.
    """
    from repro.datatypes.shape import make_shape_plugin

    bench = shape_quality_bench
    meta = meta_from_dataset(bench.dataset)
    plugin = make_shape_plugin(meta)
    lines = ["# shape avg precision across sketch seeds (800 bits)",
             f"{'seed':>5} {'avg precision':>14}"]
    values = []
    for seed in range(5):
        engine = build_engine(plugin, n_bits=800, seed=seed)
        for obj in bench.dataset:
            engine.insert(obj)
        ap = evaluate_engine(
            engine, bench.suite, SearchMethod.BRUTE_FORCE_SKETCH
        ).quality.average_precision
        values.append(ap)
        lines.append(f"{seed:>5} {ap:>14.3f}")
    spread = max(values) - min(values)
    lines.append(f"spread: {spread:.3f}")
    write_result("ablation_seed_stability", lines)
    assert spread < 0.15  # seeds are interchangeable at this bit budget
    benchmark(lambda: None)
