"""Table 1 — search-quality benchmark suite.

Regenerates the paper's Table 1: average precision, first tier, second
tier, feature-vector bits, sketch bits and the size ratio for the VARY
image benchmark (Ferret vs the SIMPLIcity-style baseline), the TIMIT
audio benchmark, and the PSB shape benchmark (Ferret vs the SHD l2
baseline).  Sketch sizes are the paper's: 96 / 600 / 800 bits.

Expected shape (paper): Ferret beats SIMPLIcity on images; Ferret's
sketched shape search matches the full-precision SHD baseline while
storing ~22x less metadata.
"""

from __future__ import annotations

import pytest

from repro.core import SearchMethod, meta_from_dataset
from repro.evaltool import evaluate_engine
from repro.evaltool.metrics import QualityScores, score_query
from repro.evaltool.stats import bootstrap_ci

from bench_common import build_engine, write_result

_HEADER = (
    f"{'benchmark':>14} {'method':>22} {'avg prec':>9} {'1st tier':>9} "
    f"{'2nd tier':>9} {'feat bits':>10} {'sketch bits':>12} {'ratio':>7}"
)


def _row(bench_name, method, quality, feat_bits, sketch_bits):
    ratio = f"{feat_bits / sketch_bits:.1f}:1" if sketch_bits else "n/a"
    return (
        f"{bench_name:>14} {method:>22} {quality.average_precision:>9.3f} "
        f"{quality.first_tier:>9.3f} {quality.second_tier:>9.3f} "
        f"{feat_bits:>10} {str(sketch_bits) if sketch_bits else 'n/a':>12} {ratio:>7}"
    )


def _baseline_quality(suite, query_fn, dataset_size):
    scores = []
    for sim_set in suite.sets:
        qid = sim_set.query_id
        result_ids = query_fn(qid)
        scores.append(score_query(result_ids, sim_set.members, qid, dataset_size))
    return QualityScores.mean(scores)


@pytest.fixture(scope="module")
def table1_rows():
    """Accumulates rows across the three data-type tests; the assembled
    table is written at module teardown (so it emits under
    ``--benchmark-only`` too, where a plain report test would be
    skipped)."""
    rows = [_HEADER]
    yield rows
    if len(rows) > 1:
        write_result("table1_quality", rows)


def test_table1_image(image_quality_bench, table1_rows, benchmark):
    from repro.datatypes.image import SimplicityBaseline, make_image_plugin

    bench = image_quality_bench
    plugin = make_image_plugin()
    engine = build_engine(plugin, n_bits=96)
    baseline = SimplicityBaseline()
    for obj in bench.dataset:
        engine.insert(obj)
        baseline.insert(obj.object_id, bench.images[obj.object_id])

    ferret = evaluate_engine(engine, bench.suite, SearchMethod.FILTERING)
    stats = engine.stats()
    ap_ci = bootstrap_ci([s.average_precision for s in ferret.per_query])
    table1_rows.append(
        _row("VARY image", "Ferret", ferret.quality,
             stats.feature_bits_per_vector, stats.sketch_bits_per_vector)
        + f"   AP CI {ap_ci}"
    )

    simplicity = _baseline_quality(
        bench.suite,
        lambda qid: [
            r.object_id
            for r in baseline.query(bench.images[qid], top_k=40, exclude_id=qid)
        ],
        len(bench.dataset),
    )
    table1_rows.append(
        _row("VARY image", "SIMPLIcity", simplicity, baseline.feature_bits, 0)
    )

    # Paper's shape: region-based Ferret beats the global baseline.
    assert ferret.quality.average_precision > simplicity.average_precision
    # Table 1's image ratio: 448 feature bits vs 96 sketch bits = 4.7:1.
    assert stats.feature_bits_per_vector == 448
    assert stats.compression_ratio == pytest.approx(4.67, rel=0.01)

    benchmark(engine.query_by_id, bench.suite.sets[0].query_id,
              top_k=20, method=SearchMethod.FILTERING, exclude_self=True)


def test_table1_audio(audio_quality_bench, table1_rows, benchmark):
    from repro.datatypes.audio import make_audio_plugin

    bench = audio_quality_bench
    meta = meta_from_dataset(bench.dataset)
    plugin = make_audio_plugin(meta)
    engine = build_engine(plugin, n_bits=600)
    for obj in bench.dataset:
        engine.insert(obj)

    ferret = evaluate_engine(engine, bench.suite, SearchMethod.FILTERING)
    stats = engine.stats()
    table1_rows.append(
        _row("TIMIT audio", "Ferret", ferret.quality,
             stats.feature_bits_per_vector, stats.sketch_bits_per_vector)
    )
    # Table 1: 6,144 feature bits (192 x 32), 600-bit sketch, 10.2:1.
    assert stats.feature_bits_per_vector == 6_144
    assert stats.compression_ratio == pytest.approx(10.24, rel=0.01)
    # Audio search should be high quality (paper: 0.72 avg precision).
    assert ferret.quality.average_precision > 0.6

    benchmark(engine.query_by_id, bench.suite.sets[0].query_id,
              top_k=20, method=SearchMethod.FILTERING, exclude_self=True)


def test_table1_shape(shape_quality_bench, table1_rows, benchmark):
    from repro.datatypes.shape import ShdL2Baseline, make_shape_plugin

    bench = shape_quality_bench
    meta = meta_from_dataset(bench.dataset)
    plugin = make_shape_plugin(meta)
    engine = build_engine(plugin, n_bits=800)
    baseline = ShdL2Baseline()
    for obj in bench.dataset:
        engine.insert(obj)
        baseline.insert(obj.object_id, obj.features[0])

    ferret = evaluate_engine(engine, bench.suite, SearchMethod.BRUTE_FORCE_SKETCH)
    stats = engine.stats()
    table1_rows.append(
        _row("PSB 3D shape", "Ferret", ferret.quality,
             stats.feature_bits_per_vector, stats.sketch_bits_per_vector)
    )

    shd = _baseline_quality(
        bench.suite,
        lambda qid: [
            r.object_id
            for r in baseline.query(bench.dataset[qid].features[0], top_k=40,
                                    exclude_id=qid)
        ],
        len(bench.dataset),
    )
    table1_rows.append(_row("PSB 3D shape", "SHD", shd, baseline.feature_bits, 0))

    # Paper's shape: sketched Ferret ~ SHD full precision (within a few %),
    # while storing ~22x less metadata.
    assert ferret.quality.average_precision > 0.85 * shd.average_precision
    assert stats.compression_ratio == pytest.approx(21.76, rel=0.01)

    benchmark(engine.query_by_id, bench.suite.sets[0].query_id,
              top_k=20, method=SearchMethod.BRUTE_FORCE_SKETCH, exclude_self=True)


