"""Index-churn benchmark: insert-to-visible latency under sustained churn.

The online-maintenance PR's claim: making freshly inserted objects
visible to a parallel pool costs O(delta), not O(arena).  Before the
segmented arena + delta shipping, every insert invalidated the pool and
the next query paid a full snapshot reload — per-batch refresh cost
scaled linearly with total arena rows.

This bench measures that directly.  At two arena sizes (the large one
``ARENA_RATIO``x the small one) it runs B insert-batches, timing the
pool refresh that makes each batch visible, and reports

- ``refresh_scaling``  — median refresh cost at the large size over the
  small size.  Delta shipping keeps it near 1; a full-reload regression
  pushes it toward ``ARENA_RATIO``.
- ``delta_loads`` / ``full_loads_after_warmup`` — the counters that
  prove the equivalence came from the delta path, not silent reloads.
- ``churn.ops_per_sec`` — sustained insert/remove/query throughput with
  a refresh forced after every mutation.

``check_regression.py --churn BENCH_index_churn.json`` gates the
result; ``make bench-churn`` runs both steps.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from bench_common import QUICK, scaled, write_json, write_result

from repro.core import (
    DataTypePlugin,
    FeatureMeta,
    ObjectSignature,
    ParallelConfig,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.observability import metrics as _metrics

DIM = 8
N_BITS = 64
BACKEND = "thread"
NUM_WORKERS = 2
SEGS_PER_OBJECT = 2
ARENA_RATIO = 6

BASE_OBJECTS = scaled(2_000, 10_000, 200)
BATCHES = scaled(24, 48, 8)
BATCH_SIZE = 16
CHURN_OPS = scaled(300, 900, 60)

# Timing gates are meaningless on refresh costs of tens of microseconds:
# quick mode keeps the counter assertions but disarms the scaling ratio.
SCALING_LIMIT = 4.0


def _make_engine(seed: int) -> SimilaritySearchEngine:
    meta = FeatureMeta(DIM, np.zeros(DIM), np.ones(DIM))
    return SimilaritySearchEngine(
        DataTypePlugin("bench", meta),
        sketch_params=SketchParams(N_BITS, meta, seed=seed),
        parallel=ParallelConfig(
            num_workers=NUM_WORKERS,
            min_segments=0,
            backend=BACKEND,
            cache_entries=0,
        ),
    )


def _signature(rng, segs: int = SEGS_PER_OBJECT) -> ObjectSignature:
    return ObjectSignature(rng.random((segs, DIM)), rng.random(segs) + 0.1)


def _populate(engine: SimilaritySearchEngine, rng, count: int) -> None:
    for _ in range(count):
        engine.insert(_signature(rng))


def _measure_refresh(n_base: int, seed: int) -> dict:
    """Warm a pool over ``n_base`` objects, then time the per-batch
    refresh (``_ensure_pool``) that makes each insert batch visible."""
    engine = _make_engine(seed)
    rng = np.random.default_rng(seed)
    try:
        _populate(engine, rng, n_base)
        probe = _signature(rng)
        engine.query(probe, top_k=5)  # builds + fully loads the pool

        reg = _metrics.get_registry()
        full0 = reg.get("parallel.arena_loads").value
        delta0 = reg.get("arena.delta_loads").value

        refresh_s = []
        visible_s = []
        for _ in range(BATCHES):
            t_batch = time.perf_counter()
            for _ in range(BATCH_SIZE):
                engine.insert(_signature(rng))
            t0 = time.perf_counter()
            engine._ensure_pool(BACKEND)
            t1 = time.perf_counter()
            engine.query(probe, top_k=5)
            refresh_s.append(t1 - t0)
            visible_s.append(time.perf_counter() - t_batch)

        return {
            "rows": len(engine._store),
            "refresh_ms_median": statistics.median(refresh_s) * 1e3,
            "insert_to_visible_ms_median": statistics.median(visible_s) * 1e3,
            "delta_loads": reg.get("arena.delta_loads").value - delta0,
            "full_loads_after_warmup": reg.get("parallel.arena_loads").value
            - full0,
        }
    finally:
        engine.close()


def _measure_churn(seed: int) -> dict:
    """Sustained insert/remove churn with a query (= forced refresh)
    after every mutation; reports ops/sec."""
    engine = _make_engine(seed)
    rng = np.random.default_rng(seed)
    try:
        _populate(engine, rng, max(BASE_OBJECTS // 4, 16))
        probe = _signature(rng)
        engine.query(probe, top_k=5)
        live = sorted(engine._objects)
        t0 = time.perf_counter()
        for i in range(CHURN_OPS):
            if i % 3 == 2 and len(live) > 8:
                engine.remove(live.pop(0))
            else:
                live.append(engine.insert(_signature(rng)))
            engine.query(probe, top_k=5)
        elapsed = time.perf_counter() - t0
        return {"ops": CHURN_OPS, "ops_per_sec": CHURN_OPS / elapsed}
    finally:
        engine.close()


def main() -> None:
    small = _measure_refresh(BASE_OBJECTS, seed=11)
    large = _measure_refresh(BASE_OBJECTS * ARENA_RATIO, seed=12)
    churn = _measure_churn(seed=13)

    scaling = large["refresh_ms_median"] / max(
        small["refresh_ms_median"], 1e-6
    )
    gate_armed = not QUICK
    payload = {
        "backend": BACKEND,
        "num_workers": NUM_WORKERS,
        "n_bits": N_BITS,
        "batch_size": BATCH_SIZE,
        "batches": BATCHES * 2,  # measured at both arena sizes
        "arena_ratio": large["rows"] / small["rows"],
        "small": small,
        "large": large,
        "refresh_scaling": scaling,
        "scaling_limit": SCALING_LIMIT,
        "scaling_gate_armed": gate_armed,
        "delta_loads": small["delta_loads"] + large["delta_loads"],
        "full_loads_after_warmup": small["full_loads_after_warmup"]
        + large["full_loads_after_warmup"],
        "churn": churn,
    }
    if not gate_armed:
        payload["scaling_gate_skipped_reason"] = (
            "quick mode: refresh costs are tens of microseconds, the "
            "ratio is timer noise"
        )

    write_result(
        "index_churn",
        [
            f"arena rows            {small['rows']} -> {large['rows']}",
            f"refresh (small)       {small['refresh_ms_median']:.3f} ms",
            f"refresh (large)       {large['refresh_ms_median']:.3f} ms",
            f"refresh scaling       {scaling:.2f}x "
            f"(arena grew {payload['arena_ratio']:.1f}x)",
            f"insert-to-visible     {small['insert_to_visible_ms_median']:.3f}"
            f" / {large['insert_to_visible_ms_median']:.3f} ms",
            f"delta loads           {payload['delta_loads']}",
            f"full loads (warm)     {payload['full_loads_after_warmup']}",
            f"churn throughput      {churn['ops_per_sec']:.0f} ops/s "
            f"({churn['ops']} ops, refresh after every mutation)",
        ],
    )
    write_json("index_churn", payload)


if __name__ == "__main__":
    main()
