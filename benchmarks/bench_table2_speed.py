"""Table 2 — search-speed benchmark suite.

Regenerates the paper's Table 2: number of data objects, average
segments per object, and average search time for the Mixed image
dataset, the TIMIT audio dataset, and the Mixed 3D shape dataset, with
sketching and filtering turned on.

The paper ran 660k images / 6,300 utterances / 40k shapes on a 2006
Pentium 4; we run scaled-down populations with the same per-object
segment statistics (set FERRET_BENCH_SCALE=full for larger runs).
Expected shape: per-query time ordered image > audio > shape at equal
size — more segments per object means more sketch rows to scan and more
EMD work per candidate — and the single-segment shape dataset far
fastest, exactly Table 2's pattern.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import FilterParams, SearchMethod, meta_from_dataset
from repro.datatypes.bulk import (
    bulk_audio_dataset,
    bulk_image_dataset,
    bulk_shape_dataset,
)

from bench_common import build_engine, scaled, write_result

_HEADER = (
    f"{'benchmark':>14} {'objects':>8} {'avg segs/obj':>13} "
    f"{'avg search time (s)':>20}"
)

_NUM_QUERIES = 10


def _measure(engine, dataset, rows, label):
    rng = np.random.default_rng(0)
    query_ids = rng.choice(sorted(dataset.objects), _NUM_QUERIES, replace=False)
    started = time.perf_counter()
    for qid in query_ids:
        engine.query_by_id(int(qid), top_k=20, method=SearchMethod.FILTERING,
                           exclude_self=True)
    per_query = (time.perf_counter() - started) / _NUM_QUERIES
    rows.append(
        f"{label:>14} {len(dataset):>8} {dataset.avg_segments:>13.1f} "
        f"{per_query:>20.4f}"
    )
    return per_query


@pytest.fixture(scope="module")
def table2_rows():
    rows = [_HEADER]
    yield rows
    if len(rows) > 1:
        write_result("table2_speed", rows)


@pytest.fixture(scope="module")
def speed_results():
    return {}


def test_table2_image(table2_rows, speed_results, benchmark):
    from repro.datatypes.image import make_image_plugin

    dataset = bulk_image_dataset(scaled(3000, 20000), seed=1)
    plugin = make_image_plugin()
    engine = build_engine(plugin, n_bits=96,
                          filter_params=FilterParams(candidates_per_segment=32))
    for obj in dataset:
        engine.insert(obj)
    speed_results["image"] = _measure(engine, dataset, table2_rows, "Mixed image")
    benchmark(engine.query_by_id, 0, top_k=20, method=SearchMethod.FILTERING,
              exclude_self=True)


def test_table2_audio(table2_rows, speed_results, benchmark):
    from repro.datatypes.audio import make_audio_plugin

    dataset = bulk_audio_dataset(scaled(1500, 6300), seed=2)
    plugin = make_audio_plugin(meta_from_dataset(dataset))
    engine = build_engine(plugin, n_bits=600,
                          filter_params=FilterParams(candidates_per_segment=32))
    for obj in dataset:
        engine.insert(obj)
    speed_results["audio"] = _measure(engine, dataset, table2_rows, "TIMIT audio")
    benchmark(engine.query_by_id, 0, top_k=20, method=SearchMethod.FILTERING,
              exclude_self=True)


def test_table2_shape(table2_rows, speed_results, benchmark):
    from repro.datatypes.shape import make_shape_plugin

    dataset = bulk_shape_dataset(scaled(3000, 40000), seed=3)
    plugin = make_shape_plugin(meta_from_dataset(dataset))
    engine = build_engine(plugin, n_bits=800,
                          filter_params=FilterParams(candidates_per_segment=32))
    for obj in dataset:
        engine.insert(obj)
    speed_results["shape"] = _measure(engine, dataset, table2_rows, "Mixed 3D shape")
    benchmark(engine.query_by_id, 0, top_k=20, method=SearchMethod.FILTERING,
              exclude_self=True)

    # Table 2's pattern: multi-segment EMD ranking dominates, so the
    # single-segment shape dataset is by far the fastest per query.
    if "image" in speed_results:
        assert speed_results["shape"] < speed_results["image"]
