"""Figure 7 — average precision vs sketch size.

Regenerates the paper's Figure 7: for each data type, sweep the sketch
size (bits per feature vector) and measure average precision with
sketch-based brute-force search (filtering off, as in the paper), with
the original-feature-vector precision as the horizontal reference line.

Expected shape: a steep rise up to a *low knee*, a plateau within a few
percent of the original-vector line past a *high knee* (paper's knees:
64/88 bits image, 250/600 audio, 200/600 shape).  Each panel's series
plus the detected knees are written to benchmarks/results/.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.core import SearchMethod, meta_from_dataset
from repro.evaltool import evaluate_engine

from bench_common import build_engine, write_result

IMAGE_BITS = [16, 32, 48, 64, 88, 96, 128, 192, 256]
AUDIO_BITS = [50, 100, 250, 400, 600, 900, 1200]
SHAPE_BITS = [50, 100, 200, 400, 600, 800, 1200]


def _sweep(plugin, dataset, suite, bit_sizes) -> Tuple[List[Tuple[int, float]], float]:
    """Returns ([(bits, avg_precision)], original_vector_precision)."""
    engine = build_engine(plugin, n_bits=max(bit_sizes))
    for obj in dataset:
        engine.insert(obj)
    original = evaluate_engine(
        engine, suite, SearchMethod.BRUTE_FORCE_ORIGINAL
    ).quality.average_precision

    series = []
    for bits in bit_sizes:
        engine = build_engine(plugin, n_bits=bits)
        for obj in dataset:
            engine.insert(obj)
        ap = evaluate_engine(
            engine, suite, SearchMethod.BRUTE_FORCE_SKETCH
        ).quality.average_precision
        series.append((bits, ap))
    return series, original


def _knees(series, original):
    """Low knee: first size within 85% of the plateau; high knee: first
    size within 97% of the plateau (plateau = max measured precision)."""
    plateau = max(ap for _bits, ap in series)
    low = next(bits for bits, ap in series if ap >= 0.85 * plateau)
    high = next(bits for bits, ap in series if ap >= 0.97 * plateau)
    return low, high


def _report(name, series, original):
    lines = [f"# Figure 7 panel: {name}", f"{'bits':>6} {'avg precision':>14}"]
    for bits, ap in series:
        lines.append(f"{bits:>6} {ap:>14.3f}")
    low, high = _knees(series, original)
    lines.append(f"original feature vectors: {original:.3f}")
    lines.append(f"low knee ~{low} bits, high knee ~{high} bits")
    write_result(f"fig7_{name}", lines)
    return low, high


def test_fig7_image(image_quality_bench, benchmark):
    from repro.datatypes.image import make_image_plugin

    bench = image_quality_bench
    plugin = make_image_plugin()
    series, original = _sweep(plugin, bench.dataset, bench.suite, IMAGE_BITS)
    low, high = _report("image", series, original)

    # Shape of the curve: monotone-ish rise, plateau near the original line.
    assert series[0][1] < series[-1][1]
    assert series[-1][1] > 0.8 * original
    assert low <= high <= 256

    engine = build_engine(plugin, n_bits=96)
    for obj in bench.dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, bench.suite.sets[0].query_id, top_k=20,
              method=SearchMethod.BRUTE_FORCE_SKETCH, exclude_self=True)


def test_fig7_audio(audio_quality_bench, benchmark):
    from repro.datatypes.audio import make_audio_plugin

    bench = audio_quality_bench
    plugin = make_audio_plugin(meta_from_dataset(bench.dataset))
    series, original = _sweep(plugin, bench.dataset, bench.suite, AUDIO_BITS)
    low, high = _report("audio", series, original)
    assert series[0][1] < series[-1][1]
    assert series[-1][1] > 0.9 * original  # paper: 600 bits within ~4%

    engine = build_engine(plugin, n_bits=600)
    for obj in bench.dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, bench.suite.sets[0].query_id, top_k=20,
              method=SearchMethod.BRUTE_FORCE_SKETCH, exclude_self=True)


def test_fig7_shape(shape_quality_bench, benchmark):
    from repro.datatypes.shape import make_shape_plugin

    bench = shape_quality_bench
    plugin = make_shape_plugin(meta_from_dataset(bench.dataset))
    series, original = _sweep(plugin, bench.dataset, bench.suite, SHAPE_BITS)
    low, high = _report("shape", series, original)
    assert series[0][1] < series[-1][1]
    assert series[-1][1] > 0.9 * original  # paper: 800 bits within ~3%

    engine = build_engine(plugin, n_bits=800)
    for obj in bench.dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, bench.suite.sets[0].query_id, top_k=20,
              method=SearchMethod.BRUTE_FORCE_SKETCH, exclude_self=True)
