"""Extension bench: LSH indexing vs the paper's filtering approach.

Related work (section 7) contrasts Ferret's filtering with the
LSH *indexing* approach and the conclusion names better indexing
structures as future work.  This bench runs both on the image quality
benchmark: candidate-set sizes, gold-standard recall into the candidate
set, end-to-end average precision and per-query latency, across LSH
table counts.

Expected trade-off: LSH probes buckets instead of scanning all sketches,
so its candidate generation is cheaper at scale, but recall depends on
collision luck — filtering's exhaustive scan keeps recall higher at the
same candidate budget.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    FilterParams,
    LSHParams,
    SearchMethod,
    SimilaritySearchEngine,
    SketchParams,
)
from repro.evaltool import evaluate_engine

from bench_common import write_result


def _engine(plugin, lsh_params):
    return SimilaritySearchEngine(
        plugin,
        SketchParams(96, plugin.meta, seed=0),
        FilterParams(num_query_segments=4, candidates_per_segment=32),
        lsh_params=lsh_params,
    )


def test_lsh_vs_filtering(image_quality_bench, benchmark):
    from repro.datatypes.image import make_image_plugin

    bench = image_quality_bench
    plugin = make_image_plugin()
    lines = [
        "# LSH indexing vs filtering (image benchmark, 96-bit sketches)",
        f"{'method':>22} {'avg prec':>9} {'s/query':>9} {'avg cands':>10}",
    ]

    def avg_candidates(engine):
        sizes = []
        for sim_set in bench.suite.sets:
            query = engine.get_object(sim_set.query_id)
            sketches = engine.sketcher.sketch_many(query.features)
            sizes.append(len(engine.lsh_index.candidates(sketches)))
        return float(np.mean(sizes))

    results = {}
    # Wider keys => sparser buckets => fewer candidates but lower recall;
    # more tables buy recall back.  b must be sized against the typical
    # near-pair Hamming distance (tens of bits out of 96 here).
    configs = [
        ("filtering", None, SearchMethod.FILTERING),
        ("lsh L=8 b=16", LSHParams(8, 16, seed=3), SearchMethod.LSH),
        ("lsh L=8 b=24", LSHParams(8, 24, seed=3), SearchMethod.LSH),
        ("lsh L=24 b=24", LSHParams(24, 24, seed=3), SearchMethod.LSH),
        ("lsh L=8 b=32", LSHParams(8, 32, seed=3), SearchMethod.LSH),
    ]
    for label, lsh_params, method in configs:
        engine = _engine(plugin, lsh_params)
        for obj in bench.dataset:
            engine.insert(obj)
        evaluation = evaluate_engine(engine, bench.suite, method)
        cands = avg_candidates(engine) if lsh_params is not None else float("nan")
        results[label] = (evaluation, cands)
        lines.append(
            f"{label:>22} {evaluation.quality.average_precision:>9.3f} "
            f"{evaluation.avg_query_seconds:>9.4f} {cands:>10.1f}"
        )
    write_result("lsh_vs_filtering", lines)

    # Wider keys shrink the candidate set.
    assert results["lsh L=8 b=32"][1] <= results["lsh L=8 b=16"][1]
    # More tables at the same key width buy quality back.
    assert (
        results["lsh L=24 b=24"][0].quality.average_precision
        >= results["lsh L=8 b=24"][0].quality.average_precision - 0.05
    )

    engine = _engine(plugin, LSHParams(8, 12, seed=3))
    for obj in bench.dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, bench.suite.sets[0].query_id, top_k=20,
              method=SearchMethod.LSH, exclude_self=True)


def test_lsh_single_segment_shape(shape_quality_bench, benchmark):
    """Single-segment data is LSH's natural habitat: one sketch per
    object, no bucket-union blowup from shared common segments."""
    from repro.core import meta_from_dataset
    from repro.datatypes.shape import make_shape_plugin

    bench = shape_quality_bench
    meta = meta_from_dataset(bench.dataset)
    plugin = make_shape_plugin(meta)
    lines = [
        "# LSH vs filtering on single-segment shapes (800-bit sketches)",
        f"{'method':>22} {'avg prec':>9} {'avg cands':>10}",
    ]

    total = len(bench.dataset)
    results = {}
    configs = [
        ("filtering", None, SearchMethod.FILTERING),
        ("lsh L=8 b=32", LSHParams(8, 32, seed=5), SearchMethod.LSH),
        ("lsh L=8 b=64", LSHParams(8, 64, seed=5), SearchMethod.LSH),
        ("lsh L=32 b=64", LSHParams(32, 64, seed=5), SearchMethod.LSH),
    ]
    for label, lsh_params, method in configs:
        engine = SimilaritySearchEngine(
            plugin, SketchParams(800, plugin.meta, seed=0),
            FilterParams(num_query_segments=1, candidates_per_segment=32),
            lsh_params=lsh_params,
        )
        for obj in bench.dataset:
            engine.insert(obj)
        evaluation = evaluate_engine(engine, bench.suite, method)
        if lsh_params is not None:
            sizes = [
                len(engine.lsh_index.candidates(
                    engine.sketcher.sketch_many(
                        engine.get_object(s.query_id).features
                    )
                ))
                for s in bench.suite.sets
            ]
            cands = float(np.mean(sizes))
        else:
            cands = float("nan")
        results[label] = (evaluation.quality.average_precision, cands)
        lines.append(f"{label:>22} {results[label][0]:>9.3f} {cands:>10.1f}")
    write_result("lsh_vs_filtering_shape", lines)

    # The sparse regime: wide keys prune most of the dataset ...
    assert results["lsh L=8 b=64"][1] < total
    # ... and extra tables recover quality.
    assert results["lsh L=32 b=64"][0] >= results["lsh L=8 b=64"][0] - 0.05

    engine = SimilaritySearchEngine(
        plugin, SketchParams(800, plugin.meta, seed=0),
        lsh_params=LSHParams(8, 64, seed=5),
    )
    for obj in bench.dataset:
        engine.insert(obj)
    benchmark(engine.query_by_id, bench.suite.sets[0].query_id, top_k=20,
              method=SearchMethod.LSH, exclude_self=True)
