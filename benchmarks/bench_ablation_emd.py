"""Ablation on the object distance: thresholded EMD and sqrt weighting.

Section 4.2.2 / 5.1: the image system thresholds segment distances
before the EMD computation ("to reduce the impact of segment outliers")
and the CIKM'04 improvement adds a square-root segment weighting.  This
bench sweeps the threshold and toggles the weighting on the image
quality benchmark.
"""

from __future__ import annotations

import pytest

from repro.core import SearchMethod, SimilaritySearchEngine, SketchParams
from repro.evaltool import evaluate_engine

from bench_common import write_result


def _quality(bench, plugin):
    engine = SimilaritySearchEngine(plugin, SketchParams(96, plugin.meta, seed=0))
    for obj in bench.dataset:
        engine.insert(obj)
    return evaluate_engine(
        engine, bench.suite, SearchMethod.BRUTE_FORCE_ORIGINAL
    ).quality.average_precision


def test_ablation_emd_threshold(image_quality_bench, benchmark):
    from repro.datatypes.image import make_image_plugin

    bench = image_quality_bench
    lines = [
        "# thresholded EMD sweep (image benchmark, exact ranking)",
        f"{'threshold':>10} {'avg precision':>14}",
    ]
    results = {}
    for threshold in (0.6, 1.2, 2.4, 4.8, None):
        plugin = make_image_plugin(emd_threshold=threshold)
        ap = _quality(bench, plugin)
        results[threshold] = ap
        label = "none" if threshold is None else f"{threshold:.1f}"
        lines.append(f"{label:>10} {ap:>14.3f}")
    write_result("ablation_emd_threshold", lines)

    # The paper's claim: thresholding beats plain EMD by capping the
    # influence of outlier segments (background swaps, occlusions).
    best_thresholded = max(ap for t, ap in results.items() if t is not None)
    assert best_thresholded >= results[None]

    plugin = make_image_plugin()
    a = bench.dataset[0]
    b = bench.dataset[1]
    benchmark(plugin.obj_distance, a, b)


def test_ablation_sqrt_weighting(image_quality_bench, benchmark):
    from repro.datatypes.image import make_image_plugin

    bench = image_quality_bench
    lines = [
        "# sqrt segment weighting (image benchmark)",
        f"{'weighting':>12} {'avg precision':>14}",
    ]
    results = {}
    for sqrt_weighting in (False, True):
        plugin = make_image_plugin(sqrt_weighting=sqrt_weighting)
        ap = _quality(bench, plugin)
        results[sqrt_weighting] = ap
        label = "sqrt" if sqrt_weighting else "as-extracted"
        lines.append(f"{label:>12} {ap:>14.3f}")
    write_result("ablation_emd_sqrt", lines)
    # Our extractor already sqrt-weights by segment size, so the extra
    # transform should be roughly neutral — both must stay usable.
    assert min(results.values()) > 0.3
    benchmark(lambda: None)
