"""Parallel filtering scan backends vs the serial fused kernel.

Times the candidate-generation stage — the filtering scan over the
whole segment-sketch database — once per backend on the same snapshot:

1. serial fused scan (``sketch_filter_many``: one ``hamming_many_to_many``
   pass + vectorized deterministic selection),
2. the thread pool (``ThreadFilterPool``: zero-copy arena sharing,
   GIL-releasing ``np.bitwise_count`` kernel),
3. the process pool (``ParallelFilterPool``: shared-memory arena, one
   fused request/reply round trip per worker per batch).

Pools are sized from the scheduler affinity mask
(:func:`repro.core.available_cores`), not ``os.cpu_count()`` — a
container pinned to 2 of 64 cores must not spin up 64 workers and
oversubscribe itself into a slowdown.

Correctness is asserted on every run: all backends must produce
identical candidate sets (the deterministic smallest-row-wins tie rule
makes the shard merge exact).  The dispatch accounting is asserted too:
one batch through the process pool costs exactly ``num_workers``
round trips (never more than the shard count), whatever the batch size.

The >= 2x speedup gate only arms on hosts with at least 4 *effective*
cores and a database of at least 100k segments.  When it cannot arm,
the JSON carries an explicit ``speedup_gate_skipped_reason`` — a host
with no parallelism to measure reports *why* the gate is off instead of
silently disarming it.

Writes a human-readable table to benchmarks/results/ and the
machine-readable ``BENCH_parallel_scan.json`` at the repo root
(``python check_regression.py --parallel`` gates on it).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import (
    FilterParams,
    ObjectSignature,
    ParallelFilterPool,
    SegmentStore,
    ThreadFilterPool,
    available_cores,
    parallel_sketch_filter_many,
    sketch_filter_many,
)
from repro.core.parallel import hamming_kernel_releases_gil
from repro.observability import metrics as _metrics

from bench_common import QUICK, scaled, write_json, write_result

N_BITS = 256
N_WORDS = N_BITS // 64
SEGS_PER_OBJECT = 4
SPEEDUP_TARGET = 2.0
MIN_CORES_FOR_TARGET = 4
MIN_SEGMENTS_FOR_TARGET = 100_000


def _build_store(num_segments, seed=0):
    """Synthetic sketch database: the scan only reads packed words, so
    random sketches exercise exactly the measured code path."""
    rng = np.random.default_rng(seed)
    num_objects = num_segments // SEGS_PER_OBJECT
    store = SegmentStore(N_WORDS, dim=1, keep_features=False)
    feats = np.zeros((SEGS_PER_OBJECT, 1))
    for oid in range(num_objects):
        sketches = rng.integers(
            0, 2**64, size=(SEGS_PER_OBJECT, N_WORDS), dtype=np.uint64
        )
        store.add_object(oid, sketches, feats)
    return store, rng


def _make_queries(rng, num_queries):
    queries, sketches = [], []
    for qid in range(num_queries):
        queries.append(
            ObjectSignature(
                np.zeros((SEGS_PER_OBJECT, 1)),
                rng.random(SEGS_PER_OBJECT) + 0.1,
                object_id=10_000_000 + qid,
            )
        )
        sketches.append(
            rng.integers(
                0, 2**64, size=(SEGS_PER_OBJECT, N_WORDS), dtype=np.uint64
            )
        )
    return queries, sketches


def _time_batches(fn, repeats):
    out = fn()  # warm-up (and the correctness sample)
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) / repeats, out


def _skip_reason(effective_cores, num_segments):
    if effective_cores < MIN_CORES_FOR_TARGET:
        return (
            f"host exposes {effective_cores} effective core(s) "
            f"(affinity mask), gate needs >={MIN_CORES_FOR_TARGET}"
        )
    if num_segments < MIN_SEGMENTS_FOR_TARGET:
        return (
            f"database of {num_segments} segments is below the "
            f"{MIN_SEGMENTS_FOR_TARGET}-segment floor"
        )
    return None


def test_parallel_scan():
    num_segments = scaled(120_000, 500_000)
    num_queries = scaled(8, 16)
    repeats = scaled(3, 3)
    effective_cores = available_cores()
    cpu_count = os.cpu_count() or 1
    # Affinity-sized pools: enough workers to use every *available*
    # core, never the raw cpu_count.  A floor of 2 keeps the
    # correctness + dispatch assertions meaningful on 1-core hosts.
    workers = max(2, effective_cores)
    params = FilterParams(
        num_query_segments=4, candidates_per_segment=64,
        threshold_fraction=0.45,
    )

    store, rng = _build_store(num_segments)
    queries, sketches = _make_queries(rng, num_queries)
    serial_s, serial_sets = _time_batches(
        lambda: sketch_filter_many(queries, sketches, store, params, N_BITS),
        repeats,
    )

    registry = _metrics.get_registry()
    backends = {}
    shards = None
    trips_per_batch = None
    for label, cls in (("thread", ThreadFilterPool),
                       ("process", ParallelFilterPool)):
        with cls(num_workers=workers) as pool:
            started = time.perf_counter()
            epoch, owners, skm = store.versioned_snapshot()
            pool.load(owners, skm, epoch=epoch)
            load_s = time.perf_counter() - started
            trips_before = registry.value("parallel.dispatch_round_trips")
            par_s, par_sets = _time_batches(
                lambda: parallel_sketch_filter_many(
                    queries, sketches, params, N_BITS, pool
                ),
                repeats,
            )
            trips = registry.value("parallel.dispatch_round_trips")
            if label == "process":
                shards = pool.n_shards
                # 1 warm-up + `repeats` timed batches, one fused message
                # per worker each — the one-round-trip dispatch claim.
                trips_per_batch = (trips - trips_before) / (repeats + 1)
                assert trips_per_batch == pool.num_workers, (
                    f"batched dispatch regressed: {trips_per_batch} "
                    f"round trips/batch with {pool.num_workers} workers"
                )
                assert trips_per_batch <= shards
        assert par_sets == serial_sets, (
            f"{label}: parallel scan changed candidate sets"
        )
        backends[label] = {
            "workers": workers,
            "load_ms": load_s * 1e3,
            "batch_ms": par_s * 1e3,
            "speedup_vs_serial": serial_s / par_s,
        }

    best = max(r["speedup_vs_serial"] for r in backends.values())
    reason = _skip_reason(effective_cores, num_segments)
    if QUICK and reason is None:
        reason = "quick mode (FERRET_BENCH_SCALE=quick): dataset too small"
    gate_armed = reason is None

    lines = [
        "# Parallel filtering scan backends vs serial fused kernel",
        f"# {num_segments} segments, {N_BITS}-bit sketches, "
        f"{num_queries} queries x r=4 segments",
        f"# {effective_cores} effective cores (affinity) of "
        f"{cpu_count} cpus; {workers}-worker pools; "
        f"bitwise_count kernel: "
        f"{'yes' if hamming_kernel_releases_gil() else 'no'}",
        "",
        f"serial fused scan      {serial_s * 1e3:10.2f} ms/batch",
    ]
    for label, r in backends.items():
        lines.append(
            f"{label + ' pool':<22} {r['batch_ms']:10.2f} ms/batch  "
            f"({r['speedup_vs_serial']:.2f}x, load {r['load_ms']:.1f} ms)"
        )
    lines += [
        "",
        f"process dispatch: {trips_per_batch:.0f} round trips/batch "
        f"({shards} shards)",
        "candidate sets identical across all backends: yes",
        f"{SPEEDUP_TARGET}x speedup gate: "
        + ("ARMED" if gate_armed else f"skipped — {reason}"),
    ]
    write_result("parallel_scan", lines)
    write_json("parallel_scan", {
        "num_segments": num_segments,
        "n_bits": N_BITS,
        "num_queries": num_queries,
        "segments_per_query": SEGS_PER_OBJECT,
        "cpu_count": cpu_count,
        "effective_cores": effective_cores,
        "workers": workers,
        "shards": shards,
        "bitwise_count_kernel": hamming_kernel_releases_gil(),
        "serial_ms_per_batch": serial_s * 1e3,
        "backends": backends,
        "dispatch_round_trips_per_batch": trips_per_batch,
        "best_speedup": best,
        "identical_candidate_sets": True,
        "speedup_gate_armed": gate_armed,
        "speedup_gate_skipped_reason": reason,
        "speedup_target": SPEEDUP_TARGET,
    })

    if gate_armed:
        assert best >= SPEEDUP_TARGET, (
            f"parallel scan speedup {best:.2f}x below the "
            f"{SPEEDUP_TARGET}x target on a "
            f"{effective_cores}-effective-core host"
        )


if __name__ == "__main__":
    test_parallel_scan()
