"""Sharded parallel filtering scan vs the serial fused kernel.

Times the candidate-generation stage — the filtering scan over the
whole segment-sketch database — three ways on the same snapshot:

1. serial fused scan (``sketch_filter_many``: one ``hamming_many_to_many``
   pass + vectorized deterministic selection),
2. the shared-memory worker pool (``parallel_sketch_filter_many``), with
   one worker per available core,
3. the pool again with 2 workers (the shard-merge overhead floor).

Correctness is asserted on every run: all paths must produce identical
candidate sets (the deterministic smallest-row-wins tie rule makes the
shard merge exact).  The >= 2x speedup gate only arms on hosts with at
least 4 cores and a database of at least 100k segments — a 1-core
container can verify correctness but has no parallelism to measure.

Writes a human-readable table to benchmarks/results/ and the
machine-readable ``BENCH_parallel_scan.json`` at the repo root.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import (
    FilterParams,
    ObjectSignature,
    ParallelFilterPool,
    SegmentStore,
    parallel_sketch_filter_many,
    sketch_filter_many,
)

from bench_common import scaled, write_json, write_result

N_BITS = 256
N_WORDS = N_BITS // 64
SEGS_PER_OBJECT = 4
SPEEDUP_TARGET = 2.0
MIN_CORES_FOR_TARGET = 4
MIN_SEGMENTS_FOR_TARGET = 100_000


def _build_store(num_segments, seed=0):
    """Synthetic sketch database: the scan only reads packed words, so
    random sketches exercise exactly the measured code path."""
    rng = np.random.default_rng(seed)
    num_objects = num_segments // SEGS_PER_OBJECT
    store = SegmentStore(N_WORDS, dim=1, keep_features=False)
    feats = np.zeros((SEGS_PER_OBJECT, 1))
    for oid in range(num_objects):
        sketches = rng.integers(
            0, 2**64, size=(SEGS_PER_OBJECT, N_WORDS), dtype=np.uint64
        )
        store.add_object(oid, sketches, feats)
    return store, rng


def _make_queries(rng, num_queries):
    queries, sketches = [], []
    for qid in range(num_queries):
        queries.append(
            ObjectSignature(
                np.zeros((SEGS_PER_OBJECT, 1)),
                rng.random(SEGS_PER_OBJECT) + 0.1,
                object_id=10_000_000 + qid,
            )
        )
        sketches.append(
            rng.integers(
                0, 2**64, size=(SEGS_PER_OBJECT, N_WORDS), dtype=np.uint64
            )
        )
    return queries, sketches


def _time_batches(fn, repeats):
    out = fn()  # warm-up (and the correctness sample)
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) / repeats, out


def test_parallel_scan():
    num_segments = scaled(120_000, 500_000)
    num_queries = scaled(8, 16)
    repeats = scaled(3, 3)
    cores = os.cpu_count() or 1
    params = FilterParams(
        num_query_segments=4, candidates_per_segment=64,
        threshold_fraction=0.45,
    )

    store, rng = _build_store(num_segments)
    queries, sketches = _make_queries(rng, num_queries)
    serial_s, serial_sets = _time_batches(
        lambda: sketch_filter_many(queries, sketches, store, params, N_BITS),
        repeats,
    )

    results = {}
    for label, workers in (("all_cores", max(2, cores)), ("two_workers", 2)):
        with ParallelFilterPool(num_workers=workers) as pool:
            started = time.perf_counter()
            epoch, owners, skm = store.versioned_snapshot()
            pool.load(owners, skm, epoch=epoch)
            load_s = time.perf_counter() - started
            par_s, par_sets = _time_batches(
                lambda: parallel_sketch_filter_many(
                    queries, sketches, params, N_BITS, pool
                ),
                repeats,
            )
        assert par_sets == serial_sets, (
            f"{label}: parallel scan changed candidate sets"
        )
        results[label] = {
            "workers": workers,
            "load_ms": load_s * 1e3,
            "batch_ms": par_s * 1e3,
            "speedup_vs_serial": serial_s / par_s,
        }

    gate_armed = (
        cores >= MIN_CORES_FOR_TARGET
        and num_segments >= MIN_SEGMENTS_FOR_TARGET
    )
    best = results["all_cores"]["speedup_vs_serial"]
    lines = [
        "# Sharded parallel filtering scan vs serial fused kernel",
        f"# {num_segments} segments, {N_BITS}-bit sketches, "
        f"{num_queries} queries x r=4 segments, {cores} cores",
        "",
        f"serial fused scan            {serial_s * 1e3:10.2f} ms/batch",
    ]
    for label, r in results.items():
        lines += [
            f"pool {label} ({r['workers']}w)      "
            f"{r['batch_ms']:10.2f} ms/batch  "
            f"({r['speedup_vs_serial']:.2f}x, load {r['load_ms']:.1f} ms)",
        ]
    gate_note = (
        "ARMED" if gate_armed else
        f"off (needs >={MIN_CORES_FOR_TARGET} cores and "
        f">={MIN_SEGMENTS_FOR_TARGET} segments)"
    )
    lines += [
        "",
        "candidate sets identical across all paths: yes",
        f"2x speedup gate: {gate_note}",
    ]
    write_result("parallel_scan", lines)
    write_json("parallel_scan", {
        "num_segments": num_segments,
        "n_bits": N_BITS,
        "num_queries": num_queries,
        "segments_per_query": SEGS_PER_OBJECT,
        "cpu_count": cores,
        "serial_ms_per_batch": serial_s * 1e3,
        "pools": results,
        "identical_candidate_sets": True,
        "speedup_gate_armed": gate_armed,
        "speedup_target": SPEEDUP_TARGET,
    })

    if gate_armed:
        assert best >= SPEEDUP_TARGET, (
            f"parallel scan speedup {best:.2f}x below the "
            f"{SPEEDUP_TARGET}x target on a {cores}-core host"
        )


if __name__ == "__main__":
    test_parallel_scan()
