"""Data acquisition: directory-scan importer (section 4.3)."""

from .scanner import DirectoryScanner, ScanReport

__all__ = ["DirectoryScanner", "ScanReport"]
