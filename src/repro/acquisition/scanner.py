"""Data acquisition: periodic directory scanning (section 4.3).

"The default data acquisition method is via periodical scan of a
designated directory in the file system.  Each newly added file in that
directory will be imported into the system."  The scanner tracks which
files it has already imported (via the metadata manager's file mapping
when persistence is enabled, in memory otherwise), skips files that are
still being written (size must be stable between scans), and reports
per-scan statistics.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..core.engine import SimilaritySearchEngine
from ..observability import metrics as _metrics
from ..storage.errors import StorageError

__all__ = ["ScanReport", "DirectoryScanner"]

_M_IMPORTS = _metrics.counter("acquisition.imports")
_M_SCANS = _metrics.counter("acquisition.scans")
_M_ERR_IMPORT = _metrics.counter("errors_absorbed.acquisition.import")


@dataclass
class ScanReport:
    """Outcome of one scan pass."""

    imported: List[str] = field(default_factory=list)
    skipped_unstable: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)

    @property
    def num_imported(self) -> int:
        return len(self.imported)


class DirectoryScanner:
    """Imports new files from a directory into an engine.

    Parameters
    ----------
    engine:
        Target engine; files are ingested via its plug-in.
    directory:
        The watched directory (scanned non-recursively by default).
    extensions:
        Allowed file suffixes (e.g. ``(".npy",)``); ``None`` = all files.
    attribute_fn:
        Optional callable mapping a path to ingestion attributes (e.g.
        deriving keywords from the filename).
    recursive:
        Walk subdirectories too.
    """

    def __init__(
        self,
        engine: SimilaritySearchEngine,
        directory: str,
        extensions: Optional[Sequence[str]] = None,
        attribute_fn: Optional[Callable[[str], Dict[str, str]]] = None,
        recursive: bool = False,
    ) -> None:
        self.engine = engine
        self.directory = directory
        self.extensions = tuple(extensions) if extensions else None
        self.attribute_fn = attribute_fn
        self.recursive = recursive
        self.imported: Set[str] = set()
        self._sizes: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.on_import: Optional[Callable[[str, int], None]] = None
        # Resume from persisted file mapping if the engine is durable.
        if engine.metadata is not None:
            for path, _object_id in engine.metadata.files():
                self.imported.add(path)

    def _candidates(self) -> List[str]:
        paths: List[str] = []
        if self.recursive:
            for root, _dirs, files in os.walk(self.directory):
                paths.extend(os.path.join(root, f) for f in files)
        else:
            try:
                entries = os.listdir(self.directory)
            except FileNotFoundError:
                return []
            paths = [
                os.path.join(self.directory, f)
                for f in entries
                if os.path.isfile(os.path.join(self.directory, f))
            ]
        if self.extensions is not None:
            paths = [p for p in paths if p.endswith(self.extensions)]
        return sorted(paths)

    def scan_once(self) -> ScanReport:
        """One scan pass: import every new, size-stable file."""
        report = ScanReport()
        _M_SCANS.inc()
        for path in self._candidates():
            if path in self.imported:
                continue
            try:
                size = os.path.getsize(path)
            except OSError as exc:
                report.failed[path] = str(exc)
                continue
            if self._sizes.get(path) != size:
                # First sighting (or still growing): wait one more pass.
                self._sizes[path] = size
                report.skipped_unstable.append(path)
                continue
            attrs = self.attribute_fn(path) if self.attribute_fn else {}
            try:
                object_id = self.engine.insert_file(path, attributes=attrs)
            except (OSError, ValueError, KeyError, StorageError) as exc:
                # A bad file (unreadable, malformed for the plug-in) or a
                # storage hiccup fails *that file* and the scan moves on;
                # anything else (TypeError, a plug-in bug) must surface.
                _M_ERR_IMPORT.inc()
                report.failed[path] = f"{type(exc).__name__}: {exc}"
                continue
            self.imported.add(path)
            self._sizes.pop(path, None)
            report.imported.append(path)
            _M_IMPORTS.inc()
            if self.on_import is not None:
                self.on_import(path, object_id)
        return report

    # -- background polling ----------------------------------------------
    def start(self, interval: float = 2.0) -> None:
        """Poll the directory on a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            raise RuntimeError("scanner already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.scan_once()

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=10.0)
            self._thread = None
