"""3D shape plug-in and PSB-style benchmark builders (section 5.3).

Each model has exactly one feature vector (the 544-dim SHD), so the
segment distance *is* the object distance.  The paper's Ferret system
uses l1 with sketching; the SHD baseline it compares against used l2
over the full descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.distance import l1_distance, l2_to_many
from ...core.plugin import DataTypePlugin
from ...core.ranking import SearchResult
from ...core.types import Dataset, FeatureMeta, ObjectSignature
from ...evaltool.benchmark import BenchmarkSuite
from .harmonics import MAX_ORDER, SHAPE_DIM, shd_descriptor
from .synthetic import SHAPE_CLASSES, Mesh, ShapeClass, make_instance
from .voxelize import sample_surface, normalize_points, shell_decomposition, voxelize

__all__ = [
    "shape_feature_meta",
    "descriptor_from_mesh",
    "signature_from_mesh",
    "make_shape_plugin",
    "ShapeBenchmark",
    "generate_shape_benchmark",
    "ShdL2Baseline",
]

# Descriptor values are non-negative; the degree-0 energy of a shell
# holding all n samples is |Y_00| = 0.28, so after the sqrt-occupancy x
# radius scaling the ceiling at the default 6k-sample density is ~25.
# Engines should still prefer a dataset-calibrated FeatureMeta.
_FEATURE_MAX = 30.0


def shape_feature_meta() -> FeatureMeta:
    return FeatureMeta(
        SHAPE_DIM, np.zeros(SHAPE_DIM), np.full(SHAPE_DIM, _FEATURE_MAX)
    )


def descriptor_from_mesh(
    mesh: Mesh, num_samples: int = 6000, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Full SHD pipeline: sample -> normalize -> voxelize -> shells -> SH."""
    vertices, faces = mesh
    points = sample_surface(vertices, faces, num_samples, rng)
    grid = voxelize(normalize_points(points))
    return np.clip(shd_descriptor(shell_decomposition(grid)), 0.0, _FEATURE_MAX)


def signature_from_mesh(
    mesh: Mesh, object_id: Optional[int] = None, rng: Optional[np.random.Generator] = None
) -> ObjectSignature:
    """Single-segment signature (one SHD per model, weight 1)."""
    return ObjectSignature(
        descriptor_from_mesh(mesh, rng=rng)[None, :], [1.0], object_id=object_id
    )


def make_shape_plugin(meta: Optional[FeatureMeta] = None) -> DataTypePlugin:
    """Shape plug-in: l1 segment distance doubling as the object distance.

    Pass a dataset-calibrated ``meta`` (see
    :func:`repro.core.types.meta_from_dataset`) for sketching to work
    well: SHD energies occupy a narrow band of the static bounds.
    """

    def obj_distance(a: ObjectSignature, b: ObjectSignature) -> float:
        return l1_distance(a.features[0], b.features[0])

    return DataTypePlugin(
        name="shape",
        meta=meta if meta is not None else shape_feature_meta(),
        seg_distance=l1_distance,
        obj_distance=obj_distance,
    )


@dataclass
class ShapeBenchmark:
    """PSB-style benchmark: class-labeled models."""

    dataset: Dataset
    suite: BenchmarkSuite
    class_of: Dict[int, str]


def generate_shape_benchmark(
    num_classes: Optional[int] = None,
    instances_per_class: int = 6,
    num_samples: int = 6000,
    seed: int = 23,
) -> ShapeBenchmark:
    """Build the PSB substitute: jittered, randomly rotated instances of
    parametric shape classes; each class is one similarity set."""
    rng = np.random.default_rng(seed)
    classes: List[ShapeClass] = SHAPE_CLASSES[: num_classes or len(SHAPE_CLASSES)]
    dataset = Dataset()
    suite = BenchmarkSuite(f"psb-synthetic-{len(classes)}x{instances_per_class}")
    class_of: Dict[int, str] = {}
    for shape_class in classes:
        members: List[int] = []
        for _ in range(instances_per_class):
            mesh = make_instance(shape_class, rng)
            descriptor_rng = np.random.default_rng(rng.integers(1 << 62))
            obj = signature_from_mesh(mesh, rng=descriptor_rng)
            object_id = dataset.add(obj)
            class_of[object_id] = shape_class.name
            members.append(object_id)
        suite.add(shape_class.name, members)
    return ShapeBenchmark(dataset, suite, class_of)


class ShdL2Baseline:
    """The comparison system of Table 1: brute-force l2 over full SHDs."""

    def __init__(self) -> None:
        self._ids: List[int] = []
        self._rows: List[np.ndarray] = []

    def insert(self, object_id: int, descriptor: np.ndarray) -> None:
        self._ids.append(object_id)
        self._rows.append(np.asarray(descriptor, dtype=np.float64))

    def query(
        self, descriptor: np.ndarray, top_k: int = 10, exclude_id: Optional[int] = None
    ) -> List[SearchResult]:
        matrix = np.stack(self._rows)
        dists = l2_to_many(descriptor, matrix)
        order = np.argsort(dists, kind="stable")
        results: List[SearchResult] = []
        for idx in order:
            object_id = self._ids[idx]
            if exclude_id is not None and object_id == exclude_id:
                continue
            results.append(SearchResult(float(dists[idx]), object_id))
            if len(results) >= top_k:
                break
        return results

    @property
    def feature_bits(self) -> int:
        return SHAPE_DIM * 32  # 17,472 bits — Table 1's feature vector size
