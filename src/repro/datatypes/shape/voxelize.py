"""Mesh normalization and voxelization (section 5.3 segmentation step).

"Each model is first normalized, then placed on a 64x64x64 axial grid.
32 spheres of different diameters are used to decompose the model" —
this module samples the polygonal surface (area-weighted), normalizes
translation and scale, rasterizes onto the grid, and bins occupied
voxels into 32 concentric spherical shells.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "GRID_SIZE",
    "NUM_SHELLS",
    "sample_surface",
    "normalize_points",
    "voxelize",
    "shell_decomposition",
]

GRID_SIZE = 64
NUM_SHELLS = 32


def sample_surface(
    vertices: np.ndarray,
    faces: np.ndarray,
    num_samples: int = 8000,
    rng: np.random.Generator = None,
) -> np.ndarray:
    """Area-weighted point samples of a triangle mesh's surface."""
    rng = rng or np.random.default_rng(0)
    v0 = vertices[faces[:, 0]]
    v1 = vertices[faces[:, 1]]
    v2 = vertices[faces[:, 2]]
    areas = 0.5 * np.linalg.norm(np.cross(v1 - v0, v2 - v0), axis=1)
    total = areas.sum()
    if total <= 0:
        raise ValueError("mesh has zero surface area")
    probs = areas / total
    chosen = rng.choice(len(faces), size=num_samples, p=probs)
    # Uniform barycentric sampling.
    r1 = np.sqrt(rng.random(num_samples))
    r2 = rng.random(num_samples)
    a = 1.0 - r1
    b = r1 * (1.0 - r2)
    c = r1 * r2
    return (
        a[:, None] * v0[chosen] + b[:, None] * v1[chosen] + c[:, None] * v2[chosen]
    )


def normalize_points(points: np.ndarray) -> np.ndarray:
    """Center at the center of mass, scale mean radius to 0.5.

    This is the SHD normalization: translation by the centroid and
    isotropic scaling so the average distance from the center is half
    the unit radius, leaving headroom for the shape's extremities within
    the unit ball.
    """
    centered = points - points.mean(axis=0)
    mean_radius = np.linalg.norm(centered, axis=1).mean()
    if mean_radius <= 0:
        raise ValueError("degenerate point cloud")
    return centered * (0.5 / mean_radius)


def voxelize(points: np.ndarray, grid_size: int = GRID_SIZE) -> np.ndarray:
    """Rasterize normalized points (unit ball) onto a cubic boolean grid."""
    # Map [-1, 1] to [0, grid_size).
    scaled = np.clip((points + 1.0) * 0.5 * grid_size, 0, grid_size - 1e-9)
    idx = scaled.astype(np.int64)
    grid = np.zeros((grid_size,) * 3, dtype=bool)
    grid[idx[:, 0], idx[:, 1], idx[:, 2]] = True
    return grid


def shell_decomposition(
    grid: np.ndarray, num_shells: int = NUM_SHELLS
) -> List[np.ndarray]:
    """Group occupied voxel centers by concentric spherical shell.

    Returns one ``(n_i, 3)`` array of unit direction vectors per shell
    (empty arrays for unoccupied shells); shell ``s`` covers radii in
    ``[s, s+1) * (grid/2) / num_shells`` voxel units from the center.
    """
    grid_size = grid.shape[0]
    occupied = np.argwhere(grid).astype(np.float64) + 0.5
    center = grid_size / 2.0
    rel = occupied - center
    radii = np.linalg.norm(rel, axis=1)
    max_radius = grid_size / 2.0
    shell_idx = np.clip(
        (radii / max_radius * num_shells).astype(int), 0, num_shells - 1
    )
    shells: List[np.ndarray] = []
    for s in range(num_shells):
        mask = shell_idx == s
        pts = rel[mask]
        norms = radii[mask]
        safe = norms > 1e-9
        shells.append(pts[safe] / norms[safe, None])
    return shells
