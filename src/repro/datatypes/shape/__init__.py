"""3D shape data type: parametric mesh generator, voxelization,
rotation-invariant spherical-harmonic descriptor (SHD), l1 plug-in and
l2 baseline (section 5.3)."""

from .harmonics import MAX_ORDER, SHAPE_DIM, HarmonicBasis, shd_descriptor
from .plugin import (
    ShapeBenchmark,
    ShdL2Baseline,
    descriptor_from_mesh,
    generate_shape_benchmark,
    make_shape_plugin,
    shape_feature_meta,
    signature_from_mesh,
)
from .synthetic import (
    SHAPE_CLASSES,
    Mesh,
    ShapeClass,
    box,
    cone,
    cylinder,
    ellipsoid,
    make_instance,
    merge,
    random_rotation,
    torus,
)
from .voxelize import (
    GRID_SIZE,
    NUM_SHELLS,
    normalize_points,
    sample_surface,
    shell_decomposition,
    voxelize,
)

__all__ = [
    "GRID_SIZE",
    "HarmonicBasis",
    "MAX_ORDER",
    "Mesh",
    "NUM_SHELLS",
    "SHAPE_CLASSES",
    "SHAPE_DIM",
    "ShapeBenchmark",
    "ShapeClass",
    "ShdL2Baseline",
    "box",
    "cone",
    "cylinder",
    "descriptor_from_mesh",
    "ellipsoid",
    "generate_shape_benchmark",
    "make_instance",
    "make_shape_plugin",
    "merge",
    "normalize_points",
    "random_rotation",
    "sample_surface",
    "shape_feature_meta",
    "shd_descriptor",
    "shell_decomposition",
    "signature_from_mesh",
    "torus",
    "voxelize",
]
