"""Rotation-invariant Spherical Harmonic Descriptor (section 5.3).

For each of the 32 spherical shells, the occupied directions define a
function on the sphere.  Projecting it onto the spherical harmonics
``Y_lm`` and recording only the per-degree energies
``e_l = sqrt(sum_m |c_lm|^2)`` yields a rotation-invariant signature
(Kazhdan et al. 2003) — rotations mix the ``m`` components within a
degree ``l`` but preserve their norms.  Degrees 0..16 per shell give the
paper's ``32 x 17 = 544``-dimensional descriptor.

Implementation note: projecting every point sample against every
``Y_lm`` directly would cost ~300 scipy calls per shell.  Instead the
harmonic basis is evaluated once on a fixed latitude/longitude grid
(with solid-angle quadrature weights folded in); each shell is then
rasterized onto the grid and all 289 coefficients come from one matrix
multiply.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

try:  # scipy >= 1.15: sph_harm_y(l, m, theta_polar, phi_azimuth)
    from scipy.special import sph_harm_y

    def _sph_harm(m: int, degree: int, phi: np.ndarray, theta: np.ndarray) -> np.ndarray:
        return sph_harm_y(degree, m, theta, phi)

except ImportError:  # older scipy: sph_harm(m, l, phi_azimuth, theta_polar)
    from scipy.special import sph_harm

    def _sph_harm(m: int, degree: int, phi: np.ndarray, theta: np.ndarray) -> np.ndarray:
        return sph_harm(m, degree, phi, theta)

from .voxelize import NUM_SHELLS

__all__ = ["MAX_ORDER", "SHAPE_DIM", "HarmonicBasis", "shd_descriptor"]

MAX_ORDER = 16  # spherical harmonic degrees 0..16
SHAPE_DIM = NUM_SHELLS * (MAX_ORDER + 1)  # 544

_GRID_THETA = 48  # latitude cells
_GRID_PHI = 96  # longitude cells


class HarmonicBasis:
    """Precomputed conjugate-harmonic quadrature matrix on a sphere grid.

    ``project(density_grid)`` returns all coefficients ``c_lm`` of the
    gridded density in one matmul; ``energies`` folds them into the
    per-degree rotation-invariant norms.
    """

    def __init__(
        self,
        max_order: int = MAX_ORDER,
        n_theta: int = _GRID_THETA,
        n_phi: int = _GRID_PHI,
    ) -> None:
        self.max_order = max_order
        self.n_theta = n_theta
        self.n_phi = n_phi
        # Cell centers.
        theta = (np.arange(n_theta) + 0.5) * np.pi / n_theta
        phi = (np.arange(n_phi) + 0.5) * 2.0 * np.pi / n_phi
        tt, pp = np.meshgrid(theta, phi, indexing="ij")
        # Point-mass (Monte-Carlo) projection: with the shell's samples
        # treated as unit point masses, c_lm = (1/n) sum_i conj(Y_lm(w_i)).
        # Gridding only snaps each sample to its cell center, so the
        # basis matrix is plain conj(Y) at cell centers — no solid-angle
        # factor (that would weight samples by their cell's area and
        # destroy rotation invariance).
        rows = []
        self.degree_of_row = []
        for degree in range(max_order + 1):
            for m in range(-degree, degree + 1):
                y = _sph_harm(m, degree, pp.ravel(), tt.ravel())
                rows.append(np.conj(y))
                self.degree_of_row.append(degree)
        self.matrix = np.stack(rows)  # (num_coeffs, n_cells) complex
        self.degree_of_row = np.asarray(self.degree_of_row)

    def rasterize(self, directions: np.ndarray) -> np.ndarray:
        """Histogram unit directions onto the grid as a density."""
        x, y, z = directions[:, 0], directions[:, 1], directions[:, 2]
        theta = np.arccos(np.clip(z, -1.0, 1.0))
        phi = np.mod(np.arctan2(y, x), 2.0 * np.pi)
        ti = np.clip((theta / np.pi * self.n_theta).astype(int), 0, self.n_theta - 1)
        pi = np.clip(
            (phi / (2.0 * np.pi) * self.n_phi).astype(int), 0, self.n_phi - 1
        )
        grid = np.zeros((self.n_theta, self.n_phi))
        np.add.at(grid, (ti, pi), 1.0)
        return grid

    def energies(self, directions: np.ndarray) -> np.ndarray:
        """Per-degree harmonic energies of one shell's direction samples."""
        out = np.zeros(self.max_order + 1)
        if len(directions) == 0:
            return out
        density = self.rasterize(directions).ravel() / len(directions)
        coeffs = self.matrix.dot(density)
        power = np.abs(coeffs) ** 2
        for degree in range(self.max_order + 1):
            out[degree] = np.sqrt(power[self.degree_of_row == degree].sum())
        return out


@lru_cache(maxsize=4)
def _shared_basis(max_order: int) -> HarmonicBasis:
    return HarmonicBasis(max_order)


def shd_descriptor(
    shells: List[np.ndarray], max_order: int = MAX_ORDER
) -> np.ndarray:
    """Concatenate per-shell harmonic energies into the 544-dim SHD.

    Each shell's energies are scaled by sqrt(shell occupancy) — "values
    within each of the 32 spherical shells ... are scaled by the
    square-root of the corresponding area" — times the shell radius, so
    both *where* surface mass sits radially and its angular distribution
    enter the signature.
    """
    basis = _shared_basis(max_order)
    num_shells = len(shells)
    descriptor = np.empty(num_shells * (max_order + 1))
    for s, directions in enumerate(shells):
        radius = (s + 0.5) / num_shells
        energies = basis.energies(directions)
        occupancy = np.sqrt(len(directions))
        descriptor[s * (max_order + 1) : (s + 1) * (max_order + 1)] = (
            energies * occupancy * radius
        )
    return descriptor
