"""Synthetic 3D shape workload — the Princeton Shape Benchmark substitute.

PSB's test set groups 907 polygonal models into 92 classes.  We generate
parametric mesh families: each *class* is a generator (primitive or
composite) with characteristic proportions; each *instance* jitters the
parameters and applies a random rigid rotation.  Because the descriptor
pipeline (voxelize → spherical shells → harmonic energies) is rotation
invariant, random rotation genuinely exercises the property the real
benchmark tests.

Meshes are triangle soups: ``(vertices (n,3), faces (m,3) int)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

__all__ = ["Mesh", "ShapeClass", "SHAPE_CLASSES", "make_instance", "random_rotation"]

Mesh = Tuple[np.ndarray, np.ndarray]


def _grid_surface(fn: Callable[[np.ndarray, np.ndarray], np.ndarray], nu: int, nv: int) -> Mesh:
    """Triangulate a parametric surface fn(u, v) -> (.., 3) over a grid."""
    u = np.linspace(0.0, 1.0, nu)
    v = np.linspace(0.0, 1.0, nv)
    uu, vv = np.meshgrid(u, v, indexing="ij")
    vertices = fn(uu, vv).reshape(-1, 3)
    faces: List[Tuple[int, int, int]] = []
    for i in range(nu - 1):
        for j in range(nv - 1):
            a = i * nv + j
            b = a + 1
            c = a + nv
            d = c + 1
            faces.append((a, b, c))
            faces.append((b, d, c))
    return vertices, np.asarray(faces, dtype=np.int64)


def box(sx: float, sy: float, sz: float, center=(0.0, 0.0, 0.0)) -> Mesh:
    """Axis-aligned box of half-extents (sx, sy, sz)."""
    cx, cy, cz = center
    corners = np.array(
        [
            [x, y, z]
            for x in (-sx, sx)
            for y in (-sy, sy)
            for z in (-sz, sz)
        ]
    ) + np.array(center)
    quads = [
        (0, 1, 3, 2), (4, 6, 7, 5), (0, 4, 5, 1),
        (2, 3, 7, 6), (0, 2, 6, 4), (1, 5, 7, 3),
    ]
    faces = []
    for a, b, c, d in quads:
        faces.append((a, b, c))
        faces.append((a, c, d))
    return corners, np.asarray(faces, dtype=np.int64)


def ellipsoid(rx: float, ry: float, rz: float, center=(0.0, 0.0, 0.0), n: int = 16) -> Mesh:
    def fn(u, v):
        theta = u * np.pi
        phi = v * 2 * np.pi
        return np.stack(
            [
                rx * np.sin(theta) * np.cos(phi) + center[0],
                ry * np.sin(theta) * np.sin(phi) + center[1],
                rz * np.cos(theta) + center[2],
            ],
            axis=-1,
        )
    return _grid_surface(fn, n, n)


def cylinder(radius: float, height: float, center=(0.0, 0.0, 0.0), n: int = 16) -> Mesh:
    def fn(u, v):
        phi = v * 2 * np.pi
        return np.stack(
            [
                radius * np.cos(phi) + center[0],
                radius * np.sin(phi) + center[1],
                (u - 0.5) * height + center[2],
            ],
            axis=-1,
        )
    return _grid_surface(fn, n, n)


def torus(major: float, minor: float, center=(0.0, 0.0, 0.0), n: int = 16) -> Mesh:
    def fn(u, v):
        theta = u * 2 * np.pi
        phi = v * 2 * np.pi
        rad = major + minor * np.cos(phi)
        return np.stack(
            [
                rad * np.cos(theta) + center[0],
                rad * np.sin(theta) + center[1],
                minor * np.sin(phi) + center[2],
            ],
            axis=-1,
        )
    return _grid_surface(fn, n, n)


def cone(radius: float, height: float, center=(0.0, 0.0, 0.0), n: int = 16) -> Mesh:
    def fn(u, v):
        phi = v * 2 * np.pi
        r = radius * (1.0 - u)
        return np.stack(
            [
                r * np.cos(phi) + center[0],
                r * np.sin(phi) + center[1],
                (u - 0.5) * height + center[2],
            ],
            axis=-1,
        )
    return _grid_surface(fn, n, n)


def merge(*meshes: Mesh) -> Mesh:
    vertices_list: List[np.ndarray] = []
    faces_list: List[np.ndarray] = []
    offset = 0
    for vertices, faces in meshes:
        vertices_list.append(vertices)
        faces_list.append(faces + offset)
        offset += len(vertices)
    return np.concatenate(vertices_list), np.concatenate(faces_list)


@dataclass(frozen=True)
class ShapeClass:
    """A parametric family of similar shapes."""

    name: str
    generator: Callable[[np.random.Generator], Mesh]


def _jit(rng: np.random.Generator, value: float, rel: float = 0.12) -> float:
    return value * float(np.exp(rng.normal(0.0, rel)))


def _table(rng: np.random.Generator) -> Mesh:
    top = box(_jit(rng, 1.0), _jit(rng, 0.7), _jit(rng, 0.08), (0, 0, 0.5))
    legs = [
        box(0.06, 0.06, _jit(rng, 0.5), (sx * 0.85, sy * 0.55, 0.0))
        for sx in (-1, 1)
        for sy in (-1, 1)
    ]
    return merge(top, *legs)


def _dumbbell(rng: np.random.Generator) -> Mesh:
    r = _jit(rng, 0.35)
    bar = cylinder(_jit(rng, 0.12), _jit(rng, 1.6))
    a = ellipsoid(r, r, r, (0, 0, 0.9))
    b = ellipsoid(r, r, r, (0, 0, -0.9))
    return merge(bar, a, b)


def _rocket(rng: np.random.Generator) -> Mesh:
    body = cylinder(_jit(rng, 0.3), _jit(rng, 1.4), (0, 0, 0))
    nose = cone(_jit(rng, 0.3), _jit(rng, 0.6), (0, 0, 1.0))
    fins = [
        box(_jit(rng, 0.5), 0.04, _jit(rng, 0.3), (sx * 0.4, 0, -0.7))
        for sx in (-1, 1)
    ]
    return merge(body, nose, *fins)


def _snowman(rng: np.random.Generator) -> Mesh:
    r1, r2, r3 = _jit(rng, 0.6), _jit(rng, 0.45), _jit(rng, 0.3)
    return merge(
        ellipsoid(r1, r1, r1, (0, 0, -0.6)),
        ellipsoid(r2, r2, r2, (0, 0, 0.25)),
        ellipsoid(r3, r3, r3, (0, 0, 0.9)),
    )


def _cross(rng: np.random.Generator) -> Mesh:
    arm = _jit(rng, 1.0)
    thickness = _jit(rng, 0.15)
    return merge(
        box(arm, thickness, thickness),
        box(thickness, arm, thickness),
        box(thickness, thickness, arm),
    )


def _l_bracket(rng: np.random.Generator) -> Mesh:
    long_arm = _jit(rng, 1.0)
    short_arm = _jit(rng, 0.6)
    thickness = _jit(rng, 0.18)
    return merge(
        box(thickness, thickness, long_arm, (0, 0, 0)),
        box(short_arm, thickness, thickness, (short_arm, 0, -long_arm)),
    )


def _mug(rng: np.random.Generator) -> Mesh:
    body_r = _jit(rng, 0.55)
    height = _jit(rng, 1.1)
    handle = torus(_jit(rng, 0.35), 0.08, (body_r + 0.25, 0, 0))
    # stand the handle upright beside the body
    vertices, faces = handle
    rot = np.array([[1.0, 0, 0], [0, 0, -1.0], [0, 1.0, 0]])
    handle = (vertices @ rot.T, faces)
    return merge(cylinder(body_r, height), handle)


def _barbell_rings(rng: np.random.Generator) -> Mesh:
    bar = cylinder(_jit(rng, 0.1), _jit(rng, 1.8))
    ring_a = torus(_jit(rng, 0.4), 0.1, (0, 0, 0.8))
    ring_b = torus(_jit(rng, 0.4), 0.1, (0, 0, -0.8))
    return merge(bar, ring_a, ring_b)


def _pyramid(rng: np.random.Generator) -> Mesh:
    return cone(_jit(rng, 1.0), _jit(rng, 1.2), n=5)


def _hourglass(rng: np.random.Generator) -> Mesh:
    r = _jit(rng, 0.7)
    h = _jit(rng, 0.9)
    top = cone(r, h, (0, 0, h / 2))
    bottom = (cone(r, h, (0, 0, -h / 2))[0] * np.array([1, 1, -1.0]),
              cone(r, h)[1])
    return merge(top, bottom)


def _stool(rng: np.random.Generator) -> Mesh:
    seat = cylinder(_jit(rng, 0.7), 0.12, (0, 0, 0.5))
    legs = [
        cylinder(0.07, _jit(rng, 1.0), (0.45 * np.cos(a), 0.45 * np.sin(a), 0.0))
        for a in (0.5, 2.6, 4.7)
    ]
    return merge(seat, *legs)


def _saturn(rng: np.random.Generator) -> Mesh:
    r = _jit(rng, 0.55)
    return merge(
        ellipsoid(r, r, r),
        torus(_jit(rng, 0.95), 0.07),
    )


def _plus_plate(rng: np.random.Generator) -> Mesh:
    arm = _jit(rng, 1.0)
    width = _jit(rng, 0.3)
    return merge(
        box(arm, width, 0.1),
        box(width, arm, 0.1),
    )


def _capsule(rng: np.random.Generator) -> Mesh:
    r = _jit(rng, 0.35)
    h = _jit(rng, 1.2)
    return merge(
        cylinder(r, h),
        ellipsoid(r, r, r, (0, 0, h / 2)),
        ellipsoid(r, r, r, (0, 0, -h / 2)),
    )


def _goblet(rng: np.random.Generator) -> Mesh:
    bowl = cone(_jit(rng, 0.7), _jit(rng, 0.7), (0, 0, 0.6))
    stem = cylinder(0.08, _jit(rng, 0.8), (0, 0, -0.1))
    base = cylinder(_jit(rng, 0.45), 0.1, (0, 0, -0.6))
    return merge(bowl, stem, base)


def _frame(rng: np.random.Generator) -> Mesh:
    outer = _jit(rng, 1.0)
    bar = _jit(rng, 0.12)
    return merge(
        box(outer, bar, bar, (0, outer, 0)),
        box(outer, bar, bar, (0, -outer, 0)),
        box(bar, outer, bar, (outer, 0, 0)),
        box(bar, outer, bar, (-outer, 0, 0)),
    )


SHAPE_CLASSES: List[ShapeClass] = [
    ShapeClass("sphere", lambda rng: ellipsoid(_jit(rng, 1.0), _jit(rng, 1.0), _jit(rng, 1.0))),
    ShapeClass("flat_ellipsoid", lambda rng: ellipsoid(_jit(rng, 1.0), _jit(rng, 0.8), _jit(rng, 0.25))),
    ShapeClass("cigar", lambda rng: ellipsoid(_jit(rng, 0.25), _jit(rng, 0.25), _jit(rng, 1.2))),
    ShapeClass("cube", lambda rng: box(_jit(rng, 0.8), _jit(rng, 0.8), _jit(rng, 0.8))),
    ShapeClass("slab", lambda rng: box(_jit(rng, 1.0), _jit(rng, 0.7), _jit(rng, 0.12))),
    ShapeClass("beam", lambda rng: box(_jit(rng, 0.15), _jit(rng, 0.15), _jit(rng, 1.2))),
    ShapeClass("cylinder", lambda rng: cylinder(_jit(rng, 0.5), _jit(rng, 1.6))),
    ShapeClass("disk", lambda rng: cylinder(_jit(rng, 1.0), _jit(rng, 0.15))),
    ShapeClass("torus", lambda rng: torus(_jit(rng, 0.9), _jit(rng, 0.25))),
    ShapeClass("thin_torus", lambda rng: torus(_jit(rng, 1.0), _jit(rng, 0.1))),
    ShapeClass("cone", lambda rng: cone(_jit(rng, 0.8), _jit(rng, 1.5))),
    ShapeClass("table", _table),
    ShapeClass("dumbbell", _dumbbell),
    ShapeClass("rocket", _rocket),
    ShapeClass("snowman", _snowman),
    ShapeClass("cross", _cross),
    ShapeClass("l_bracket", _l_bracket),
    ShapeClass("mug", _mug),
    ShapeClass("barbell_rings", _barbell_rings),
    ShapeClass("pyramid", _pyramid),
    ShapeClass("hourglass", _hourglass),
    ShapeClass("stool", _stool),
    ShapeClass("saturn", _saturn),
    ShapeClass("plus_plate", _plus_plate),
    ShapeClass("capsule", _capsule),
    ShapeClass("goblet", _goblet),
    ShapeClass("frame", _frame),
]


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def make_instance(
    shape_class: ShapeClass, rng: np.random.Generator, rotate: bool = True
) -> Mesh:
    """One jittered, randomly rotated instance of a shape class."""
    vertices, faces = shape_class.generator(rng)
    if rotate:
        vertices = vertices.dot(random_rotation(rng).T)
    return vertices, faces
