"""Sensor data type (toolkit extension, the paper's future work):
synthetic multi-channel activity recordings, energy change-point
segmentation, 24-dim statistical episode features, l1 + EMD plug-in."""

from .features import (
    SENSOR_DIM,
    episode_feature,
    segment_episodes,
    sensor_feature_meta,
    signature_from_recording,
)
from .plugin import SensorBenchmark, generate_sensor_benchmark, make_sensor_plugin
from .synthetic import (
    NUM_CHANNELS,
    SENSOR_RATE,
    ActivityPattern,
    RecordingSpec,
    SubjectProfile,
    random_activity,
    random_recording,
    random_subject,
    synthesize_recording,
)

__all__ = [
    "ActivityPattern",
    "NUM_CHANNELS",
    "RecordingSpec",
    "SENSOR_DIM",
    "SENSOR_RATE",
    "SensorBenchmark",
    "SubjectProfile",
    "episode_feature",
    "generate_sensor_benchmark",
    "make_sensor_plugin",
    "random_activity",
    "random_recording",
    "random_subject",
    "segment_episodes",
    "sensor_feature_meta",
    "signature_from_recording",
    "synthesize_recording",
]
