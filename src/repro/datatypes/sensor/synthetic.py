"""Synthetic multi-channel sensor traces — the paper's future-work data type.

The conclusion names "video and other sensor data" as the next data
types for the toolkit.  This module generates accelerometer-style
recordings: a library of *activities* (walking, idling, shaking, ...)
each defined by per-channel oscillation patterns; a *recording* is a
sequence of activity episodes separated by idle gaps; a *subject*
perturbs amplitudes, rates and noise floors.  Recordings of the same
activity sequence by different subjects form the ground-truth similarity
sets, mirroring the structure of the paper's other benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "SENSOR_RATE",
    "NUM_CHANNELS",
    "ActivityPattern",
    "RecordingSpec",
    "SubjectProfile",
    "random_activity",
    "random_recording",
    "random_subject",
    "synthesize_recording",
]

SENSOR_RATE = 100  # Hz, typical for wearable accelerometers
NUM_CHANNELS = 3


@dataclass(frozen=True)
class ActivityPattern:
    """One activity: per-channel oscillation frequency/amplitude plus a
    noise level (impacts, tremor)."""

    frequencies: Tuple[float, ...]  # Hz per channel
    amplitudes: Tuple[float, ...]
    noise: float
    duration: float  # seconds


@dataclass(frozen=True)
class RecordingSpec:
    """A sequence of activity episodes with idle gaps between them."""

    activities: Tuple[ActivityPattern, ...]
    gap: float = 0.8  # idle seconds between episodes


@dataclass(frozen=True)
class SubjectProfile:
    """Per-subject rendering parameters (body mechanics + sensor)."""

    amplitude_scale: float
    rate_scale: float
    noise_floor: float


def random_activity(rng: np.random.Generator) -> ActivityPattern:
    return ActivityPattern(
        frequencies=tuple(float(rng.uniform(0.5, 8.0)) for _ in range(NUM_CHANNELS)),
        amplitudes=tuple(float(rng.uniform(0.2, 2.0)) for _ in range(NUM_CHANNELS)),
        noise=float(rng.uniform(0.02, 0.25)),
        duration=float(rng.uniform(1.5, 4.0)),
    )


def random_recording(
    rng: np.random.Generator, num_activities: Optional[int] = None
) -> RecordingSpec:
    if num_activities is None:
        num_activities = int(rng.integers(3, 7))
    return RecordingSpec(
        tuple(random_activity(rng) for _ in range(num_activities))
    )


def random_subject(rng: np.random.Generator) -> SubjectProfile:
    return SubjectProfile(
        amplitude_scale=float(rng.uniform(0.8, 1.25)),
        rate_scale=float(rng.uniform(0.9, 1.12)),
        noise_floor=float(rng.uniform(0.005, 0.03)),
    )


def synthesize_recording(
    spec: RecordingSpec,
    subject: SubjectProfile,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Render a recording; returns ``(signal (n, channels), episode spans)``.

    Episode spans are ``(start_sample, end_sample)`` per activity — the
    ground-truth segmentation used to validate the change-point
    segmenter.
    """
    rng = rng or np.random.default_rng(0)
    gap_len = max(1, int(spec.gap * SENSOR_RATE))
    pieces: List[np.ndarray] = []
    spans: List[Tuple[int, int]] = []
    cursor = 0
    for idx, activity in enumerate(spec.activities):
        if idx > 0:
            gap = rng.normal(0.0, subject.noise_floor, (gap_len, NUM_CHANNELS))
            pieces.append(gap)
            cursor += gap_len
        n = max(8, int(activity.duration / subject.rate_scale * SENSOR_RATE))
        t = np.arange(n) / SENSOR_RATE
        channels = []
        for c in range(NUM_CHANNELS):
            freq = activity.frequencies[c] * subject.rate_scale
            amp = activity.amplitudes[c] * subject.amplitude_scale
            phase = rng.uniform(0.0, 2.0 * np.pi)
            wave = amp * np.sin(2.0 * np.pi * freq * t + phase)
            wave += 0.3 * amp * np.sin(2.0 * np.pi * 2 * freq * t + phase * 1.7)
            wave += rng.normal(0.0, activity.noise, n)
            channels.append(wave)
        episode = np.stack(channels, axis=1)
        pieces.append(episode)
        spans.append((cursor, cursor + n))
        cursor += n
    signal = np.concatenate(pieces, axis=0)
    signal += rng.normal(0.0, subject.noise_floor, signal.shape)
    return signal, spans
