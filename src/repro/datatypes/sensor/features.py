"""Sensor segmentation and feature extraction.

Segmentation: activity episodes are separated by low-energy idle gaps,
so the same sliding-energy change detection used for audio utterances
applies — a windowed RMS threshold with a minimum-gap rule.

Features: each episode yields a per-channel statistical descriptor —
mean, standard deviation, RMS, mean absolute delta (jerk), dominant
frequency and its power, plus low/high band energies — 8 features x 3
channels = a 24-dimensional vector.  Weights are proportional to episode
length.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.types import FeatureMeta, ObjectSignature, normalize_weights
from .synthetic import NUM_CHANNELS, SENSOR_RATE

__all__ = [
    "SENSOR_DIM",
    "sensor_feature_meta",
    "segment_episodes",
    "episode_feature",
    "signature_from_recording",
]

_FEATURES_PER_CHANNEL = 8
SENSOR_DIM = NUM_CHANNELS * _FEATURES_PER_CHANNEL

# mean, std, rms, jerk, dom freq (Hz), dom power, low band, high band
_CH_MIN = np.array([-3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
_CH_MAX = np.array([3.0, 3.0, 3.0, 2.0, 20.0, 3.0, 3.0, 3.0])


def sensor_feature_meta() -> FeatureMeta:
    return FeatureMeta(
        SENSOR_DIM, np.tile(_CH_MIN, NUM_CHANNELS), np.tile(_CH_MAX, NUM_CHANNELS)
    )


def segment_episodes(
    signal: np.ndarray,
    sample_rate: int = SENSOR_RATE,
    window_ms: float = 100.0,
    quiet_windows: int = 5,
    energy_threshold: Optional[float] = None,
) -> List[Tuple[int, int]]:
    """Split a multi-channel recording into activity episodes.

    A window is idle when its cross-channel RMS falls below the
    threshold (default: 15% of the recording's mean window RMS);
    ``quiet_windows`` consecutive idle windows end an episode.
    """
    signal = np.atleast_2d(np.asarray(signal, dtype=np.float64))
    window = max(1, int(sample_rate * window_ms / 1000.0))
    n_frames = signal.shape[0] // window
    if n_frames == 0:
        return []
    frames = signal[: n_frames * window].reshape(n_frames, window, -1)
    energy = np.sqrt((frames**2).mean(axis=(1, 2)))
    if energy_threshold is None:
        energy_threshold = max(0.15 * float(energy.mean()), 1e-6)
    idle = energy <= energy_threshold

    spans: List[Tuple[int, int]] = []
    in_episode = False
    start = 0
    quiet_run = 0
    for i, is_idle in enumerate(idle):
        if not in_episode:
            if not is_idle:
                in_episode = True
                start = i
                quiet_run = 0
        else:
            if is_idle:
                quiet_run += 1
                if quiet_run >= quiet_windows:
                    spans.append((start * window, (i - quiet_run + 1) * window))
                    in_episode = False
            else:
                quiet_run = 0
    if in_episode:
        spans.append((start * window, (len(idle) - quiet_run) * window))
    return spans


def episode_feature(
    episode: np.ndarray, sample_rate: int = SENSOR_RATE
) -> np.ndarray:
    """24-dim statistical descriptor of one ``(n, channels)`` episode."""
    episode = np.atleast_2d(np.asarray(episode, dtype=np.float64))
    n = episode.shape[0]
    features: List[float] = []
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    for c in range(episode.shape[1]):
        x = episode[:, c]
        spectrum = np.abs(np.fft.rfft(x - x.mean())) / max(n, 1)
        if len(spectrum) > 1:
            dominant = 1 + int(np.argmax(spectrum[1:]))
            dom_freq = float(freqs[dominant])
            dom_power = float(spectrum[dominant])
        else:
            dom_freq, dom_power = 0.0, 0.0
        low_band = float(spectrum[(freqs >= 0.3) & (freqs < 3.0)].sum())
        high_band = float(spectrum[(freqs >= 3.0) & (freqs < 15.0)].sum())
        features.extend([
            float(x.mean()),
            float(x.std()),
            float(np.sqrt((x**2).mean())),
            float(np.abs(np.diff(x)).mean()) if n > 1 else 0.0,
            dom_freq,
            dom_power,
            low_band,
            high_band,
        ])
    meta = sensor_feature_meta()
    return np.clip(np.asarray(features), meta.min_values, meta.max_values)


def signature_from_recording(
    signal: np.ndarray,
    spans: Optional[Sequence[Tuple[int, int]]] = None,
    sample_rate: int = SENSOR_RATE,
    object_id: Optional[int] = None,
) -> ObjectSignature:
    """Segment (unless spans are given) and extract a recording.

    Weights are proportional to episode length, as in the audio system.
    """
    if spans is None:
        spans = segment_episodes(signal, sample_rate)
    if not spans:
        raise ValueError("recording contains no activity episodes")
    features = np.stack(
        [episode_feature(signal[s:e], sample_rate) for s, e in spans]
    )
    lengths = np.asarray([e - s for s, e in spans], dtype=np.float64)
    return ObjectSignature(
        features, normalize_weights(lengths), object_id=object_id, normalize=False
    )
