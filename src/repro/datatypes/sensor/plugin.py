"""Sensor data plug-in and benchmark builder.

l1 segment distance over the 24-dim episode descriptors, EMD object
distance — the same recipe as the audio system (episodes, like words,
may occur in any order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...core.plugin import DataTypePlugin
from ...core.types import Dataset, FeatureMeta
from ...evaltool.benchmark import BenchmarkSuite
from .features import sensor_feature_meta, signature_from_recording
from .synthetic import (
    RecordingSpec,
    random_recording,
    random_subject,
    synthesize_recording,
)

__all__ = ["make_sensor_plugin", "SensorBenchmark", "generate_sensor_benchmark"]


def make_sensor_plugin(meta: Optional[FeatureMeta] = None) -> DataTypePlugin:
    """Build the sensor plug-in (l1 segments, EMD objects)."""

    def seg_extract(filename: str) -> "ObjectSignature":
        data = np.load(filename)
        return signature_from_recording(data)

    return DataTypePlugin(
        name="sensor",
        meta=meta if meta is not None else sensor_feature_meta(),
        seg_extract=seg_extract,
    )


@dataclass
class SensorBenchmark:
    """Activity-sequence retrieval benchmark."""

    dataset: Dataset
    suite: BenchmarkSuite
    recordings: Dict[int, RecordingSpec]


def generate_sensor_benchmark(
    num_sequences: int = 20,
    subjects_per_sequence: int = 5,
    num_distractors: int = 0,
    seed: int = 37,
) -> SensorBenchmark:
    """Each similarity set is one activity sequence recorded by several
    synthetic subjects; the real change-point segmenter runs on every
    recording (ground-truth spans are not used)."""
    rng = np.random.default_rng(seed)
    dataset = Dataset()
    suite = BenchmarkSuite(f"sensor-{num_sequences}x{subjects_per_sequence}")
    recordings: Dict[int, RecordingSpec] = {}

    def ingest(spec: RecordingSpec) -> int:
        subject = random_subject(rng)
        signal, _spans = synthesize_recording(spec, subject, rng)
        signature = signature_from_recording(signal)
        object_id = dataset.add(signature)
        recordings[object_id] = spec
        return object_id

    for seq in range(num_sequences):
        spec = random_recording(rng)
        members: List[int] = [
            ingest(spec) for _ in range(subjects_per_sequence)
        ]
        suite.add(f"sequence{seq:03d}", members)

    for _ in range(num_distractors):
        ingest(random_recording(rng))

    return SensorBenchmark(dataset, suite, recordings)
