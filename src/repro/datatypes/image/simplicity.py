"""Global-feature CBIR baseline standing in for SIMPLIcity (Table 1).

SIMPLIcity is the domain-specific comparator in the paper's image row.
Its defining contrast with Ferret's approach is *global vs regional*
description, so the baseline here indexes whole-image features: the 9
global color moments plus per-cell mean colors of a coarse 2x2 layout
grid (21 dimensions total), ranked by l1 distance.  Region-based search
beating this baseline is the qualitative claim Table 1 makes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ...core.ranking import SearchResult
from .features import _color_moments

__all__ = ["GLOBAL_DIM", "global_features", "SimplicityBaseline"]

GLOBAL_DIM = 21


def global_features(image: np.ndarray) -> np.ndarray:
    """21-dim global descriptor: color moments + 2x2 layout means."""
    pixels = image.reshape(-1, 3)
    moments = _color_moments(pixels)
    height, width = image.shape[:2]
    hy, hx = height // 2, width // 2
    cells = [
        image[:hy, :hx],
        image[:hy, hx:],
        image[hy:, :hx],
        image[hy:, hx:],
    ]
    layout = np.concatenate([cell.reshape(-1, 3).mean(axis=0) for cell in cells])
    return np.concatenate([moments, layout])


class SimplicityBaseline:
    """Brute-force l1 search over global image descriptors."""

    def __init__(self) -> None:
        self._ids: List[int] = []
        self._features: List[np.ndarray] = []
        self._matrix: np.ndarray = np.empty((0, GLOBAL_DIM))
        self._stale = False

    def insert(self, object_id: int, image: np.ndarray) -> None:
        self._ids.append(object_id)
        self._features.append(global_features(image))
        self._stale = True

    def _ensure_matrix(self) -> None:
        if self._stale:
            self._matrix = np.stack(self._features)
            self._stale = False

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def feature_bits(self) -> int:
        """Metadata size per image, as Table 1 counts it (32-bit floats)."""
        return GLOBAL_DIM * 32

    def query(
        self, image: np.ndarray, top_k: int = 10, exclude_id: int = None
    ) -> List[SearchResult]:
        self._ensure_matrix()
        q = global_features(image)
        dists = np.abs(self._matrix - q).sum(axis=1)
        order = np.argsort(dists, kind="stable")
        results: List[SearchResult] = []
        for idx in order:
            object_id = self._ids[idx]
            if exclude_id is not None and object_id == exclude_id:
                continue
            results.append(SearchResult(float(dists[idx]), object_id))
            if len(results) >= top_k:
                break
        return results
