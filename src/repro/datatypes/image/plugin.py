"""Image data type plug-in wiring (section 5.1).

Segment distance: weighted l1 on the 14-dim features, with per-dimension
weights ``1 / range`` so every feature contributes on a comparable scale
(this also makes the sketch construction sample dimensions uniformly,
since its sampling probability is ``w_i * range_i``).

Object distance: thresholded EMD with square-root segment weighting —
the "improved EMD" of the paper's image system.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.distance import weighted_l1_to_many
from ...core.emd import EMDParams
from ...core.plugin import DataTypePlugin
from ...core.types import FeatureMeta, ObjectSignature
from .features import image_feature_meta, signature_from_image

__all__ = ["make_image_plugin", "DEFAULT_EMD_THRESHOLD"]

# With range-normalized weights (and spatial dims at 0.35) the maximum
# segment distance is ~10.75 and random pairs sit around 3.5.  A 1.2
# threshold caps everything but genuine near-matches, mirroring the
# CIKM'04 thresholded-EMD tuning; the ablation bench sweeps this.
DEFAULT_EMD_THRESHOLD = 1.2


def make_image_plugin(
    emd_threshold: Optional[float] = DEFAULT_EMD_THRESHOLD,
    sqrt_weighting: bool = False,
) -> DataTypePlugin:
    """Build the image plug-in.

    ``sqrt_weighting`` applies the CIKM'04 square-root transform *again*
    at EMD time; our extractor already weights segments by sqrt(size),
    so the default leaves weights as extracted.
    """
    meta = image_feature_meta()
    # Normalize each dimension by its range, then downweight the spatial
    # features (bounding box + centroid): two photos of one subject keep
    # the subject's colors but rarely its exact frame position, so color
    # moments are the reliable evidence.  (The same weights feed the
    # sketch construction's dimension sampling.)
    dim_weights = 1.0 / meta.ranges
    dim_weights[9:] *= 0.35
    meta = FeatureMeta(meta.dim, meta.min_values, meta.max_values, dim_weights)

    def seg_distance(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.abs(a - b).dot(dim_weights))

    def ground(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
        return np.stack(
            [weighted_l1_to_many(q, database, dim_weights) for q in queries]
        )

    params = EMDParams(
        threshold=emd_threshold,
        weight_transform=np.sqrt if sqrt_weighting else None,
        ground=ground,
    )

    def seg_extract(filename: str) -> ObjectSignature:
        # Data acquisition stores rendered scenes as .npy rasters.
        image = np.load(filename)
        return signature_from_image(image)

    return DataTypePlugin(
        name="image",
        meta=meta,
        seg_extract=seg_extract,
        seg_distance=seg_distance,
        emd_params=params,
    )
