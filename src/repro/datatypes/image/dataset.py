"""Benchmark dataset builders for the image data type.

``generate_image_benchmark`` renders real synthetic scenes through the
full segmentation + feature extraction pipeline and is the substitute
for the VARY image benchmark (quality experiments).

``generate_bulk_signatures`` synthesizes feature-space signatures
directly — matching the Mixed image dataset's statistics (≈10.8 segments
per object) — for the speed experiments, where the paper's 600k-image
collection only matters through its metadata volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...core.types import Dataset, ObjectSignature, normalize_weights
from ...evaltool.benchmark import BenchmarkSuite
from .features import IMAGE_DIM, image_feature_meta, signature_from_image
from .synthetic import perturb_scene, random_scene, render_scene

__all__ = ["ImageBenchmark", "generate_image_benchmark", "generate_bulk_signatures"]


@dataclass
class ImageBenchmark:
    """A rendered quality benchmark: signatures + gold-standard sets."""

    dataset: Dataset
    suite: BenchmarkSuite
    images: Dict[int, np.ndarray]  # raster per object id (for baselines)


def generate_image_benchmark(
    num_sets: int = 16,
    set_size: int = 5,
    num_distractors: int = 150,
    image_size: int = 48,
    seed: int = 7,
    perturbation: float = 1.0,
) -> ImageBenchmark:
    """Build a VARY-style quality benchmark.

    ``num_sets`` similarity sets are produced by re-rendering one scene
    ``set_size`` times under perturbation; ``num_distractors`` unrelated
    scenes are added.  Every image goes through the real segmentation and
    feature extraction pipeline.
    """
    rng = np.random.default_rng(seed)
    dataset = Dataset()
    suite = BenchmarkSuite(f"vary-synthetic-{num_sets}x{set_size}")
    images: Dict[int, np.ndarray] = {}

    def ingest(image: np.ndarray) -> int:
        signature = signature_from_image(image)
        object_id = dataset.add(signature)
        images[object_id] = image
        return object_id

    for set_idx in range(num_sets):
        base = random_scene(rng)
        members: List[int] = []
        for variant in range(set_size):
            scene = base if variant == 0 else perturb_scene(base, rng, perturbation)
            image = render_scene(scene, image_size, image_size, rng)
            members.append(ingest(image))
        suite.add(f"set{set_idx:03d}", members)

    for _ in range(num_distractors):
        ingest(render_scene(random_scene(rng), image_size, image_size, rng))

    return ImageBenchmark(dataset, suite, images)


def generate_bulk_signatures(
    count: int,
    avg_segments: float = 10.8,
    num_prototypes: int = 256,
    seed: int = 11,
) -> Dataset:
    """Mixed-image-dataset substitute: feature-space signatures only.

    Segment counts are Poisson-distributed around the paper's 10.8
    average; features cluster around random prototypes (web images are
    far from uniformly distributed), with weights drawn Dirichlet-style.
    """
    rng = np.random.default_rng(seed)
    meta = image_feature_meta()
    span = meta.ranges
    prototypes = meta.min_values + rng.random((num_prototypes, IMAGE_DIM)) * span

    dataset = Dataset()
    for _ in range(count):
        k = max(1, int(rng.poisson(avg_segments)))
        chosen = rng.integers(0, num_prototypes, size=k)
        feats = prototypes[chosen] + rng.normal(0.0, 0.08, (k, IMAGE_DIM)) * span
        feats = np.clip(feats, meta.min_values, meta.max_values)
        weights = normalize_weights(rng.gamma(2.0, 1.0, size=k))
        dataset.add(ObjectSignature(feats, weights, normalize=False))
    return dataset
