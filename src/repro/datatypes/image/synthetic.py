"""Synthetic image workload — the VARY / Mixed image dataset substitute.

The paper evaluates image search on 10k general-purpose photos with 32
human-defined similarity sets.  We have no photo collection, so we
generate *scenes*: compositions of colored, textured regions (ellipses
and rectangles over a background).  Rendering the same scene under
perturbations — sensor noise, illumination change, small translations,
occlusion — yields groups of images that are bitwise different but
perceptually similar, which is exactly the structure the human-rated
similarity sets capture.

Each scene spec is deterministic given its seed, so similarity sets and
distractors are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["RegionSpec", "SceneSpec", "render_scene", "random_scene", "perturb_scene"]


@dataclass(frozen=True)
class RegionSpec:
    """One region of a scene: an ellipse or axis-aligned rectangle."""

    shape: str  # "ellipse" | "rect"
    center: Tuple[float, float]  # fractional (y, x) in [0, 1]
    size: Tuple[float, float]  # fractional (height, width) radii
    color: Tuple[float, float, float]  # RGB in [0, 1]
    texture_amp: float = 0.0  # amplitude of sinusoidal texture
    texture_freq: float = 8.0


@dataclass(frozen=True)
class SceneSpec:
    """A full scene: background plus layered regions."""

    background: Tuple[float, float, float]
    regions: Tuple[RegionSpec, ...]
    noise: float = 0.02
    illumination: float = 1.0  # global brightness multiplier
    shift: Tuple[float, float] = (0.0, 0.0)  # fractional translation


def random_scene(rng: np.random.Generator, num_regions: Optional[int] = None) -> SceneSpec:
    """Draw a random scene with 2-6 salient regions."""
    if num_regions is None:
        num_regions = int(rng.integers(2, 7))
    background = tuple(rng.uniform(0.05, 0.5, size=3))
    regions: List[RegionSpec] = []
    for _ in range(num_regions):
        regions.append(
            RegionSpec(
                shape="ellipse" if rng.random() < 0.6 else "rect",
                center=(float(rng.uniform(0.15, 0.85)), float(rng.uniform(0.15, 0.85))),
                size=(float(rng.uniform(0.08, 0.3)), float(rng.uniform(0.08, 0.3))),
                color=tuple(rng.uniform(0.2, 1.0, size=3)),
                texture_amp=float(rng.uniform(0.0, 0.15)),
                texture_freq=float(rng.uniform(4.0, 16.0)),
            )
        )
    return SceneSpec(background=background, regions=tuple(regions))


def perturb_scene(
    scene: SceneSpec, rng: np.random.Generator, strength: float = 1.0
) -> SceneSpec:
    """A perceptually-similar variant of ``scene``.

    Models what makes two photos of one subject differ: the *subjects*
    (salient regions) keep their color and rough shape, but the
    composition changes — regions move around the frame, the background
    changes substantially (a different wall, sky, or ground behind the
    same objects), illumination shifts, sensor noise varies, and an
    object is occasionally occluded.  This mirrors the structure of
    human-rated photo similarity sets: global color statistics drift a
    lot while per-region content stays recognizable, which is precisely
    the regime where region-based retrieval beats global descriptors.
    """
    regions: List[RegionSpec] = []
    for region in scene.regions:
        if rng.random() < 0.06 * strength and len(scene.regions) > 2:
            continue  # occluded / out of frame
        dy, dx = rng.normal(0.0, 0.06 * strength, size=2)
        sy, sx = np.exp(rng.normal(0.0, 0.06 * strength, size=2))
        color = np.clip(
            np.asarray(region.color) + rng.normal(0.0, 0.03 * strength, size=3),
            0.0,
            1.0,
        )
        regions.append(
            RegionSpec(
                shape=region.shape,
                center=(
                    float(np.clip(region.center[0] + dy, 0.05, 0.95)),
                    float(np.clip(region.center[1] + dx, 0.05, 0.95)),
                ),
                size=(
                    float(np.clip(region.size[0] * sy, 0.04, 0.45)),
                    float(np.clip(region.size[1] * sx, 0.04, 0.45)),
                ),
                color=tuple(color),
                texture_amp=region.texture_amp,
                texture_freq=region.texture_freq,
            )
        )
    if rng.random() < 0.75 * strength:
        # Different setting: the background behind the subjects changes
        # outright (beach vs lawn), not just by a small drift.
        background = tuple(rng.uniform(0.05, 0.5, size=3))
    else:
        background = tuple(
            np.clip(
                np.asarray(scene.background) + rng.normal(0.0, 0.04 * strength, 3),
                0.0,
                1.0,
            )
        )
    return SceneSpec(
        background=background,
        regions=tuple(regions),
        noise=scene.noise * float(np.exp(rng.normal(0.0, 0.3 * strength))),
        illumination=float(np.clip(rng.normal(1.0, 0.08 * strength), 0.7, 1.3)),
        shift=(
            float(rng.normal(0.0, 0.01 * strength)),
            float(rng.normal(0.0, 0.01 * strength)),
        ),
    )


def render_scene(
    scene: SceneSpec,
    height: int = 64,
    width: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Rasterize a scene to an ``(H, W, 3)`` float image in [0, 1]."""
    rng = rng or np.random.default_rng(0)
    ys = (np.arange(height) + 0.5) / height - scene.shift[0]
    xs = (np.arange(width) + 0.5) / width - scene.shift[1]
    yy, xx = np.meshgrid(ys, xs, indexing="ij")
    image = np.empty((height, width, 3), dtype=np.float64)
    image[:, :] = scene.background

    for region in scene.regions:
        cy, cx = region.center
        ry, rx = region.size
        if region.shape == "ellipse":
            mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
        else:
            mask = (np.abs(yy - cy) <= ry) & (np.abs(xx - cx) <= rx)
        color = np.asarray(region.color)
        if region.texture_amp > 0.0:
            texture = region.texture_amp * np.sin(
                2.0 * np.pi * region.texture_freq * (yy + xx)
            )
            patch = np.clip(color[None, None, :] + texture[:, :, None], 0.0, 1.0)
            image[mask] = patch[mask]
        else:
            image[mask] = color

    image *= scene.illumination
    if scene.noise > 0.0:
        image = image + rng.normal(0.0, scene.noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)
