"""Per-segment image features (section 5.1).

Each segment is represented by the paper's 14-dimensional vector:

- 9 color moments: mean, standard deviation and skewness of each RGB
  channel over the segment's pixels (a compact stand-in for color
  histograms, after Ma & Zhang);
- 5 bounding-box features: aspect ratio (width/height), bounding-box
  size (fraction of the image), area ratio (segment pixels / bbox
  pixels), and the segment centroid (y, x as image fractions).

The weight of each segment is proportional to the square root of its
size, normalized to sum to one.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...core.types import FeatureMeta, ObjectSignature, normalize_weights

__all__ = ["IMAGE_DIM", "image_feature_meta", "extract_features", "signature_from_image"]

IMAGE_DIM = 14

# Feature-space bounds for the sketch construction unit.  Color moments:
# means in [0,1], stds in [0,0.5], skew clamped to [-2,2].  Box features:
# aspect ratio clamped to [0,8], sizes/ratios in [0,1], centroids [0,1].
_MINS = np.array([0, 0, 0, 0, 0, 0, -2, -2, -2, 0, 0, 0, 0, 0], dtype=np.float64)
_MAXS = np.array(
    [1, 1, 1, 0.5, 0.5, 0.5, 2, 2, 2, 8, 1, 1, 1, 1], dtype=np.float64
)


def image_feature_meta() -> FeatureMeta:
    """Bounds of the 14-dim image feature space."""
    return FeatureMeta(IMAGE_DIM, _MINS.copy(), _MAXS.copy())


def _color_moments(pixels: np.ndarray) -> np.ndarray:
    """Mean, std, skew per RGB channel of an ``(n, 3)`` pixel block."""
    mean = pixels.mean(axis=0)
    centered = pixels - mean
    std = np.sqrt((centered**2).mean(axis=0))
    # Cube-root-of-third-moment skewness (standard in the CBIR literature),
    # clamped to the declared feature bounds.
    third = (centered**3).mean(axis=0)
    skew = np.cbrt(third)
    return np.concatenate([mean, np.minimum(std, 0.5), np.clip(skew, -2.0, 2.0)])


def _box_features(mask: np.ndarray) -> np.ndarray:
    """Aspect ratio, bbox size, area ratio, centroid (y, x)."""
    ys, xs = np.nonzero(mask)
    height, width = mask.shape
    box_h = ys.max() - ys.min() + 1
    box_w = xs.max() - xs.min() + 1
    aspect = min(box_w / box_h, 8.0)
    box_size = (box_h * box_w) / (height * width)
    area_ratio = len(ys) / (box_h * box_w)
    centroid_y = (ys.mean() + 0.5) / height
    centroid_x = (xs.mean() + 0.5) / width
    return np.array([aspect, box_size, area_ratio, centroid_y, centroid_x])


def extract_features(
    image: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Features and weights for every segment of a labeled image.

    Returns ``(features, weights)``: ``(k, 14)`` and ``(k,)`` with
    weights proportional to sqrt(segment size), normalized.
    """
    segment_ids = np.unique(labels)
    features = np.empty((len(segment_ids), IMAGE_DIM), dtype=np.float64)
    sizes = np.empty(len(segment_ids), dtype=np.float64)
    for row, segment_id in enumerate(segment_ids):
        mask = labels == segment_id
        pixels = image[mask]
        features[row, :9] = _color_moments(pixels)
        features[row, 9:] = _box_features(mask)
        sizes[row] = mask.sum()
    weights = normalize_weights(np.sqrt(sizes))
    return features, weights


def signature_from_image(
    image: np.ndarray,
    levels: int = 4,
    max_segments: int = 16,
    object_id: int = None,
) -> ObjectSignature:
    """Full pipeline: segment an image and build its ObjectSignature."""
    from .segmentation import segment_image

    labels = segment_image(image, levels=levels, max_segments=max_segments)
    features, weights = extract_features(image, labels)
    return ObjectSignature(features, weights, object_id=object_id, normalize=False)
