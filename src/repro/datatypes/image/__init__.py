"""Image data type: synthetic scenes, region segmentation, 14-dim
color-moment/bounding-box features, thresholded-EMD plug-in, and the
SIMPLIcity-style global baseline (section 5.1)."""

from .dataset import ImageBenchmark, generate_bulk_signatures, generate_image_benchmark
from .features import (
    IMAGE_DIM,
    extract_features,
    image_feature_meta,
    signature_from_image,
)
from .plugin import DEFAULT_EMD_THRESHOLD, make_image_plugin
from .segmentation import quantize_colors, segment_image
from .simplicity import GLOBAL_DIM, SimplicityBaseline, global_features
from .synthetic import (
    RegionSpec,
    SceneSpec,
    perturb_scene,
    random_scene,
    render_scene,
)

__all__ = [
    "DEFAULT_EMD_THRESHOLD",
    "GLOBAL_DIM",
    "IMAGE_DIM",
    "ImageBenchmark",
    "RegionSpec",
    "SceneSpec",
    "SimplicityBaseline",
    "extract_features",
    "generate_bulk_signatures",
    "generate_image_benchmark",
    "global_features",
    "image_feature_meta",
    "make_image_plugin",
    "perturb_scene",
    "quantize_colors",
    "random_scene",
    "render_scene",
    "segment_image",
    "signature_from_image",
]
