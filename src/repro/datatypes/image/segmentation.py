"""Region segmentation — the JSEG substitute (section 5.1).

The paper uses the JSEG color/texture segmenter, which "reads in an image
and outputs a matrix mapping each pixel to one of the segments".  We
reproduce that contract with a classical pipeline: quantize colors,
label connected components of equal quantized color (the homogeneous
regions), then absorb regions below a size floor into their most similar
large neighbor.  On our synthetic scenes this recovers the generating
regions; on any other image it produces a reasonable homogeneous-region
decomposition.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import ndimage

__all__ = ["segment_image", "quantize_colors"]


def quantize_colors(image: np.ndarray, levels: int = 4) -> np.ndarray:
    """Posterize each channel to ``levels`` buckets; returns int codes."""
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("image must be (H, W, 3)")
    q = np.clip((image * levels).astype(np.int32), 0, levels - 1)
    return q[:, :, 0] * levels * levels + q[:, :, 1] * levels + q[:, :, 2]


def segment_image(
    image: np.ndarray,
    levels: int = 4,
    min_region_fraction: float = 0.01,
    max_segments: int = 16,
) -> np.ndarray:
    """Segment an ``(H, W, 3)`` image; returns an ``(H, W)`` label map.

    Labels are contiguous integers starting at 0.  At most
    ``max_segments`` labels survive; smaller regions are merged into the
    remaining region with the closest mean color.
    """
    height, width = image.shape[:2]
    codes = quantize_colors(image, levels)
    labels = np.zeros((height, width), dtype=np.int32)
    next_label = 0
    # Connected components per quantized color (4-connectivity).
    for code in np.unique(codes):
        mask = codes == code
        comp, count = ndimage.label(mask)
        for c in range(1, count + 1):
            labels[comp == c] = next_label
            next_label += 1

    labels = _merge_small_regions(
        image, labels, min_size=max(1, int(min_region_fraction * height * width)),
        max_segments=max_segments,
    )
    return labels


def _merge_small_regions(
    image: np.ndarray, labels: np.ndarray, min_size: int, max_segments: int
) -> np.ndarray:
    """Absorb small regions into the large region of most similar color."""
    flat_labels = labels.ravel()
    flat_pixels = image.reshape(-1, 3)
    ids, counts = np.unique(flat_labels, return_counts=True)

    means = np.empty((ids.max() + 1, 3), dtype=np.float64)
    for region_id in ids:
        means[region_id] = flat_pixels[flat_labels == region_id].mean(axis=0)

    order = np.argsort(-counts)
    keep = [
        ids[i]
        for i in order
        if counts[i] >= min_size
    ][:max_segments]
    if not keep:  # degenerate: keep the single largest region
        keep = [ids[order[0]]]

    keep_means = means[keep]
    remap: Dict[int, int] = {}
    for idx, region_id in enumerate(ids):
        if region_id in remap:
            continue
        if region_id in keep:
            remap[region_id] = region_id
        else:
            dists = np.abs(keep_means - means[region_id]).sum(axis=1)
            remap[region_id] = keep[int(np.argmin(dists))]

    merged = np.vectorize(remap.get, otypes=[np.int32])(labels)
    # Renumber to contiguous 0..k-1 in decreasing-size order.
    final_ids, final_counts = np.unique(merged, return_counts=True)
    ranking = final_ids[np.argsort(-final_counts)]
    renumber = {int(old): new for new, old in enumerate(ranking)}
    return np.vectorize(renumber.get, otypes=[np.int32])(merged)
