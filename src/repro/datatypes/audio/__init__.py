"""Audio data type: formant speech synthesizer, RMS/zero-crossing
utterance segmentation, from-scratch MFCC features, EMD plug-in
(section 5.2)."""

from .features import (
    AUDIO_DIM,
    NUM_COEFFS,
    NUM_WINDOWS,
    audio_feature_meta,
    segment_feature,
    signature_from_sentence,
)
from .mfcc import hz_to_mel, mel_filterbank, mel_to_hz, mfcc, mfcc_frames
from .plugin import AudioBenchmark, generate_audio_benchmark, make_audio_plugin
from .segmentation import frame_energy, segment_utterances, zero_crossings
from .synthetic import (
    SAMPLE_RATE,
    Phone,
    Sentence,
    SpeakerProfile,
    Word,
    random_sentence,
    random_speaker,
    synthesize_sentence,
)

__all__ = [
    "AUDIO_DIM",
    "AudioBenchmark",
    "NUM_COEFFS",
    "NUM_WINDOWS",
    "Phone",
    "SAMPLE_RATE",
    "Sentence",
    "SpeakerProfile",
    "Word",
    "audio_feature_meta",
    "frame_energy",
    "generate_audio_benchmark",
    "hz_to_mel",
    "make_audio_plugin",
    "mel_filterbank",
    "mel_to_hz",
    "mfcc",
    "mfcc_frames",
    "random_sentence",
    "random_speaker",
    "segment_feature",
    "segment_utterances",
    "signature_from_sentence",
    "synthesize_sentence",
]
