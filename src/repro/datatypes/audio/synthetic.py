"""Synthetic speech workload — the TIMIT substitute (section 5.2).

TIMIT provides 6,300 sentences, each spoken by multiple speakers, with
human-marked word boundaries.  We synthesize speech-like audio with a
small formant synthesizer: a *word* is a sequence of phones, each phone
a set of formant frequencies (voiced) or filtered noise (unvoiced); a
*sentence* is a word sequence separated by short intra-sentence gaps; a
*speaker* perturbs pitch, formant positions, speaking rate and loudness.

The same sentence rendered by different speakers produces signals that
are bitwise different but structurally similar — the exact property the
TIMIT similarity sets (7 utterances of one sentence by 7 speakers) have.
Because we generate the words ourselves, word boundaries are known
exactly, mirroring the paper's use of TIMIT's hand-marked boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "SAMPLE_RATE",
    "Phone",
    "Word",
    "Sentence",
    "SpeakerProfile",
    "random_sentence",
    "random_speaker",
    "synthesize_sentence",
]

SAMPLE_RATE = 8000


@dataclass(frozen=True)
class Phone:
    """One phone: voiced formant stack or unvoiced noise burst."""

    voiced: bool
    formants: Tuple[float, ...]  # Hz (voiced) or band center (unvoiced)
    duration: float  # seconds


@dataclass(frozen=True)
class Word:
    phones: Tuple[Phone, ...]

    @property
    def duration(self) -> float:
        return sum(p.duration for p in self.phones)


@dataclass(frozen=True)
class Sentence:
    words: Tuple[Word, ...]
    gap: float = 0.06  # inter-word silence, seconds


@dataclass(frozen=True)
class SpeakerProfile:
    """Per-speaker rendering parameters."""

    pitch: float  # fundamental, Hz
    formant_scale: float  # vocal-tract length factor
    rate: float  # speaking-rate multiplier
    loudness: float
    breathiness: float  # added noise floor


def random_phone(rng: np.random.Generator) -> Phone:
    if rng.random() < 0.75:  # voiced
        f1 = float(rng.uniform(250, 850))
        f2 = float(rng.uniform(900, 2300))
        f3 = float(rng.uniform(2400, 3400))
        return Phone(True, (f1, f2, f3), float(rng.uniform(0.05, 0.14)))
    return Phone(False, (float(rng.uniform(1500, 3800)),), float(rng.uniform(0.03, 0.08)))


def random_word(rng: np.random.Generator) -> Word:
    return Word(tuple(random_phone(rng) for _ in range(int(rng.integers(2, 5)))))


def random_sentence(rng: np.random.Generator, num_words: Optional[int] = None) -> Sentence:
    if num_words is None:
        num_words = int(rng.integers(4, 9))
    return Sentence(tuple(random_word(rng) for _ in range(num_words)))


def random_speaker(rng: np.random.Generator) -> SpeakerProfile:
    return SpeakerProfile(
        pitch=float(rng.uniform(90, 250)),
        formant_scale=float(rng.uniform(0.88, 1.12)),
        rate=float(rng.uniform(0.85, 1.18)),
        loudness=float(rng.uniform(0.6, 1.0)),
        breathiness=float(rng.uniform(0.005, 0.03)),
    )


def _synthesize_phone(
    phone: Phone, speaker: SpeakerProfile, rng: np.random.Generator
) -> np.ndarray:
    duration = phone.duration / speaker.rate
    n = max(8, int(duration * SAMPLE_RATE))
    t = np.arange(n) / SAMPLE_RATE
    envelope = np.sin(np.pi * np.arange(n) / n) ** 0.5  # smooth attack/decay
    if phone.voiced:
        # Harmonic source at the speaker's pitch with energy concentrated
        # at the phone's (speaker-scaled) formants.
        signal = np.zeros(n)
        pitch = speaker.pitch * float(np.exp(rng.normal(0.0, 0.02)))
        for harmonic in range(1, int(SAMPLE_RATE / 2 / pitch)):
            freq = harmonic * pitch
            gain = 0.0
            for formant in phone.formants:
                f = formant * speaker.formant_scale
                gain += np.exp(-0.5 * ((freq - f) / 120.0) ** 2)
            if gain > 1e-4:
                phase = rng.uniform(0, 2 * np.pi)
                signal += gain * np.sin(2 * np.pi * freq * t + phase)
    else:
        # Band-limited noise: white noise modulated toward the band center.
        noise = rng.normal(0.0, 1.0, n)
        center = phone.formants[0] * speaker.formant_scale
        carrier = np.sin(2 * np.pi * center * t)
        signal = noise * (0.5 + 0.5 * carrier)
    signal *= envelope
    peak = np.abs(signal).max()
    if peak > 0:
        signal = signal / peak
    return signal * speaker.loudness


def synthesize_sentence(
    sentence: Sentence,
    speaker: SpeakerProfile,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Render a sentence; returns ``(signal, word_boundaries)``.

    ``word_boundaries`` is a list of ``(start_sample, end_sample)`` per
    word — the synthetic equivalent of TIMIT's hand-marked boundaries.
    """
    rng = rng or np.random.default_rng(0)
    gap = np.zeros(max(1, int(sentence.gap / speaker.rate * SAMPLE_RATE)))
    pieces: List[np.ndarray] = []
    boundaries: List[Tuple[int, int]] = []
    cursor = 0
    for word_idx, word in enumerate(sentence.words):
        if word_idx > 0:
            pieces.append(gap)
            cursor += len(gap)
        start = cursor
        for phone in word.phones:
            rendered = _synthesize_phone(phone, speaker, rng)
            pieces.append(rendered)
            cursor += len(rendered)
        boundaries.append((start, cursor))
    signal = np.concatenate(pieces)
    signal = signal + rng.normal(0.0, speaker.breathiness, len(signal))
    return signal, boundaries
