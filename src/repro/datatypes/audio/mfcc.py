"""Mel-frequency cepstral coefficients, from scratch (Marsyas substitute).

Pipeline per analysis window: Hamming window → magnitude FFT → mel
filterbank energies → log → DCT-II; the first few cepstral coefficients
summarize the spectral envelope.  Only numpy is used so the whole
feature path is self-contained and testable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["hz_to_mel", "mel_to_hz", "mel_filterbank", "mfcc_frames", "mfcc"]


def hz_to_mel(hz: np.ndarray) -> np.ndarray:
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel: np.ndarray) -> np.ndarray:
    return 700.0 * (np.power(10.0, np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def mel_filterbank(
    num_filters: int, fft_size: int, sample_rate: int, fmin: float = 50.0, fmax: Optional[float] = None
) -> np.ndarray:
    """Triangular mel filterbank: ``(num_filters, fft_size // 2 + 1)``."""
    fmax = fmax or sample_rate / 2.0
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), num_filters + 2)
    hz_points = mel_to_hz(mel_points)
    bins = np.floor((fft_size + 1) * hz_points / sample_rate).astype(int)
    bins = np.clip(bins, 0, fft_size // 2)
    bank = np.zeros((num_filters, fft_size // 2 + 1))
    for m in range(1, num_filters + 1):
        left, center, right = bins[m - 1], bins[m], bins[m + 1]
        if center == left:
            center = left + 1
        if right <= center:
            right = center + 1
        bank[m - 1, left:center] = (np.arange(left, center) - left) / (center - left)
        bank[m - 1, center : right + 1] = np.clip(
            (right - np.arange(center, right + 1)) / (right - center), 0.0, 1.0
        )
    return bank


def _dct_matrix(num_coeffs: int, num_inputs: int) -> np.ndarray:
    """Orthonormal DCT-II basis: ``(num_coeffs, num_inputs)``."""
    n = np.arange(num_inputs)
    basis = np.cos(np.pi * np.outer(np.arange(num_coeffs), (2 * n + 1)) / (2 * num_inputs))
    basis[0] *= 1.0 / np.sqrt(2.0)
    return basis * np.sqrt(2.0 / num_inputs)


def mfcc_frames(
    frames: np.ndarray,
    sample_rate: int,
    num_coeffs: int = 6,
    num_filters: int = 26,
) -> np.ndarray:
    """MFCCs of pre-cut frames: ``(n_frames, frame_len) -> (n_frames, num_coeffs)``."""
    frames = np.atleast_2d(np.asarray(frames, dtype=np.float64))
    n_frames, frame_len = frames.shape
    window = np.hamming(frame_len)
    spectrum = np.abs(np.fft.rfft(frames * window, axis=1))
    bank = mel_filterbank(num_filters, frame_len, sample_rate)
    energies = spectrum.dot(bank.T)
    log_energies = np.log(energies + 1e-10)
    return log_energies.dot(_dct_matrix(num_coeffs, num_filters).T)


def mfcc(
    signal: np.ndarray,
    sample_rate: int,
    frame_len: int = 512,
    num_windows: int = 32,
    num_coeffs: int = 6,
    num_filters: int = 26,
) -> np.ndarray:
    """Fixed-count MFCC analysis of one segment (section 5.2).

    The paper slides a 512-sample window with *variable stride* so every
    segment yields exactly ``num_windows`` frames regardless of length.
    Short segments are zero-padded to one frame.  Returns
    ``(num_windows, num_coeffs)``.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if len(signal) < frame_len:
        signal = np.pad(signal, (0, frame_len - len(signal)))
    max_start = len(signal) - frame_len
    starts = np.linspace(0, max_start, num_windows).astype(int)
    frames = np.stack([signal[s : s + frame_len] for s in starts])
    return mfcc_frames(frames, sample_rate, num_coeffs, num_filters)
