"""Utterance segmentation via RMS energy and zero crossings (section 5.2).

The paper's first segmentation step finds pauses between statements by
examining 20ms windows: "the presence of ten or more windows with RMS
energy below a certain threshold is taken to indicate an utterance
boundary unless there are a large number of zero crossings, which
typically indicate the presence of unvoiced consonants" (after Rabiner &
Sambur).  This module implements exactly that detector.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["frame_energy", "zero_crossings", "segment_utterances"]


def frame_energy(signal: np.ndarray, window: int) -> np.ndarray:
    """RMS energy of consecutive non-overlapping windows."""
    signal = np.asarray(signal, dtype=np.float64)
    n_frames = len(signal) // window
    if n_frames == 0:
        return np.zeros(0)
    trimmed = signal[: n_frames * window].reshape(n_frames, window)
    return np.sqrt((trimmed**2).mean(axis=1))


def zero_crossings(signal: np.ndarray, window: int) -> np.ndarray:
    """Zero-crossing count of consecutive non-overlapping windows."""
    signal = np.asarray(signal, dtype=np.float64)
    n_frames = len(signal) // window
    if n_frames == 0:
        return np.zeros(0, dtype=int)
    trimmed = signal[: n_frames * window].reshape(n_frames, window)
    signs = np.signbit(trimmed)
    return np.abs(np.diff(signs.astype(np.int8), axis=1)).sum(axis=1)


def segment_utterances(
    signal: np.ndarray,
    sample_rate: int,
    window_ms: float = 20.0,
    silence_windows: int = 10,
    energy_threshold: float = None,
    zc_threshold: float = None,
) -> List[Tuple[int, int]]:
    """Split a recording into utterances at sustained pauses.

    Returns ``(start_sample, end_sample)`` spans of detected utterances.
    Thresholds default to data-driven values: energy threshold at 10% of
    the mean frame energy, zero-crossing threshold at 1.5x the median
    (high-ZC low-energy frames are unvoiced consonants, not silence).
    """
    window = max(1, int(sample_rate * window_ms / 1000.0))
    energy = frame_energy(signal, window)
    if len(energy) == 0:
        return []
    zc = zero_crossings(signal, window)
    if energy_threshold is None:
        # Absolute floor keeps an all-silent recording from looking like
        # one long utterance (mean energy 0 => threshold 0 otherwise).
        energy_threshold = max(0.1 * float(energy.mean()), 1e-6)
    if zc_threshold is None:
        zc_threshold = 1.5 * float(np.median(zc))

    # A frame is "pause-like" if quiet and not a noisy consonant.
    silent = (energy <= energy_threshold) & (zc <= zc_threshold)

    spans: List[Tuple[int, int]] = []
    in_utterance = False
    start_frame = 0
    silent_run = 0
    for i, is_silent in enumerate(silent):
        if not in_utterance:
            if not is_silent:
                in_utterance = True
                start_frame = i
                silent_run = 0
        else:
            if is_silent:
                silent_run += 1
                if silent_run >= silence_windows:
                    end_frame = i - silent_run + 1
                    spans.append((start_frame * window, end_frame * window))
                    in_utterance = False
            else:
                silent_run = 0
    if in_utterance:
        end_frame = len(silent) - silent_run
        spans.append((start_frame * window, end_frame * window))
    return spans
