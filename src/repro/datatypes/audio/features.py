"""Audio segment features: 192-dim MFCC descriptors (section 5.2).

Each word segment yields 32 analysis windows (512-sample frames at a
variable stride) x 6 MFCCs = a 192-dimensional feature vector.  Segment
weights are proportional to segment length, normalized per sentence.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ...core.types import FeatureMeta, ObjectSignature, normalize_weights
from .mfcc import mfcc
from .synthetic import SAMPLE_RATE

__all__ = ["AUDIO_DIM", "NUM_WINDOWS", "NUM_COEFFS", "audio_feature_meta", "signature_from_sentence"]

NUM_WINDOWS = 32
NUM_COEFFS = 6
AUDIO_DIM = NUM_WINDOWS * NUM_COEFFS

# Log-mel cepstra of signals in [-1, 1] stay well inside these bounds;
# derived empirically over the synthesizer's output and fixed here so
# every engine instance sketches in the same space.
_MFCC_MIN = np.array([-8.0, -8.0, -8.0, -8.0, -8.0, -8.0])
_MFCC_MAX = np.array([7.0, 6.0, 7.0, 6.0, 6.0, 7.0])


def audio_feature_meta() -> FeatureMeta:
    """Bounds of the 192-dim audio feature space (per-window MFCC tiling)."""
    return FeatureMeta(
        AUDIO_DIM,
        np.tile(_MFCC_MIN, NUM_WINDOWS),
        np.tile(_MFCC_MAX, NUM_WINDOWS),
    )


def segment_feature(signal: np.ndarray, sample_rate: int = SAMPLE_RATE) -> np.ndarray:
    """One word segment -> flattened (windows x coeffs) feature vector."""
    coeffs = mfcc(
        signal, sample_rate, num_windows=NUM_WINDOWS, num_coeffs=NUM_COEFFS
    )
    meta_min = np.tile(_MFCC_MIN, NUM_WINDOWS)
    meta_max = np.tile(_MFCC_MAX, NUM_WINDOWS)
    return np.clip(coeffs.ravel(), meta_min, meta_max)


def signature_from_sentence(
    signal: np.ndarray,
    word_boundaries: Sequence[Tuple[int, int]],
    sample_rate: int = SAMPLE_RATE,
    object_id: int = None,
) -> ObjectSignature:
    """Build a sentence's ObjectSignature from its word segments.

    Weights are proportional to segment length (the paper's choice),
    normalized to sum to one.
    """
    if not word_boundaries:
        raise ValueError("sentence has no word segments")
    features: List[np.ndarray] = []
    lengths: List[int] = []
    for start, end in word_boundaries:
        if end <= start:
            raise ValueError(f"empty word boundary ({start}, {end})")
        features.append(segment_feature(signal[start:end], sample_rate))
        lengths.append(end - start)
    return ObjectSignature(
        np.stack(features),
        normalize_weights(np.asarray(lengths, dtype=np.float64)),
        object_id=object_id,
        normalize=False,
    )
