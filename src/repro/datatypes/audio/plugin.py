"""Audio data type plug-in and benchmark builders (section 5.2).

Segment distance: l1 on the 192-dim MFCC features.  Object distance:
EMD — "using EMD has the advantage that it does not respect order and
hence allows us to find similar sentences with the same words spoken in
a different order."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.plugin import DataTypePlugin
from ...core.types import Dataset, FeatureMeta
from ...evaltool.benchmark import BenchmarkSuite
from .features import audio_feature_meta, signature_from_sentence
from .synthetic import (
    SAMPLE_RATE,
    Sentence,
    random_sentence,
    random_speaker,
    synthesize_sentence,
)

__all__ = ["make_audio_plugin", "AudioBenchmark", "generate_audio_benchmark"]


def make_audio_plugin(meta: Optional[FeatureMeta] = None) -> DataTypePlugin:
    """Build the audio plug-in (l1 segments, plain EMD objects).

    Pass a dataset-calibrated ``meta`` for best sketch discrimination;
    the static bounds are intentionally generous.
    """

    def seg_extract(filename: str) -> "ObjectSignature":
        # Acquisition stores sentences as .npz: signal + word boundaries.
        data = np.load(filename)
        boundaries = [tuple(row) for row in data["boundaries"]]
        return signature_from_sentence(data["signal"], boundaries)

    return DataTypePlugin(
        name="audio",
        meta=meta if meta is not None else audio_feature_meta(),
        seg_extract=seg_extract,
    )


@dataclass
class AudioBenchmark:
    """TIMIT-style quality benchmark: sentences x speakers."""

    dataset: Dataset
    suite: BenchmarkSuite
    sentences: Dict[int, Sentence]  # object id -> source sentence


def generate_audio_benchmark(
    num_sentences: int = 30,
    speakers_per_sentence: int = 7,
    num_distractors: int = 0,
    seed: int = 17,
) -> AudioBenchmark:
    """Build the TIMIT substitute.

    Each similarity set is one sentence rendered by
    ``speakers_per_sentence`` different synthetic speakers (the paper's
    sets are 7 utterances of one sentence by 7 people).  Distractors are
    additional single-rendering sentences.
    """
    rng = np.random.default_rng(seed)
    dataset = Dataset()
    suite = BenchmarkSuite(f"timit-synthetic-{num_sentences}x{speakers_per_sentence}")
    sentences: Dict[int, Sentence] = {}

    def ingest(sentence: Sentence) -> int:
        speaker = random_speaker(rng)
        signal, boundaries = synthesize_sentence(sentence, speaker, rng)
        signature = signature_from_sentence(signal, boundaries)
        object_id = dataset.add(signature)
        sentences[object_id] = sentence
        return object_id

    for sent_idx in range(num_sentences):
        sentence = random_sentence(rng)
        members: List[int] = [
            ingest(sentence) for _ in range(speakers_per_sentence)
        ]
        suite.add(f"sentence{sent_idx:03d}", members)

    for _ in range(num_distractors):
        ingest(random_sentence(rng))

    return AudioBenchmark(dataset, suite, sentences)
