"""Shot detection and per-shot feature extraction for video.

Segmentation: hard cuts produce large frame-to-frame differences, so the
shot detector thresholds the mean absolute inter-frame difference (a
classic shot-boundary heuristic); within-shot motion stays well below a
cut's discontinuity.

Features: each shot is summarized by the global color description of
its middle (key) frame — the 21-dim global-feature descriptor shared
with the image baseline — plus 3 motion statistics (mean inter-frame
difference, its variability, and the shot's cut sharpness), giving a
24-dim shot vector.  Shot weights are proportional to shot length, and
EMD across shots matches videos whose shots were reordered or trimmed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.types import FeatureMeta, ObjectSignature, normalize_weights
from ..image.simplicity import GLOBAL_DIM, global_features

__all__ = [
    "VIDEO_DIM",
    "video_feature_meta",
    "frame_differences",
    "detect_shots",
    "shot_feature",
    "signature_from_video",
]

VIDEO_DIM = GLOBAL_DIM + 3

_MOTION_MIN = np.array([0.0, 0.0, 0.0])
_MOTION_MAX = np.array([0.5, 0.5, 1.0])
# Global color moments: means [0,1], stds [0,0.5], skew [-2,2], layout [0,1].
_GLOBAL_MIN = np.concatenate([np.zeros(3), np.zeros(3), -2 * np.ones(3), np.zeros(12)])
_GLOBAL_MAX = np.concatenate([np.ones(3), 0.5 * np.ones(3), 2 * np.ones(3), np.ones(12)])


def video_feature_meta() -> FeatureMeta:
    return FeatureMeta(
        VIDEO_DIM,
        np.concatenate([_GLOBAL_MIN, _MOTION_MIN]),
        np.concatenate([_GLOBAL_MAX, _MOTION_MAX]),
    )


def frame_differences(frames: np.ndarray) -> np.ndarray:
    """Mean absolute difference between consecutive frames: ``(T-1,)``."""
    frames = np.asarray(frames, dtype=np.float64)
    if frames.shape[0] < 2:
        return np.zeros(0)
    return np.abs(np.diff(frames, axis=0)).mean(axis=(1, 2, 3))


def detect_shots(
    frames: np.ndarray, cut_factor: float = 3.0, min_shot_frames: int = 2
) -> List[Tuple[int, int]]:
    """Detect hard cuts; returns ``(start, end)`` frame spans per shot.

    A boundary is declared where the inter-frame difference exceeds
    ``cut_factor`` times the median difference (motion sets the noise
    floor, cuts tower above it).
    """
    total = np.asarray(frames).shape[0]
    diffs = frame_differences(frames)
    if len(diffs) == 0:
        return [(0, total)] if total else []
    floor = max(float(np.median(diffs)), 1e-9)
    cut_positions = [i + 1 for i, d in enumerate(diffs) if d > cut_factor * floor]
    spans: List[Tuple[int, int]] = []
    start = 0
    for cut in cut_positions:
        if cut - start >= min_shot_frames:
            spans.append((start, cut))
            start = cut
    if total - start >= 1:
        spans.append((start, total))
    return spans


def shot_feature(shot_frames: np.ndarray) -> np.ndarray:
    """24-dim descriptor of one shot: keyframe globals + motion stats."""
    shot_frames = np.asarray(shot_frames, dtype=np.float64)
    keyframe = shot_frames[len(shot_frames) // 2]
    color = global_features(keyframe)
    diffs = frame_differences(shot_frames)
    if len(diffs):
        motion = np.array([float(diffs.mean()), float(diffs.std()),
                           float(diffs.max())])
    else:
        motion = np.zeros(3)
    meta = video_feature_meta()
    return np.clip(np.concatenate([color, motion]), meta.min_values, meta.max_values)


def signature_from_video(
    frames: np.ndarray,
    spans: Optional[Sequence[Tuple[int, int]]] = None,
    object_id: Optional[int] = None,
) -> ObjectSignature:
    """Detect shots (unless spans are given) and extract a video."""
    if spans is None:
        spans = detect_shots(frames)
    if not spans:
        raise ValueError("video contains no shots")
    features = np.stack([shot_feature(frames[s:e]) for s, e in spans])
    lengths = np.asarray([e - s for s, e in spans], dtype=np.float64)
    return ObjectSignature(
        features, normalize_weights(lengths), object_id=object_id, normalize=False
    )
