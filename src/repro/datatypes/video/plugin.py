"""Video data plug-in and benchmark builder (future-work data type)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...core.plugin import DataTypePlugin
from ...core.types import Dataset, FeatureMeta
from ...evaltool.benchmark import BenchmarkSuite
from .features import signature_from_video, video_feature_meta
from .synthetic import VideoSpec, perturb_video, random_video, render_video

__all__ = ["make_video_plugin", "VideoBenchmark", "generate_video_benchmark"]


def make_video_plugin(meta: Optional[FeatureMeta] = None) -> DataTypePlugin:
    """Video plug-in: l1 over 24-dim shot descriptors, EMD over shots
    (shot order does not matter, mirroring the audio use case)."""

    def seg_extract(filename: str) -> "ObjectSignature":
        frames = np.load(filename)
        return signature_from_video(frames)

    return DataTypePlugin(
        name="video",
        meta=meta if meta is not None else video_feature_meta(),
        seg_extract=seg_extract,
    )


@dataclass
class VideoBenchmark:
    dataset: Dataset
    suite: BenchmarkSuite
    videos: Dict[int, VideoSpec]


def generate_video_benchmark(
    num_videos: int = 12,
    renditions_per_video: int = 4,
    num_distractors: int = 30,
    frame_size: int = 32,
    seed: int = 41,
) -> VideoBenchmark:
    """Each similarity set is one shot sequence rendered several times
    under perturbation (different edit/camera); the real shot detector
    segments every rendition."""
    rng = np.random.default_rng(seed)
    dataset = Dataset()
    suite = BenchmarkSuite(f"video-{num_videos}x{renditions_per_video}")
    videos: Dict[int, VideoSpec] = {}

    def ingest(spec: VideoSpec) -> int:
        frames, _spans = render_video(spec, frame_size, frame_size, rng)
        signature = signature_from_video(frames)
        object_id = dataset.add(signature)
        videos[object_id] = spec
        return object_id

    for vid in range(num_videos):
        base = random_video(rng)
        members: List[int] = []
        for rendition in range(renditions_per_video):
            spec = base if rendition == 0 else perturb_video(base, rng)
            members.append(ingest(spec))
        suite.add(f"video{vid:03d}", members)

    for _ in range(num_distractors):
        ingest(random_video(rng))

    return VideoBenchmark(dataset, suite, videos)
