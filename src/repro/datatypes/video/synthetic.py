"""Synthetic video workload — the other future-work data type.

The paper's conclusion plans to extend the toolkit to video.  We build
video compositionally on the image substrate: a *shot* is one synthetic
scene whose regions move along linear trajectories for a number of
frames; a *video* is a sequence of shots (hard cuts between different
scenes).  A re-rendering of the same shot sequence — perturbed scenes,
different motion speeds, new noise — models the same footage cut by a
different editor or recorded by a different camera, giving ground-truth
similarity sets with the usual noisy-but-similar structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..image.synthetic import SceneSpec, perturb_scene, random_scene, render_scene

__all__ = [
    "FRAME_RATE",
    "ShotSpec",
    "VideoSpec",
    "random_video",
    "perturb_video",
    "render_video",
]

FRAME_RATE = 10  # frames per second of synthetic footage


@dataclass(frozen=True)
class ShotSpec:
    """One shot: a scene, per-region velocities, and a duration."""

    scene: SceneSpec
    velocities: Tuple[Tuple[float, float], ...]  # (dy, dx) per region, frac/s
    duration: float  # seconds


@dataclass(frozen=True)
class VideoSpec:
    shots: Tuple[ShotSpec, ...]


def _random_velocities(
    rng: np.random.Generator, count: int
) -> Tuple[Tuple[float, float], ...]:
    return tuple(
        (float(rng.normal(0.0, 0.05)), float(rng.normal(0.0, 0.05)))
        for _ in range(count)
    )


def random_shot(rng: np.random.Generator) -> ShotSpec:
    scene = random_scene(rng)
    return ShotSpec(
        scene=scene,
        velocities=_random_velocities(rng, len(scene.regions)),
        duration=float(rng.uniform(0.8, 2.5)),
    )


def random_video(rng: np.random.Generator, num_shots: Optional[int] = None) -> VideoSpec:
    if num_shots is None:
        num_shots = int(rng.integers(3, 7))
    return VideoSpec(tuple(random_shot(rng) for _ in range(num_shots)))


def perturb_video(
    video: VideoSpec, rng: np.random.Generator, strength: float = 1.0
) -> VideoSpec:
    """Same footage, different rendering: scenes perturbed, motion and
    cut timing jittered, occasionally a shot dropped."""
    shots: List[ShotSpec] = []
    for shot in video.shots:
        if rng.random() < 0.05 * strength and len(video.shots) > 2:
            continue  # shot cut in the other edit
        scene = perturb_scene(shot.scene, rng, strength=0.6 * strength)
        velocities = tuple(
            (
                vy * float(np.exp(rng.normal(0.0, 0.2 * strength))),
                vx * float(np.exp(rng.normal(0.0, 0.2 * strength))),
            )
            for vy, vx in shot.velocities[: len(scene.regions)]
        )
        # perturb_scene may drop regions; pad velocities if it added none
        while len(velocities) < len(scene.regions):
            velocities = velocities + ((0.0, 0.0),)
        shots.append(
            ShotSpec(
                scene=scene,
                velocities=velocities,
                duration=float(
                    np.clip(shot.duration * np.exp(rng.normal(0.0, 0.15 * strength)),
                            0.4, 4.0)
                ),
            )
        )
    return VideoSpec(tuple(shots))


def _advance(scene: SceneSpec, velocities, dt: float) -> SceneSpec:
    regions = []
    for region, (vy, vx) in zip(scene.regions, velocities):
        cy = float(np.clip(region.center[0] + vy * dt, 0.05, 0.95))
        cx = float(np.clip(region.center[1] + vx * dt, 0.05, 0.95))
        regions.append(replace(region, center=(cy, cx)))
    return replace(scene, regions=tuple(regions))


def render_video(
    video: VideoSpec,
    height: int = 32,
    width: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Rasterize a video; returns ``(frames (T,H,W,3), shot spans)``."""
    rng = rng or np.random.default_rng(0)
    frames: List[np.ndarray] = []
    spans: List[Tuple[int, int]] = []
    cursor = 0
    for shot in video.shots:
        n_frames = max(2, int(shot.duration * FRAME_RATE))
        scene = shot.scene
        for t in range(n_frames):
            frames.append(render_scene(scene, height, width, rng))
            scene = _advance(scene, shot.velocities, 1.0 / FRAME_RATE)
        spans.append((cursor, cursor + n_frames))
        cursor += n_frames
    return np.stack(frames), spans
