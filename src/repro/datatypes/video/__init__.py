"""Video data type (toolkit extension, the paper's future work): shot
sequences over the synthetic image substrate, frame-difference shot
detection, 24-dim keyframe+motion shot features, l1 + EMD plug-in."""

from .features import (
    VIDEO_DIM,
    detect_shots,
    frame_differences,
    shot_feature,
    signature_from_video,
    video_feature_meta,
)
from .plugin import VideoBenchmark, generate_video_benchmark, make_video_plugin
from .synthetic import (
    FRAME_RATE,
    ShotSpec,
    VideoSpec,
    perturb_video,
    random_video,
    render_video,
)

__all__ = [
    "FRAME_RATE",
    "ShotSpec",
    "VIDEO_DIM",
    "VideoBenchmark",
    "VideoSpec",
    "detect_shots",
    "frame_differences",
    "generate_video_benchmark",
    "make_video_plugin",
    "perturb_video",
    "random_video",
    "render_video",
    "shot_feature",
    "signature_from_video",
    "video_feature_meta",
]
