"""Data-type plug-ins demonstrated in the paper (section 5): image,
audio, 3D shape and genomic microarray data, each with a synthetic
benchmark generator standing in for the paper's datasets."""

from typing import Optional, Tuple

from ..core.engine import SimilaritySearchEngine
from ..core.filtering import FilterParams
from ..core.sketch import SketchParams
from ..core.types import meta_from_dataset

__all__ = ["build_demo_engine", "DEFAULT_SKETCH_BITS"]

# Table 1's sketch sizes per data type.
DEFAULT_SKETCH_BITS = {
    "image": 96,
    "audio": 600,
    "shape": 800,
    "genomic": 256,
    "sensor": 192,
    "video": 128,
}


def build_demo_engine(
    datatype: str,
    size: int = 200,
    sketch_bits: Optional[int] = None,
    seed: int = 42,
) -> Tuple[SimilaritySearchEngine, object]:
    """Build a ready-to-query engine over a synthetic benchmark.

    Returns ``(engine, benchmark)`` where the benchmark carries the
    dataset and gold-standard suite.  ``size`` scales the dataset
    (meaning varies slightly per data type).  This is the entry point
    the CLI tools and web demo use.
    """
    bits = sketch_bits or DEFAULT_SKETCH_BITS.get(datatype, 128)
    if datatype == "image":
        from .image import generate_image_benchmark, make_image_plugin

        bench = generate_image_benchmark(
            num_sets=max(4, size // 25), set_size=5,
            num_distractors=max(0, size - (size // 25) * 5), seed=seed,
        )
        plugin = make_image_plugin()
    elif datatype == "audio":
        from .audio import generate_audio_benchmark, make_audio_plugin

        bench = generate_audio_benchmark(
            num_sentences=max(4, size // 7), speakers_per_sentence=7, seed=seed
        )
        plugin = make_audio_plugin(meta_from_dataset(bench.dataset))
    elif datatype == "shape":
        from .shape import generate_shape_benchmark, make_shape_plugin

        bench = generate_shape_benchmark(
            instances_per_class=max(2, size // 15), seed=seed
        )
        plugin = make_shape_plugin(meta_from_dataset(bench.dataset))
    elif datatype == "sensor":
        from .sensor import generate_sensor_benchmark, make_sensor_plugin

        bench = generate_sensor_benchmark(
            num_sequences=max(4, size // 8), subjects_per_sequence=5, seed=seed
        )
        plugin = make_sensor_plugin(meta_from_dataset(bench.dataset))
    elif datatype == "video":
        from .video import generate_video_benchmark, make_video_plugin

        bench = generate_video_benchmark(
            num_videos=max(3, size // 12), renditions_per_video=4,
            num_distractors=max(0, size // 4), seed=seed,
        )
        plugin = make_video_plugin(meta_from_dataset(bench.dataset))
    elif datatype == "genomic":
        from .genomic import generate_genomic_benchmark, make_genomic_plugin

        bench = generate_genomic_benchmark(
            num_modules=max(4, size // 12), num_background=size, seed=seed
        )
        plugin = make_genomic_plugin(
            bench.expression.num_experiments,
            meta=meta_from_dataset(bench.dataset),
        )
    else:
        raise KeyError(f"unknown data type {datatype!r}")

    engine = SimilaritySearchEngine(
        plugin,
        SketchParams(bits, plugin.meta, seed=seed),
        FilterParams(),
    )
    for obj in bench.dataset:
        engine.insert(obj)
    return engine, bench
