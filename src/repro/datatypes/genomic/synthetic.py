"""Synthetic gene-expression microarray data (section 5.4).

The Princeton genomics group's data is a matrix of expression levels —
value ``(i, j)`` is the expression of gene ``i`` in experiment ``j``.
Genes belonging to one functional *module* are co-regulated: they follow
a shared latent expression program (up to gene-specific scaling and
offset) plus measurement noise.  We generate exactly that structure, so
module membership is the ground truth for "similarly expressed genes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ExpressionData", "generate_expression_matrix"]


@dataclass
class ExpressionData:
    """A synthetic microarray: matrix + per-gene module labels."""

    matrix: np.ndarray  # (num_genes, num_experiments)
    module_of: np.ndarray  # (num_genes,) int; -1 = background gene
    gene_names: List[str]

    @property
    def num_genes(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_experiments(self) -> int:
        return self.matrix.shape[1]

    def modules(self) -> Dict[int, List[int]]:
        """Module id -> list of member gene indices (background excluded)."""
        out: Dict[int, List[int]] = {}
        for gene, module in enumerate(self.module_of):
            if module >= 0:
                out.setdefault(int(module), []).append(gene)
        return out


def _latent_program(rng: np.random.Generator, num_experiments: int) -> np.ndarray:
    """A smooth latent expression profile: a few random low frequencies."""
    t = np.linspace(0.0, 1.0, num_experiments)
    profile = np.zeros(num_experiments)
    for _ in range(int(rng.integers(2, 5))):
        freq = rng.uniform(0.5, 4.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        profile += rng.normal(0.0, 1.0) * np.sin(2.0 * np.pi * freq * t + phase)
    return profile / max(1e-9, np.abs(profile).max())


def generate_expression_matrix(
    num_modules: int = 20,
    genes_per_module: int = 8,
    num_background: int = 200,
    num_experiments: int = 80,
    noise: float = 0.25,
    seed: int = 31,
) -> ExpressionData:
    """Build a module-structured expression matrix.

    Module genes follow the module's latent program with gene-specific
    amplitude/offset plus Gaussian noise; background genes are
    independent noise-dominated profiles.
    """
    rng = np.random.default_rng(seed)
    rows: List[np.ndarray] = []
    module_of: List[int] = []
    names: List[str] = []

    for module in range(num_modules):
        program = _latent_program(rng, num_experiments)
        for member in range(genes_per_module):
            amplitude = rng.uniform(0.6, 1.8) * rng.choice([1.0, 1.0, 1.0, -1.0])
            offset = rng.normal(0.0, 0.3)
            row = amplitude * program + offset
            row = row + rng.normal(0.0, noise, num_experiments)
            rows.append(row)
            module_of.append(module)
            names.append(f"MOD{module:03d}G{member:02d}")

    for background in range(num_background):
        weak = 0.3 * _latent_program(rng, num_experiments)
        rows.append(weak + rng.normal(0.0, noise * 2.0, num_experiments))
        module_of.append(-1)
        names.append(f"BG{background:04d}")

    return ExpressionData(
        np.stack(rows), np.asarray(module_of, dtype=np.int64), names
    )
