"""Genomic data type plug-in (section 5.4).

"Segmentation only requires segmenting the big matrix row by row";
each gene's expression profile is its single feature vector, and the
research group experimented with Pearson, Spearman and l1 distances —
all three are selectable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ...core.distance import l1_distance, pearson_distance, spearman_distance
from ...core.plugin import DataTypePlugin
from ...core.types import Dataset, FeatureMeta, ObjectSignature
from ...evaltool.benchmark import BenchmarkSuite
from .synthetic import ExpressionData, generate_expression_matrix

__all__ = [
    "GENOMIC_DISTANCES",
    "make_genomic_plugin",
    "GenomicBenchmark",
    "generate_genomic_benchmark",
    "dataset_from_expression",
]

GENOMIC_DISTANCES: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "pearson": pearson_distance,
    "spearman": spearman_distance,
    "l1": l1_distance,
}


def make_genomic_plugin(
    num_experiments: int,
    distance: str = "pearson",
    meta: Optional[FeatureMeta] = None,
) -> DataTypePlugin:
    """Genomic plug-in over ``num_experiments``-dim expression profiles."""
    if distance not in GENOMIC_DISTANCES:
        raise KeyError(
            f"unknown genomic distance {distance!r}; choose from "
            f"{sorted(GENOMIC_DISTANCES)}"
        )
    seg_distance = GENOMIC_DISTANCES[distance]

    def obj_distance(a: ObjectSignature, b: ObjectSignature) -> float:
        return seg_distance(a.features[0], b.features[0])

    if meta is None:
        # Log-ratio expression values; +-4 covers typical dynamic range.
        meta = FeatureMeta(
            num_experiments,
            np.full(num_experiments, -4.0),
            np.full(num_experiments, 4.0),
        )
    return DataTypePlugin(
        name=f"genomic-{distance}",
        meta=meta,
        seg_distance=seg_distance,
        obj_distance=obj_distance,
    )


def dataset_from_expression(data: ExpressionData) -> Dataset:
    """One single-segment object per gene (row), ids = row indices."""
    dataset = Dataset()
    for gene in range(data.num_genes):
        dataset.add(
            ObjectSignature(data.matrix[gene][None, :], [1.0], object_id=gene)
        )
    return dataset


@dataclass
class GenomicBenchmark:
    dataset: Dataset
    suite: BenchmarkSuite
    expression: ExpressionData


def generate_genomic_benchmark(
    num_modules: int = 20,
    genes_per_module: int = 8,
    num_background: int = 200,
    num_experiments: int = 80,
    noise: float = 0.25,
    seed: int = 31,
) -> GenomicBenchmark:
    """Module-structured expression benchmark: each module is one
    gold-standard similarity set."""
    data = generate_expression_matrix(
        num_modules=num_modules,
        genes_per_module=genes_per_module,
        num_background=num_background,
        num_experiments=num_experiments,
        noise=noise,
        seed=seed,
    )
    dataset = dataset_from_expression(data)
    suite = BenchmarkSuite(f"microarray-{num_modules}x{genes_per_module}")
    for module, members in sorted(data.modules().items()):
        suite.add(f"module{module:03d}", members)
    return GenomicBenchmark(dataset, suite, data)
