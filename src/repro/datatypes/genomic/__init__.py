"""Genomic microarray data type: synthetic co-regulated expression
matrices and Pearson/Spearman/l1 plug-ins (section 5.4)."""

from .plugin import (
    GENOMIC_DISTANCES,
    GenomicBenchmark,
    dataset_from_expression,
    generate_genomic_benchmark,
    make_genomic_plugin,
)
from .synthetic import ExpressionData, generate_expression_matrix

__all__ = [
    "ExpressionData",
    "GENOMIC_DISTANCES",
    "GenomicBenchmark",
    "dataset_from_expression",
    "generate_expression_matrix",
    "generate_genomic_benchmark",
    "make_genomic_plugin",
]
