"""Bulk feature-space dataset generators for the speed benchmarks.

The paper's search-*speed* suite uses large collections (600k crawled
images, 40k shape models) whose only relevant property for timing is
their metadata: how many objects, how many segments per object, and the
feature dimensionality.  These generators synthesize signature
populations with the right statistics directly in feature space —
clustered around prototypes drawn from the real extractors' output
distribution — so Table 2 and Figure 8 can sweep dataset sizes without
rendering half a million scenes.

Quality benchmarks never use these; they run the real pipelines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.types import Dataset, FeatureMeta, ObjectSignature, normalize_weights

__all__ = [
    "clustered_dataset",
    "bulk_image_dataset",
    "bulk_audio_dataset",
    "bulk_shape_dataset",
]


def clustered_dataset(
    count: int,
    meta: FeatureMeta,
    avg_segments: float,
    num_prototypes: int = 128,
    spread: float = 0.08,
    seed: int = 0,
) -> Dataset:
    """Signatures with Poisson segment counts, clustered around random
    prototypes inside ``meta``'s bounds."""
    rng = np.random.default_rng(seed)
    span = meta.ranges
    prototypes = meta.min_values + rng.random((num_prototypes, meta.dim)) * span
    dataset = Dataset()
    for _ in range(count):
        if avg_segments <= 1.0:
            k = 1
        else:
            k = max(1, int(rng.poisson(avg_segments)))
        chosen = rng.integers(0, num_prototypes, size=k)
        feats = prototypes[chosen] + rng.normal(0.0, spread, (k, meta.dim)) * span
        feats = np.clip(feats, meta.min_values, meta.max_values)
        weights = normalize_weights(rng.gamma(2.0, 1.0, size=k))
        dataset.add(ObjectSignature(feats, weights, normalize=False))
    return dataset


def bulk_image_dataset(count: int, seed: int = 0) -> Dataset:
    """Mixed-image-dataset substitute: 14-dim, 10.8 segments/object."""
    from .image import image_feature_meta

    return clustered_dataset(
        count, image_feature_meta(), avg_segments=10.8, seed=seed
    )


def bulk_audio_dataset(count: int, seed: int = 0) -> Dataset:
    """TIMIT-scale substitute: 192-dim MFCC space, 8.6 words/utterance
    (the paper's Table 2 reports 8.6 average segments)."""
    from .audio import audio_feature_meta

    return clustered_dataset(
        count, audio_feature_meta(), avg_segments=8.6, spread=0.05, seed=seed
    )


def bulk_shape_dataset(count: int, seed: int = 0) -> Dataset:
    """Mixed-shape-dataset substitute: one 544-dim descriptor per model.

    Prototypes are *real* SHD descriptors (one per parametric shape
    class) so the population has the true descriptor value distribution;
    instances jitter around them.
    """
    from .shape import SHAPE_CLASSES, descriptor_from_mesh, make_instance

    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [
            descriptor_from_mesh(
                make_instance(cls, rng), num_samples=3000,
                rng=np.random.default_rng(i),
            )
            for i, cls in enumerate(SHAPE_CLASSES)
        ]
    )
    scale = prototypes.std()
    dataset = Dataset()
    for _ in range(count):
        proto = prototypes[rng.integers(0, len(prototypes))]
        descriptor = np.maximum(
            proto + rng.normal(0.0, 0.15 * scale, proto.shape), 0.0
        )
        dataset.add(ObjectSignature(descriptor[None, :], [1.0]))
    return dataset
