"""FerretSystem — the assembled toolkit as one object.

The paper's Figure 2 shows the components a system builder wires
together: the core search engine, metadata management, attribute search,
data acquisition, and the query interfaces.  :class:`FerretSystem` is
that wiring as a library type: give it a plug-in and a directory and it
owns a transactional store, a persistent attribute index, an engine that
writes through to the store, and (optionally) the watched ingest
directory and network endpoints — all recovered together on reopen.

Example::

    from repro.system import FerretSystem
    from repro.datatypes.image import make_image_plugin

    with FerretSystem(make_image_plugin(), "/var/lib/ferret") as system:
        oid = system.insert_file("photo.npy", {"album": "vacation"})
        hits = system.search(oid, top_k=10, attr_query="album:vacation")
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set

from .acquisition.scanner import DirectoryScanner
from .attrsearch.index import PersistentIndex
from .attrsearch.query import AttributeSearcher
from .core.engine import SearchMethod, SimilaritySearchEngine
from .core.filtering import FilterParams
from .core.parallel import ParallelConfig
from .core.plugin import DataTypePlugin
from .core.ranking import SearchResult
from .core.sketch import SketchParams
from .core.types import ObjectSignature
from .metadata.manager import MetadataManager
from .observability import metrics as _metrics
from .observability.log import get_logger
from .storage.errors import StorageError
from .storage.kvstore import KVStore

__all__ = ["FerretSystem", "HealthState"]

_LOG = get_logger("health")
_M_ERRORS = _metrics.counter("health.errors")
_M_FALLBACKS = _metrics.counter("health.fallbacks")
_M_DEGRADED_COMPONENTS = _metrics.gauge("health.degraded_components")


class HealthState:
    """Thread-safe degradation ledger for a running search system.

    Components (``storage``, ``lsh_index``, ``engine``, ...) are marked
    degraded when they raise and healthy again when they recover; the
    query interface reports this through the ``health`` protocol command
    and prefixes failures caused by degraded components with
    ``ERR DEGRADED <reason>`` so clients can distinguish "your request
    was bad" from "the server is impaired" (see docs/ROBUSTNESS.md).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._degraded: Dict[str, str] = {}
        self._error_counts: Dict[str, int] = {}
        self._fallback_counts: Dict[str, int] = {}

    # -- updates ---------------------------------------------------------
    def record_error(self, component: str, exc: BaseException) -> None:
        """Count an error and mark the component degraded."""
        with self._lock:
            self._error_counts[component] = self._error_counts.get(component, 0) + 1
            newly = component not in self._degraded
            self._degraded[component] = f"{type(exc).__name__}: {exc}"
            n_degraded = len(self._degraded)
        _M_ERRORS.inc()
        _M_DEGRADED_COMPONENTS.set(n_degraded)
        if newly:
            _LOG.warning(
                "component_degraded",
                component=component,
                error=f"{type(exc).__name__}: {exc}",
            )

    def record_fallback(self, component: str, reason: str = "") -> None:
        """Count a successful fallback away from a failing component."""
        with self._lock:
            self._fallback_counts[component] = (
                self._fallback_counts.get(component, 0) + 1
            )
            newly = reason and component not in self._degraded
            if reason:
                self._degraded.setdefault(component, reason)
            n_degraded = len(self._degraded)
        _M_FALLBACKS.inc()
        _M_DEGRADED_COMPONENTS.set(n_degraded)
        if newly:
            _LOG.warning("fallback", component=component, reason=reason)

    def mark_healthy(self, component: str) -> None:
        with self._lock:
            recovered = self._degraded.pop(component, None)
            n_degraded = len(self._degraded)
        _M_DEGRADED_COMPONENTS.set(n_degraded)
        if recovered is not None:
            _LOG.info("component_recovered", component=component)

    # -- queries ---------------------------------------------------------
    @property
    def degraded(self) -> bool:
        with self._lock:
            return bool(self._degraded)

    def degraded_components(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._degraded)

    def reason(self) -> str:
        with self._lock:
            if not self._degraded:
                return ""
            return "; ".join(f"{c}: {r}" for c, r in sorted(self._degraded.items()))

    def status_lines(self) -> List[str]:
        """Protocol lines for the ``health`` command (``key value`` pairs)."""
        with self._lock:
            lines = [
                f"status {'degraded' if self._degraded else 'ok'}",
                f"uptime_seconds {time.monotonic() - self._started:.1f}",
            ]
            for component, why in sorted(self._degraded.items()):
                lines.append(f"degraded.{component} {why.splitlines()[0]}")
            for component, count in sorted(self._error_counts.items()):
                lines.append(f"errors.{component} {count}")
            for component, count in sorted(self._fallback_counts.items()):
                lines.append(f"fallbacks.{component} {count}")
        return lines


class FerretSystem:
    """A durable, queryable similarity search system for one data type.

    Parameters
    ----------
    plugin:
        The data-type plug-in.
    directory:
        Home of the system's store (created if missing).
    sketch_params / filter_params:
        Engine tuning; the sketch seed is persisted on first open and
        reused afterwards so stored sketches stay comparable.
    parallel:
        Sharded-scan tuning forwarded to the engine (worker count,
        auto-enable threshold, result-cache size).
    store_kwargs:
        Forwarded to the underlying :class:`KVStore` (sync policy etc.).
    """

    def __init__(
        self,
        plugin: DataTypePlugin,
        directory: str,
        sketch_params: Optional[SketchParams] = None,
        filter_params: Optional[FilterParams] = None,
        parallel: Optional[ParallelConfig] = None,
        **store_kwargs,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.health = HealthState()
        self.store = KVStore(directory, **store_kwargs)
        self.metadata = MetadataManager(store=self.store)
        self.index = PersistentIndex(self.store)
        self.searcher = AttributeSearcher(self.index)
        sketch_params = self._pin_sketch_params(plugin, sketch_params)
        self.engine = SimilaritySearchEngine(
            plugin, sketch_params, filter_params, metadata=self.metadata,
            parallel=parallel,
        )
        self._closed = False
        self.loaded = self.engine.load()

    # ------------------------------------------------------------------
    # Sketch parameter pinning
    # ------------------------------------------------------------------
    # Sketches stored on disk were built with one (n_bits, K, seed)
    # triple; silently reopening with different parameters would make
    # new sketches incomparable with stored ones.  Persist the triple on
    # first open and verify it afterwards.
    _PARAMS_KEY = b"sketch_params"
    _SYSTEM_TREE = "system"

    def _pin_sketch_params(
        self, plugin: DataTypePlugin, requested: Optional[SketchParams]
    ) -> SketchParams:
        stored = self.store.get(self._SYSTEM_TREE, self._PARAMS_KEY)
        if stored is None:
            params = requested or SketchParams(n_bits=64, meta=plugin.meta)
            encoded = f"{params.n_bits},{params.k_xor},{params.seed}".encode()
            self.store.put(self._SYSTEM_TREE, self._PARAMS_KEY, encoded)
            return params
        n_bits, k_xor, seed = (int(x) for x in stored.decode().split(","))
        if requested is not None and (
            requested.n_bits, requested.k_xor, requested.seed
        ) != (n_bits, k_xor, seed):
            raise ValueError(
                f"store was created with sketch params (N={n_bits}, K={k_xor}, "
                f"seed={seed}); reopen with those or rebuild the store"
            )
        meta = requested.meta if requested is not None else plugin.meta
        return SketchParams(n_bits=n_bits, meta=meta, k_xor=k_xor, seed=seed)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def insert(
        self,
        signature: ObjectSignature,
        attributes: Optional[Mapping[str, str]] = None,
    ) -> int:
        try:
            object_id = self.engine.insert(signature, attributes)
            if attributes:
                self.index.add(object_id, dict(attributes))
        except StorageError as exc:
            self.health.record_error("storage", exc)
            raise
        self.health.mark_healthy("storage")
        return object_id

    def insert_file(
        self, path: str, attributes: Optional[Mapping[str, str]] = None
    ) -> int:
        try:
            object_id = self.engine.insert_file(path, attributes)
            if attributes:
                self.index.add(object_id, dict(attributes))
        except StorageError as exc:
            self.health.record_error("storage", exc)
            raise
        self.health.mark_healthy("storage")
        return object_id

    def watch_directory(
        self,
        path: str,
        extensions: Optional[Sequence[str]] = None,
        attribute_fn=None,
        interval: Optional[float] = None,
    ) -> DirectoryScanner:
        """Attach directory-scan acquisition; returns the scanner.

        With ``interval`` set, polling starts immediately on a daemon
        thread; otherwise call ``scanner.scan_once()`` yourself.
        Imported files get their attributes indexed automatically.
        """
        scanner = DirectoryScanner(
            self.engine, path, extensions=extensions, attribute_fn=attribute_fn
        )

        def on_import(file_path: str, object_id: int) -> None:
            attrs = attribute_fn(file_path) if attribute_fn else {}
            if attrs:
                self.index.add(object_id, attrs)

        scanner.on_import = on_import
        if interval is not None:
            scanner.start(interval)
        return scanner

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        seed: "int | ObjectSignature",
        top_k: int = 10,
        method: SearchMethod = SearchMethod.FILTERING,
        attr_query: Optional[str] = None,
        exclude_self: Optional[bool] = None,
    ) -> List[SearchResult]:
        """Similarity search, optionally restricted by an attribute query.

        ``seed`` is an indexed object id or a fresh signature.  When the
        seed is an indexed id, it is excluded from results by default.
        """
        restrict: Optional[Set[int]] = None
        if attr_query:
            restrict = self.searcher.search(attr_query)
        if isinstance(seed, int):
            query = self.engine.get_object(seed)
            exclude = True if exclude_self is None else exclude_self
        else:
            query = seed
            exclude = False if exclude_self is None else exclude_self
        return self.engine.query(
            query, top_k=top_k, method=method, exclude_self=exclude,
            restrict_to=sorted(restrict) if restrict is not None else None,
        )

    def attribute_search(self, query: str) -> List[int]:
        return sorted(self.searcher.search(query))

    def attributes_of(self, object_id: int) -> Dict[str, str]:
        return self.metadata.get_attributes(object_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        self.store.checkpoint()

    def close(self) -> None:
        if not self._closed:
            self.engine.close()  # tear down the scan worker pool first
            self.store.close()
            self._closed = True

    def __enter__(self) -> "FerretSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.engine)
