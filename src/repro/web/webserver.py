"""Stand-alone web interface (section 4.3).

"We implemented it by using the Python scripting language to construct a
stand-alone web server and connecting it with the Ferret server using
the command line interface."  Faithfully reproduced: this stdlib
``http.server`` application issues protocol commands — either over TCP
to a :class:`repro.server.server.FerretServer` or in-process against a
:class:`repro.server.commands.CommandProcessor` — and renders results as
HTML.

Routes: ``/`` (home + forms), ``/query?id=&top=&method=&attr=``,
``/queryfile?path=&top=&method=``, ``/attrquery?q=``, ``/metrics``
(the metrics registry as plain text, same line format as the server's
``metrics`` command), ``/metrics.txt`` (the Prometheus text exposition
format, served through ``metrics -p`` so worker-side series are folded
in — point a scraper here), and ``/events`` (the event journal as an
HTML timeline, served through the ``events`` command).
"""

from __future__ import annotations

import argparse
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from ..observability import metrics as _metrics
from ..observability.log import get_logger, set_quiet
from ..server.client import ClientError
from ..server.commands import CommandProcessor
from ..server.protocol import ProtocolError, parse_command, quote
from .views import (
    ResultRenderer,
    render_events,
    render_home,
    render_page,
    render_results,
)

__all__ = ["WebApp", "FerretWebServer", "serve_web_background", "main"]

_LOG = get_logger("web")
_M_REQUESTS = _metrics.counter("web.requests")
_M_REQUEST_ERRORS = _metrics.counter("web.request_errors")
_M_ERR_ABSORBED = _metrics.counter("errors_absorbed.web.handle")


class WebApp:
    """Request-handling logic, separated from the HTTP plumbing.

    ``backend`` is anything with ``send(line) -> List[str]`` — a
    :class:`repro.server.client.FerretClient` for remote mode, or the
    :class:`_LocalBackend` wrapper for in-process mode.
    """

    def __init__(
        self,
        backend: "object",
        title: str = "Ferret similarity search",
        renderer: Optional[ResultRenderer] = None,
        attributes: Optional[Dict[int, Dict[str, str]]] = None,
    ) -> None:
        self.backend = backend
        self.title = title
        self.renderer = renderer
        self.attributes = attributes or {}

    # -- helpers -----------------------------------------------------------
    def _attrs_of(self, object_id: int) -> Dict[str, str]:
        return self.attributes.get(object_id, {})

    def _result_rows(self, lines: List[str]) -> List[Tuple[int, float, Dict[str, str]]]:
        rows = []
        for line in lines:
            oid, _, dist = line.partition(" ")
            object_id = int(oid)
            rows.append((object_id, float(dist), self._attrs_of(object_id)))
        return rows

    # -- routes -----------------------------------------------------------
    def content_type(self, path: str) -> str:
        """MIME type for a request path (``/metrics*`` are plain text)."""
        route = urlparse(path).path
        if route == "/metrics":
            return "text/plain; charset=utf-8"
        if route == "/metrics.txt":
            # The version parameter is part of Prometheus' exposition
            # content type; scrapers use it to pick a parser.
            return "text/plain; version=0.0.4; charset=utf-8"
        return "text/html; charset=utf-8"

    def handle(self, path: str) -> Tuple[int, str]:
        """Dispatch a request path; returns (status, body)."""
        _M_REQUESTS.inc()
        parsed = urlparse(path)
        params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        try:
            if parsed.path == "/":
                return 200, self._home()
            if parsed.path == "/query":
                return 200, self._query(params)
            if parsed.path == "/queryfile":
                return 200, self._queryfile(params)
            if parsed.path == "/attrquery":
                return 200, self._attrquery(params)
            if parsed.path == "/metrics":
                return 200, "\n".join(_metrics.get_registry().render()) + "\n"
            if parsed.path == "/metrics.txt":
                # Scrape endpoint: go through the `metrics -p` command so
                # worker deltas are folded in and remote mode scrapes the
                # engine-owning process, not this frontend.
                return 200, "\n".join(self.backend.send("metrics -p")) + "\n"
            if parsed.path == "/events":
                return 200, self._events(params)
            return 404, render_page(self.title, "<p class='err'>not found</p>")
        except (ClientError, ValueError, KeyError, OSError) as exc:
            # Expected request-level failures only: malformed parameters
            # (ValueError covers ProtocolError), backend/protocol errors,
            # missing objects, and I/O against a remote backend.  A bug
            # elsewhere (TypeError, numpy errors, ...) propagates to the
            # HTTP layer instead of being dressed up as a 500 page.
            _M_REQUEST_ERRORS.inc()
            _M_ERR_ABSORBED.inc()
            _LOG.warning(
                "request_failed",
                path=parsed.path,
                error=f"{type(exc).__name__}: {exc}",
            )
            return 500, render_page(
                self.title, f"<p class='err'>error: {type(exc).__name__}: {exc}</p>"
            )

    def _home(self, message: str = "") -> str:
        count = int(self.backend.send("count")[0])
        stats = {}
        for line in self.backend.send("stat"):
            key, _, value = line.partition(" ")
            stats[key] = value
        return render_home(self.title, count, stats, message)

    def _events(self, params: Dict[str, str]) -> str:
        line = "events"
        if params.get("n"):
            line += f" {int(params['n'])}"
        lines = self.backend.send(line)
        # First line is "events_total <n>"; the rest are journal rows.
        total = int(lines[0].partition(" ")[2]) if lines else 0
        return render_events(self.title, total, lines[1:])

    def _query(self, params: Dict[str, str]) -> str:
        if "id" not in params:
            return self._home("missing seed object id")
        parts = [
            f"query {int(params['id'])}",
            f"top={int(params.get('top', '10') or 10)}",
            f"method={params.get('method', 'filtering') or 'filtering'}",
        ]
        if params.get("attr"):
            parts.append(f"attr={quote(params['attr'])}")
        lines = self.backend.send(" ".join(parts))
        description = f"{len(lines)} results for object {params['id']}"
        if params.get("attr"):
            description += f" within attribute query {params['attr']!r}"
        return render_results(
            self.title, description, self._result_rows(lines), self.renderer
        )

    def _queryfile(self, params: Dict[str, str]) -> str:
        if not params.get("path"):
            return self._home("missing query file path")
        parts = [
            f"queryfile {quote(params['path'])}",
            f"top={int(params.get('top', '10') or 10)}",
            f"method={params.get('method', 'filtering') or 'filtering'}",
        ]
        lines = self.backend.send(" ".join(parts))
        return render_results(
            self.title,
            f"{len(lines)} results for file {params['path']!r}",
            self._result_rows(lines),
            self.renderer,
        )

    def _attrquery(self, params: Dict[str, str]) -> str:
        if not params.get("q"):
            return self._home("missing attribute query")
        lines = self.backend.send(f"attrquery {quote(params['q'])}")
        rows = [(int(line), 0.0, self._attrs_of(int(line))) for line in lines]
        return render_results(
            self.title,
            f"{len(rows)} objects match {params['q']!r}",
            rows,
            self.renderer,
        )


class _LocalBackend:
    """In-process adapter: the command protocol without a socket."""

    def __init__(self, processor: CommandProcessor) -> None:
        self.processor = processor

    def send(self, line: str) -> List[str]:
        return self.processor.execute(parse_command(line))


class _WebHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        app: WebApp = self.server.app  # type: ignore[attr-defined]
        status, page = app.handle(self.path)
        payload = page.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", app.content_type(self.path))
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # silence stderr
        pass


class FerretWebServer(ThreadingHTTPServer):
    """HTTP server bound to ``(host, port)``; ``port=0`` = ephemeral."""

    def __init__(self, app: WebApp, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _WebHandler)
        self.app = app


def serve_web_background(
    app: WebApp, host: str = "127.0.0.1", port: int = 0
) -> FerretWebServer:
    server = FerretWebServer(app, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: serve a web UI over an in-process demo engine."""
    parser = argparse.ArgumentParser(description="Ferret web interface")
    parser.add_argument("--datatype", default="image")
    parser.add_argument("--size", type=int, default=150)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress startup/progress logging (errors still log)",
    )
    args = parser.parse_args(argv)
    if args.quiet:
        set_quiet(True)

    from ..datatypes import build_demo_engine

    engine, _bench = build_demo_engine(args.datatype, size=args.size)
    processor = CommandProcessor(engine)
    app = WebApp(
        _LocalBackend(processor), title=f"Ferret {args.datatype} search"
    )
    server = FerretWebServer(app, args.host, args.port)
    host, port = server.server_address
    _LOG.info(
        "ready",
        url=f"http://{host}:{port}/",
        objects=len(engine),
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
