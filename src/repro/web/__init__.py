"""Customizable web interface over the command-line protocol (section 4.3)."""

from .renderers import (
    heatstrip_svg,
    make_audio_renderer,
    make_genomic_renderer,
    make_image_renderer,
    make_sensor_renderer,
    make_video_renderer,
    sparkline_svg,
    swatch_svg,
)
from .views import ResultRenderer, render_home, render_page, render_results
from .webserver import FerretWebServer, WebApp, serve_web_background

__all__ = [
    "FerretWebServer",
    "heatstrip_svg",
    "make_audio_renderer",
    "make_genomic_renderer",
    "make_image_renderer",
    "make_sensor_renderer",
    "make_video_renderer",
    "sparkline_svg",
    "swatch_svg",
    "ResultRenderer",
    "WebApp",
    "render_home",
    "render_page",
    "render_results",
    "serve_web_background",
]
