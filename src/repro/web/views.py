"""HTML rendering for the web interface.

The paper's web UI shares "the majority of the code ... across different
application types" with an isolated "application-specific presentation
part".  Here the shared part is page layout + tables; the per-type part
is a result-renderer callable that turns ``(object_id, distance,
attributes)`` into an extra HTML cell (e.g. a waveform sketch or gene
link).
"""

from __future__ import annotations

import html
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ResultRenderer",
    "render_events",
    "render_home",
    "render_page",
    "render_results",
]

ResultRenderer = Callable[[int, float, Dict[str, str]], str]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin-top: 1em; }
td, th { border: 1px solid #bbb; padding: 4px 10px; text-align: left; }
th { background: #eee; }
form { margin: 0.6em 0; }
input[type=text] { width: 24em; }
.err { color: #a00; font-weight: bold; }
"""


def render_page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html><head>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style>"
        "</head><body>"
        f"<h1>{html.escape(title)}</h1>{body}</body></html>"
    )


def render_home(
    title: str, count: int, stats: Dict[str, str], message: str = ""
) -> str:
    stat_rows = "".join(
        f"<tr><td>{html.escape(k)}</td><td>{html.escape(str(v))}</td></tr>"
        for k, v in stats.items()
    )
    body = f"""
{f'<p class="err">{html.escape(message)}</p>' if message else ''}
<p>{count} objects indexed.</p>
<h2>Similarity search</h2>
<form action="/query" method="get">
  Seed object id: <input type="text" name="id" size="8">
  Results: <input type="text" name="top" value="10" size="4">
  Method: <select name="method">
    <option value="filtering">filtering</option>
    <option value="brute_force_sketch">brute_force_sketch</option>
    <option value="brute_force_original">brute_force_original</option>
  </select>
  Attribute filter: <input type="text" name="attr" size="24">
  <input type="submit" value="Search">
</form>
<h2>Attribute search</h2>
<form action="/attrquery" method="get">
  Query: <input type="text" name="q">
  <input type="submit" value="Search">
</form>
<h2>Engine statistics</h2>
<p><a href="/metrics">raw metrics</a> &middot;
<a href="/metrics.txt">Prometheus scrape endpoint</a> &middot;
<a href="/events">event journal</a></p>
<table><tr><th>stat</th><th>value</th></tr>{stat_rows}</table>
"""
    return render_page(title, body)


def render_events(title: str, total: int, event_lines: List[str]) -> str:
    """The event journal as a table (postmortem timeline, oldest first).

    ``event_lines`` are the wire-format rows from the ``events`` command:
    ``<seq> <unix_ts> <kind> k=v ...``.
    """
    rows = []
    for line in event_lines:
        parts = line.split(" ", 3)
        seq, ts, kind = parts[0], parts[1], parts[2] if len(parts) > 2 else ""
        fields = parts[3] if len(parts) > 3 else ""
        rows.append(
            f"<tr><td>{html.escape(seq)}</td><td>{html.escape(ts)}</td>"
            f"<td>{html.escape(kind)}</td><td>{html.escape(fields)}</td></tr>"
        )
    body = (
        f"<p>{total} events recorded since start "
        f"({len(rows)} retained).</p>"
        f'<p><a href="/">back</a></p>'
        "<table><tr><th>seq</th><th>timestamp</th><th>kind</th>"
        f"<th>fields</th></tr>{''.join(rows)}</table>"
    )
    return render_page(title, body)


def render_results(
    title: str,
    query_description: str,
    rows: List[Tuple[int, float, Dict[str, str]]],
    renderer: Optional[ResultRenderer] = None,
) -> str:
    header = "<tr><th>rank</th><th>object</th><th>distance</th><th>attributes</th>"
    if renderer is not None:
        header += "<th>preview</th>"
    header += "</tr>"
    body_rows = []
    for rank, (object_id, distance, attrs) in enumerate(rows, start=1):
        attr_text = ", ".join(
            f"{html.escape(k)}={html.escape(v)}" for k, v in sorted(attrs.items())
        )
        cells = (
            f"<td>{rank}</td>"
            f'<td><a href="/query?id={object_id}">{object_id}</a></td>'
            f"<td>{distance:.4f}</td><td>{attr_text}</td>"
        )
        if renderer is not None:
            cells += f"<td>{renderer(object_id, distance, attrs)}</td>"
        body_rows.append(f"<tr>{cells}</tr>")
    body = (
        f"<p>{html.escape(query_description)}</p>"
        f'<p><a href="/">back</a></p>'
        f"<table>{header}{''.join(body_rows)}</table>"
    )
    return render_page(title, body)
