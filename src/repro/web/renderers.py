"""Data-type specific result renderers for the web interface.

The paper's web UIs show per-type previews: wave-form/MFCC curves for
audio results (Figure 12), colored expression strips for genes
(Figure 13), thumbnails for images (Figures 10-11).  These helpers
produce small inline SVGs from the stored feature vectors — no image
files needed — and plug into :class:`repro.web.views.ResultRenderer`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core.engine import SimilaritySearchEngine

__all__ = [
    "sparkline_svg",
    "heatstrip_svg",
    "swatch_svg",
    "make_audio_renderer",
    "make_genomic_renderer",
    "make_image_renderer",
    "make_sensor_renderer",
    "make_video_renderer",
]


def sparkline_svg(
    values: np.ndarray, width: int = 120, height: int = 28, color: str = "#2266aa"
) -> str:
    """A polyline sparkline of a 1-D series."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size < 2:
        values = np.zeros(2)
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    xs = np.linspace(1, width - 1, len(values))
    ys = height - 2 - (values - lo) / span * (height - 4)
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        'stroke-width="1.5"/></svg>'
    )


def heatstrip_svg(
    values: np.ndarray, width: int = 160, height: int = 14
) -> str:
    """A red/green expression strip (negative = green, positive = red),
    like the microarray visualizations of the paper's Figure 13."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return ""
    scale = max(float(np.abs(values).max()), 1e-9)
    cell_w = width / len(values)
    cells = []
    for i, v in enumerate(values):
        intensity = int(200 * min(abs(v) / scale, 1.0)) + 30
        color = (
            f"rgb({intensity},20,20)" if v >= 0 else f"rgb(20,{intensity},20)"
        )
        cells.append(
            f'<rect x="{i * cell_w:.1f}" y="0" width="{cell_w + 0.5:.1f}" '
            f'height="{height}" fill="{color}"/>'
        )
    return f'<svg width="{width}" height="{height}">{"".join(cells)}</svg>'


def swatch_svg(colors: np.ndarray, size: int = 18) -> str:
    """Color swatches of an image's segment mean colors (a cheap
    thumbnail substitute built from the 14-dim features)."""
    cells = []
    for i, rgb in enumerate(np.atleast_2d(colors)):
        r, g, b = (int(255 * float(np.clip(c, 0, 1))) for c in rgb[:3])
        cells.append(
            f'<rect x="{i * size}" y="0" width="{size}" height="{size}" '
            f'fill="rgb({r},{g},{b})"/>'
        )
    width = size * max(1, np.atleast_2d(colors).shape[0])
    return f'<svg width="{width}" height="{size}">{"".join(cells)}</svg>'


def make_audio_renderer(engine: SimilaritySearchEngine) -> Callable:
    """Audio preview: the first MFCC coefficient across windows of the
    highest-weight segment (the paper's Figure 12 plots MFCC curves)."""

    def render(object_id: int, distance: float, attrs: Dict[str, str]) -> str:
        obj = engine.get_object(object_id)
        top = obj.top_segments(1)[0]
        # features are (windows x coeffs) flattened; take coefficient 0
        curve = obj.features[top].reshape(-1, 6)[:, 0]
        return sparkline_svg(curve)

    return render


def make_genomic_renderer(engine: SimilaritySearchEngine) -> Callable:
    """Gene preview: the expression profile as a red/green strip."""

    def render(object_id: int, distance: float, attrs: Dict[str, str]) -> str:
        obj = engine.get_object(object_id)
        return heatstrip_svg(obj.features[0])

    return render


def make_sensor_renderer(engine: SimilaritySearchEngine) -> Callable:
    """Sensor preview: sparkline of per-episode RMS energy (channel 0
    feature index 2), heaviest episodes first."""

    def render(object_id: int, distance: float, attrs: Dict[str, str]) -> str:
        obj = engine.get_object(object_id)
        order = obj.top_segments(obj.num_segments)
        return sparkline_svg(obj.features[order, 2], color="#22772a")

    return render


def make_video_renderer(engine: SimilaritySearchEngine) -> Callable:
    """Video preview: one keyframe mean-color swatch per shot, in shot
    weight order (a storyboard strip)."""

    def render(object_id: int, distance: float, attrs: Dict[str, str]) -> str:
        obj = engine.get_object(object_id)
        order = obj.top_segments(min(8, obj.num_segments))
        return swatch_svg(obj.features[order, :3])

    return render


def make_image_renderer(engine: SimilaritySearchEngine) -> Callable:
    """Image preview: per-segment mean-color swatches, heaviest first."""

    def render(object_id: int, distance: float, attrs: Dict[str, str]) -> str:
        obj = engine.get_object(object_id)
        order = obj.top_segments(min(6, obj.num_segments))
        return swatch_svg(obj.features[order, :3])

    return render
