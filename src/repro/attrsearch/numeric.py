"""Numeric attribute indexing for range queries.

Section 4.1.2's attributes "may take several forms: generic attributes
such as creation time, automatically collected annotations such as GPS
coordinates" — which calls for range predicates, not just keyword
matches.  Attribute values that parse as numbers are indexed here, and
the query language grows comparison terms (``field>5``, ``field<=2.5``,
``field:1..10``).

The persistent index stores one key per (field, value, object) with the
value packed through an *order-preserving float encoding*, so a numeric
range is exactly a B-tree key range scan.  The encoding is the classic
IEEE-754 trick: big-endian raw bits, with the sign bit flipped for
non-negative values and all bits inverted for negatives, which makes
``a < b  <=>  encode(a) < encode(b)`` bytewise for every finite float.
"""

from __future__ import annotations

import bisect
import math
import struct
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "encode_sortable_float",
    "decode_sortable_float",
    "parse_number",
    "MemoryNumericIndex",
    "PersistentNumericIndex",
]


def encode_sortable_float(value: float) -> bytes:
    """Pack a finite float so bytewise order equals numeric order."""
    if math.isnan(value):
        raise ValueError("cannot index NaN attribute values")
    (bits,) = struct.unpack(">Q", struct.pack(">d", value))
    if bits & (1 << 63):  # negative: invert everything
        bits ^= 0xFFFFFFFFFFFFFFFF
    else:  # non-negative: flip the sign bit
        bits ^= 1 << 63
    return struct.pack(">Q", bits)


def decode_sortable_float(encoded: bytes) -> float:
    (bits,) = struct.unpack(">Q", encoded)
    if bits & (1 << 63):
        bits ^= 1 << 63
    else:
        bits ^= 0xFFFFFFFFFFFFFFFF
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def parse_number(text: str) -> Optional[float]:
    """Float value of an attribute string, or None if it isn't numeric."""
    try:
        value = float(text.strip())
    except (ValueError, AttributeError):
        return None
    return value if math.isfinite(value) else None


class MemoryNumericIndex:
    """Per-field sorted (value, object_id) lists with bisect range scans."""

    def __init__(self) -> None:
        self._fields: Dict[str, List[Tuple[float, int]]] = {}

    def add(self, object_id: int, attributes: Dict[str, str]) -> None:
        for field, raw in attributes.items():
            value = parse_number(raw)
            if value is None:
                continue
            entries = self._fields.setdefault(field.lower(), [])
            bisect.insort(entries, (value, object_id))

    def remove(self, object_id: int, attributes: Dict[str, str]) -> None:
        for field, raw in attributes.items():
            value = parse_number(raw)
            if value is None:
                continue
            entries = self._fields.get(field.lower())
            if entries is None:
                continue
            idx = bisect.bisect_left(entries, (value, object_id))
            if idx < len(entries) and entries[idx] == (value, object_id):
                entries.pop(idx)

    def range_lookup(
        self,
        field: str,
        low: float = -math.inf,
        high: float = math.inf,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[int]:
        entries = self._fields.get(field.lower(), [])
        lo_key = (low, -1) if include_low else (low, float("inf"))
        start = bisect.bisect_left(entries, lo_key)
        out: Set[int] = set()
        for value, object_id in entries[start:]:
            if value > high or (value == high and not include_high):
                break
            if value == low and not include_low:
                continue
            out.add(object_id)
        return out


class PersistentNumericIndex:
    """Store-backed numeric index: one key per (field, value, object)."""

    _TABLE = "numeric_index"
    _SEP = b"\x00"

    def __init__(self, store: "object") -> None:
        self.store = store

    def _key(self, field: str, value: float, object_id: int) -> bytes:
        return (
            field.lower().encode("utf-8")
            + self._SEP
            + encode_sortable_float(value)
            + struct.pack(">Q", object_id)
        )

    def add(self, object_id: int, attributes: Dict[str, str]) -> None:
        with self.store.begin() as txn:
            for field, raw in attributes.items():
                value = parse_number(raw)
                if value is not None:
                    txn.put(self._TABLE, self._key(field, value, object_id), b"")

    def remove(self, object_id: int, attributes: Dict[str, str]) -> None:
        with self.store.begin() as txn:
            for field, raw in attributes.items():
                value = parse_number(raw)
                if value is not None:
                    txn.delete(self._TABLE, self._key(field, value, object_id))

    def range_lookup(
        self,
        field: str,
        low: float = -math.inf,
        high: float = math.inf,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[int]:
        prefix = field.lower().encode("utf-8") + self._SEP
        start = prefix + encode_sortable_float(low)
        # end bound: one past the encoded high value's object-id space
        end = prefix + encode_sortable_float(high) + b"\xff" * 9
        out: Set[int] = set()
        for key, _value in self.store.items(self._TABLE, start=start, end=end):
            encoded = key[len(prefix) : len(prefix) + 8]
            value = decode_sortable_float(encoded)
            if value < low or value > high:
                continue
            if value == low and not include_low:
                continue
            if value == high and not include_high:
                continue
            (object_id,) = struct.unpack(">Q", key[len(prefix) + 8 :])
            out.add(object_id)
        return out
