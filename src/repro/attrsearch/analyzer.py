"""Text analysis for keyword attribute search: tokenize and normalize."""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set

__all__ = ["tokenize", "analyze_attributes"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# Tiny stopword list: enough to keep the index from drowning in glue
# words, small enough not to surprise users searching for real terms.
_STOPWORDS = frozenset(
    "a an and are as at be by for from in is it of on or the to with".split()
)


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens with stopwords removed."""
    return [
        tok for tok in _TOKEN_RE.findall(text.lower()) if tok not in _STOPWORDS
    ]


def analyze_attributes(attributes: Dict[str, str]) -> Set[str]:
    """All index terms of one object's attribute map.

    Both bare value tokens (``dog``) and field-qualified terms
    (``category:dog``) are indexed, so queries can match either way.
    """
    terms: Set[str] = set()
    for field, value in attributes.items():
        field_l = field.lower()
        for token in tokenize(value):
            terms.add(token)
            terms.add(f"{field_l}:{token}")
    return terms
