"""Attribute-based (keyword) search used to bootstrap or refine
similarity queries (section 4.1.2)."""

from .analyzer import analyze_attributes, tokenize
from .index import InvertedIndex, MemoryIndex, PersistentIndex
from .numeric import (
    MemoryNumericIndex,
    PersistentNumericIndex,
    decode_sortable_float,
    encode_sortable_float,
    parse_number,
)
from .query import AttributeSearcher, QueryError, parse_query

__all__ = [
    "AttributeSearcher",
    "InvertedIndex",
    "MemoryIndex",
    "MemoryNumericIndex",
    "PersistentNumericIndex",
    "decode_sortable_float",
    "encode_sortable_float",
    "parse_number",
    "PersistentIndex",
    "QueryError",
    "analyze_attributes",
    "parse_query",
    "tokenize",
]
