"""Boolean attribute query language with numeric range terms.

Grammar (case-insensitive keywords, implicit AND between terms)::

    query  := or_expr
    or     := and_expr ("OR" and_expr)*
    and    := unary (("AND")? unary)*
    unary  := "NOT" unary | "(" query ")" | TERM
    TERM   := keyword | field:keyword
            | field>num | field>=num | field<num | field<=num
            | field=num | field:lo..hi

Examples: ``dog``, ``dog AND corel``, ``category:animal NOT cat``,
``(sunset OR beach) collection:corel``, ``year>=2004 size<100``,
``latitude:40.1..40.9`` — the numeric forms cover section 4.1.2's
"generic attributes such as creation time [and] GPS coordinates".

NOT is evaluated against the index's full id universe, so a bare
``NOT x`` is legal (everything except x).
"""

from __future__ import annotations

import math
import re
from typing import List, Optional, Set

from .index import InvertedIndex
from .numeric import parse_number

__all__ = ["QueryError", "parse_query", "AttributeSearcher"]


class QueryError(ValueError):
    """Malformed attribute query."""


_TOKEN_RE = re.compile(r"\(|\)|[^\s()]+")


class _Node:
    def evaluate(self, index: InvertedIndex) -> Set[int]:
        raise NotImplementedError


_COMPARE_RE = re.compile(r"^([^<>=:]+)(<=|>=|<|>|=)(.+)$")
_RANGE_RE = re.compile(r"^([^<>=:]+):(-?[0-9.eE+-]+)\.\.(-?[0-9.eE+-]+)$")


class _Range(_Node):
    """Numeric comparison/range over one attribute field."""

    def __init__(self, field: str, low: float, high: float,
                 include_low: bool = True, include_high: bool = True) -> None:
        self.field = field.lower()
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high

    def evaluate(self, index: InvertedIndex) -> Set[int]:
        return index.range_lookup(
            self.field, self.low, self.high, self.include_low, self.include_high
        )

    def __repr__(self) -> str:
        lo = "[" if self.include_low else "("
        hi = "]" if self.include_high else ")"
        return f"Range({self.field} in {lo}{self.low}, {self.high}{hi})"


def _parse_term(token: str) -> _Node:
    """A leaf term: keyword, field:keyword, comparison or numeric range."""
    range_match = _RANGE_RE.match(token)
    if range_match:
        field, lo_s, hi_s = range_match.groups()
        lo, hi = parse_number(lo_s), parse_number(hi_s)
        if lo is None or hi is None:
            raise QueryError(f"bad numeric range {token!r}")
        if lo > hi:
            raise QueryError(f"empty range {token!r} (low > high)")
        return _Range(field, lo, hi)
    compare_match = _COMPARE_RE.match(token)
    if compare_match:
        field, op, value_s = compare_match.groups()
        value = parse_number(value_s)
        if value is None:
            raise QueryError(f"comparison needs a numeric value: {token!r}")
        if op == ">":
            return _Range(field, value, math.inf, include_low=False)
        if op == ">=":
            return _Range(field, value, math.inf)
        if op == "<":
            return _Range(field, -math.inf, value, include_high=False)
        if op == "<=":
            return _Range(field, -math.inf, value)
        return _Range(field, value, value)  # "="
    return _Term(token)


class _Term(_Node):
    def __init__(self, term: str) -> None:
        self.term = term.lower()

    def evaluate(self, index: InvertedIndex) -> Set[int]:
        return index.lookup(self.term)

    def __repr__(self) -> str:
        return f"Term({self.term})"


class _And(_Node):
    def __init__(self, parts: List[_Node]) -> None:
        self.parts = parts

    def evaluate(self, index: InvertedIndex) -> Set[int]:
        result: Optional[Set[int]] = None
        for part in self.parts:
            ids = part.evaluate(index)
            result = ids if result is None else (result & ids)
            if not result:
                return set()
        return result or set()

    def __repr__(self) -> str:
        return f"And({self.parts})"


class _Or(_Node):
    def __init__(self, parts: List[_Node]) -> None:
        self.parts = parts

    def evaluate(self, index: InvertedIndex) -> Set[int]:
        result: Set[int] = set()
        for part in self.parts:
            result |= part.evaluate(index)
        return result

    def __repr__(self) -> str:
        return f"Or({self.parts})"


class _Not(_Node):
    def __init__(self, part: _Node) -> None:
        self.part = part

    def evaluate(self, index: InvertedIndex) -> Set[int]:
        return index.all_ids() - self.part.evaluate(index)

    def __repr__(self) -> str:
        return f"Not({self.part})"


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.pos += 1
        return token

    def parse(self) -> _Node:
        node = self.parse_or()
        if self.peek() is not None:
            raise QueryError(f"unexpected token {self.peek()!r}")
        return node

    def parse_or(self) -> _Node:
        parts = [self.parse_and()]
        while self.peek() is not None and self.peek().upper() == "OR":
            self.next()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else _Or(parts)

    def parse_and(self) -> _Node:
        parts = [self.parse_unary()]
        while True:
            token = self.peek()
            if token is None or token == ")" or token.upper() == "OR":
                break
            if token.upper() == "AND":
                self.next()
                token = self.peek()
                if token is None or token == ")":
                    raise QueryError("AND missing right operand")
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else _And(parts)

    def parse_unary(self) -> _Node:
        token = self.next()
        if token.upper() == "NOT":
            return _Not(self.parse_unary())
        if token == "(":
            node = self.parse_or()
            if self.next() != ")":
                raise QueryError("missing closing parenthesis")
            return node
        if token == ")":
            raise QueryError("unexpected ')'")
        if token.upper() in ("AND", "OR"):
            raise QueryError(f"operator {token!r} missing left operand")
        return _parse_term(token)


def parse_query(text: str) -> _Node:
    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()


class AttributeSearcher:
    """Attribute-based search engine over an inverted index.

    Composes with similarity search the way the paper describes: the
    matched ids become the ``restrict_to`` argument of
    :meth:`repro.core.engine.SimilaritySearchEngine.query`.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def search(self, query_text: str) -> Set[int]:
        return parse_query(query_text).evaluate(self.index)
