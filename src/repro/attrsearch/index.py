"""Persistent inverted keyword index with numeric range support (section 4.1.2).

Postings are stored one key per (term, object) pair in a dedicated table
of the transactional store::

    key = <term bytes> 0x00 <object id, 8 bytes big-endian>

so the postings of a term are exactly a B-tree prefix scan — incremental
insertion and deletion are single-key operations, and no posting list
ever needs rewriting.  An in-memory variant backs tests and ephemeral
engines.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Optional, Set

from ..storage.kvstore import KVStore
from .analyzer import analyze_attributes
from .numeric import MemoryNumericIndex, PersistentNumericIndex

__all__ = ["InvertedIndex", "MemoryIndex", "PersistentIndex"]

_TABLE = "keyword_index"
_SEP = b"\x00"


class InvertedIndex:
    """Interface: map terms (and numeric ranges) to sets of object ids."""

    def add(self, object_id: int, attributes: Dict[str, str]) -> None:
        raise NotImplementedError

    def remove(self, object_id: int, attributes: Dict[str, str]) -> None:
        raise NotImplementedError

    def lookup(self, term: str) -> Set[int]:
        raise NotImplementedError

    def range_lookup(self, field: str, low: float, high: float,
                     include_low: bool = True, include_high: bool = True) -> Set[int]:
        """Objects whose numeric attribute ``field`` lies in the range."""
        raise NotImplementedError

    def all_ids(self) -> Set[int]:
        raise NotImplementedError


class MemoryIndex(InvertedIndex):
    """Dictionary-backed index for ephemeral engines and tests."""

    def __init__(self) -> None:
        self._postings: Dict[str, Set[int]] = {}
        self._ids: Set[int] = set()
        self._numeric = MemoryNumericIndex()

    def add(self, object_id: int, attributes: Dict[str, str]) -> None:
        self._ids.add(object_id)
        for term in analyze_attributes(attributes):
            self._postings.setdefault(term, set()).add(object_id)
        self._numeric.add(object_id, attributes)

    def remove(self, object_id: int, attributes: Dict[str, str]) -> None:
        self._ids.discard(object_id)
        for term in analyze_attributes(attributes):
            postings = self._postings.get(term)
            if postings is not None:
                postings.discard(object_id)
                if not postings:
                    del self._postings[term]
        self._numeric.remove(object_id, attributes)

    def lookup(self, term: str) -> Set[int]:
        return set(self._postings.get(term.lower(), set()))

    def range_lookup(self, field, low, high, include_low=True, include_high=True):
        return self._numeric.range_lookup(field, low, high, include_low, include_high)

    def all_ids(self) -> Set[int]:
        return set(self._ids)


class PersistentIndex(InvertedIndex):
    """Store-backed index; postings live in the ``keyword_index`` table."""

    def __init__(self, store: KVStore) -> None:
        self.store = store
        self._numeric = PersistentNumericIndex(store)

    @staticmethod
    def _posting_key(term: str, object_id: int) -> bytes:
        return term.encode("utf-8") + _SEP + struct.pack(">Q", object_id)

    def add(self, object_id: int, attributes: Dict[str, str]) -> None:
        with self.store.begin() as txn:
            txn.put(_TABLE, self._posting_key("\x01all", object_id), b"")
            for term in analyze_attributes(attributes):
                txn.put(_TABLE, self._posting_key(term, object_id), b"")
        self._numeric.add(object_id, attributes)

    def remove(self, object_id: int, attributes: Dict[str, str]) -> None:
        with self.store.begin() as txn:
            txn.delete(_TABLE, self._posting_key("\x01all", object_id))
            for term in analyze_attributes(attributes):
                txn.delete(_TABLE, self._posting_key(term, object_id))
        self._numeric.remove(object_id, attributes)

    def _scan(self, term: str) -> Set[int]:
        prefix = term.encode("utf-8") + _SEP
        out: Set[int] = set()
        for key, _value in self.store.items(_TABLE, prefix=prefix):
            out.add(struct.unpack(">Q", key[len(prefix) :])[0])
        return out

    def lookup(self, term: str) -> Set[int]:
        return self._scan(term.lower())

    def range_lookup(self, field, low, high, include_low=True, include_high=True):
        return self._numeric.range_lookup(field, low, high, include_low, include_high)

    def all_ids(self) -> Set[int]:
        return self._scan("\x01all")
