"""Fault-tolerant multi-node tier: sharded coordinator over backend servers.

The paper frames Ferret as a *server* for content-based similarity
search; this package takes the single-process server to a cluster.  A
:class:`FerretCoordinator` object-id-shards the corpus across N backend
:class:`~repro.server.server.FerretServer` processes (each speaking the
existing line protocol), scatter-gathers queries with the same
deterministic tie-breaking merge the in-process sharded scan uses, and
routes writes to every replica of the owning shard.

Robustness is the core of the design, not an add-on:

- per-backend **circuit breakers** (:mod:`repro.cluster.breaker`) fed by
  error/timeout telemetry: closed → open → half-open with probe
  requests;
- **replica failover**: each shard lives on R backends; a primary
  timeout, connection loss, or ``ServerDegraded`` answer retries the
  next replica (optionally *hedged* after a latency threshold);
- **partial results**: a query that loses every replica of a shard
  returns the live shards' merged answer tagged ``PARTIAL`` instead of
  erroring (:class:`~repro.server.client.PartialResultWarning`
  client-side);
- **background health probing** re-admits recovered backends
  automatically.

:mod:`repro.cluster.supervisor` spawns real backend subprocesses and can
kill / hang / restart them mid-query, which is how the node-kill drills
in ``tests/cluster`` prove the invariants (see docs/ROBUSTNESS.md §5).
"""

from .breaker import BreakerState, CircuitBreaker
from .coordinator import (
    BackendUnavailable,
    ClusterConfig,
    ClusterError,
    ClusterResult,
    FerretCoordinator,
    ShardUnavailable,
)
from .service import ClusterCommandProcessor
from .supervisor import BackendProcess, ClusterSupervisor
from .topology import ShardMap

__all__ = [
    "BackendProcess",
    "BackendUnavailable",
    "BreakerState",
    "CircuitBreaker",
    "ClusterCommandProcessor",
    "ClusterConfig",
    "ClusterError",
    "ClusterResult",
    "ClusterSupervisor",
    "FerretCoordinator",
    "ShardMap",
    "ShardUnavailable",
]
