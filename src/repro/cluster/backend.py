"""Backend subprocess entry point for the cluster drills and demos.

``python -m repro.cluster.backend --index I --backends B --shards S
--replication R [--datatype ...] [--size ...] [--seed ...]`` builds the
*same* deterministic synthetic corpus on every backend
(:func:`~repro.datatypes.build_demo_engine` with a shared seed), then
drops every object the backend does not host under the shared
:class:`~repro.cluster.topology.ShardMap` — object ids stay global, so
replicas of a shard hold bit-identical data without any transfer
protocol.  Prints ``READY <port>`` on stdout once the server is bound;
supervisors block on that line.

This process is the unit the node-kill drills operate on: the
supervisor SIGKILLs, SIGSTOPs, and restarts *real* instances of it
mid-query (see :mod:`repro.cluster.supervisor`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..datatypes import build_demo_engine
from ..server.commands import CommandProcessor
from ..server.server import FerretServer
from .topology import ShardMap

__all__ = ["build_backend_processor", "main"]


def build_backend_processor(
    index: int,
    shard_map: ShardMap,
    datatype: str = "sensor",
    size: int = 48,
    seed: int = 42,
) -> CommandProcessor:
    """An engine holding exactly this backend's replicas of the corpus.

    Every backend builds the full corpus deterministically and removes
    the objects it does not own; global object ids are preserved, which
    is what makes ``shard_of(id)`` the only routing state the
    coordinator needs.
    """
    engine, _bench = build_demo_engine(datatype, size=size, seed=seed)
    for object_id in list(engine.objects):
        if not shard_map.owns(index, object_id):
            engine.remove(object_id)
    return CommandProcessor(engine)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Ferret cluster backend")
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--backends", type=int, required=True)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--datatype", default="sensor")
    parser.add_argument("--size", type=int, default=48)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args(argv)

    shard_map = ShardMap(
        args.shards if args.shards is not None else args.backends,
        args.backends,
        args.replication,
    )
    processor = build_backend_processor(
        args.index, shard_map,
        datatype=args.datatype, size=args.size, seed=args.seed,
    )
    server = FerretServer(processor, args.host, args.port)
    _, port = server.server_address
    # The supervisor parses exactly this line; keep stdout otherwise
    # silent.
    print(f"READY {port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
