"""Real-process backend supervision: spawn, kill, hang, restart.

The node-kill drills need *actual* process failures — a SIGKILLed
backend drops its TCP connections with a reset, a SIGSTOPped one keeps
accepting (kernel backlog) but never answers, and a restarted one comes
back empty-handed of in-flight state.  In-process fault injection cannot
produce those failure shapes, so :class:`ClusterSupervisor` runs each
backend as a subprocess of :mod:`repro.cluster.backend` and manipulates
it with signals:

- :meth:`BackendProcess.kill` — SIGKILL: connection resets, port closed
  (the coordinator sees :class:`~repro.server.client.ConnectionLost`);
- :meth:`BackendProcess.hang` / :meth:`~BackendProcess.resume` —
  SIGSTOP / SIGCONT: accepts but never answers (the coordinator sees
  :class:`~repro.server.client.ClientTimeout`), the classic gray
  failure;
- :meth:`BackendProcess.restart` — relaunch on the *same* port with the
  same deterministic corpus, which is what lets a cluster recover to
  full answers without a resharding protocol.
"""

from __future__ import annotations

import os
import select
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..observability.events import get_event_log
from ..observability.log import get_logger
from .topology import ShardMap

__all__ = ["BackendProcess", "ClusterSupervisor", "SupervisorError"]

_LOG = get_logger("cluster.supervisor")

#: Building a synthetic corpus + binding takes a couple of seconds on a
#: loaded CI box; generous, the wait returns as soon as READY arrives.
_READY_TIMEOUT = 60.0


class SupervisorError(RuntimeError):
    """A backend process failed to come up."""


class BackendProcess:
    """One supervised backend subprocess."""

    def __init__(
        self,
        index: int,
        shard_map: ShardMap,
        datatype: str = "sensor",
        size: int = 48,
        seed: int = 42,
        host: str = "127.0.0.1",
    ) -> None:
        self.index = index
        self.shard_map = shard_map
        self.datatype = datatype
        self.size = size
        self.seed = seed
        self.host = host
        self.port: Optional[int] = None
        self._proc: Optional[subprocess.Popen] = None
        self._stopped = False  # SIGSTOPped (hung), not dead

    # -- lifecycle -------------------------------------------------------
    def _argv(self) -> List[str]:
        return [
            sys.executable, "-m", "repro.cluster.backend",
            "--index", str(self.index),
            "--backends", str(self.shard_map.num_backends),
            "--shards", str(self.shard_map.num_shards),
            "--replication", str(self.shard_map.replication),
            "--datatype", self.datatype,
            "--size", str(self.size),
            "--seed", str(self.seed),
            "--host", self.host,
            "--port", str(self.port if self.port is not None else 0),
        ]

    @staticmethod
    def _env() -> dict:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
        return env

    def start(self, timeout: float = _READY_TIMEOUT) -> None:
        """Launch the backend and block until it prints ``READY <port>``."""
        if self._proc is not None and self._proc.poll() is None:
            raise SupervisorError(f"backend {self.index} already running")
        self._proc = subprocess.Popen(
            self._argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._env(),
        )
        self._stopped = False
        self.port = self._wait_ready(timeout)
        _LOG.info(
            "backend_started",
            index=self.index,
            pid=self._proc.pid,
            port=self.port,
        )
        get_event_log().record(
            "node_start", node=self.index, pid=self._proc.pid, port=self.port
        )

    def _wait_ready(self, timeout: float) -> int:
        """Parse ``READY <port>`` off the child's stdout with a deadline."""
        assert self._proc is not None and self._proc.stdout is not None
        fd = self._proc.stdout.fileno()
        deadline = time.monotonic() + timeout
        buf = b""
        while b"\n" not in buf:
            left = deadline - time.monotonic()
            if left <= 0 or self._proc.poll() is not None:
                self.kill()
                raise SupervisorError(
                    f"backend {self.index} did not become ready in {timeout:.0f}s"
                )
            readable, _, _ = select.select([fd], [], [], min(left, 0.25))
            if readable:
                chunk = os.read(fd, 4096)
                if not chunk:
                    self.kill()
                    raise SupervisorError(
                        f"backend {self.index} exited before READY"
                    )
                buf += chunk
        line = buf.split(b"\n", 1)[0].decode("utf-8", errors="replace").strip()
        if not line.startswith("READY "):
            self.kill()
            raise SupervisorError(
                f"backend {self.index} printed {line!r}, expected READY <port>"
            )
        return int(line.split()[1])

    # -- fault injection -------------------------------------------------
    @property
    def alive(self) -> bool:
        return (
            self._proc is not None
            and self._proc.poll() is None
            and not self._stopped
        )

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def kill(self) -> None:
        """SIGKILL: abrupt node death. Connections reset, port closes."""
        if self._proc is None:
            return
        if self._stopped:
            # A stopped process cannot die until it is continued.
            try:
                self._proc.send_signal(signal.SIGCONT)
            except (OSError, ProcessLookupError):
                pass
            self._stopped = False
        try:
            self._proc.kill()
        except (OSError, ProcessLookupError):
            pass
        self._proc.wait()
        _LOG.info("backend_killed", index=self.index)
        get_event_log().record("node_kill", node=self.index)

    def hang(self) -> None:
        """SIGSTOP: gray failure — accepts connections, never answers."""
        if self._proc is None or self._proc.poll() is not None:
            raise SupervisorError(f"backend {self.index} is not running")
        self._proc.send_signal(signal.SIGSTOP)
        self._stopped = True
        _LOG.info("backend_hung", index=self.index)
        get_event_log().record("node_hang", node=self.index)

    def resume(self) -> None:
        """SIGCONT: un-hang a SIGSTOPped backend."""
        if self._proc is None or self._proc.poll() is not None:
            raise SupervisorError(f"backend {self.index} is not running")
        self._proc.send_signal(signal.SIGCONT)
        self._stopped = False
        _LOG.info("backend_resumed", index=self.index)
        get_event_log().record("node_resume", node=self.index)

    def restart(self, timeout: float = _READY_TIMEOUT) -> None:
        """Kill (if needed) and relaunch on the *same* port."""
        self.kill()
        self.start(timeout=timeout)
        get_event_log().record("node_restart", node=self.index, port=self.port)

    def close(self) -> None:
        self.kill()
        if self._proc is not None and self._proc.stdout is not None:
            try:
                self._proc.stdout.close()
            except OSError:
                pass
        self._proc = None


class ClusterSupervisor:
    """Spawn and manage a whole backend fleet for one :class:`ShardMap`.

    Usable as a context manager; ``endpoints`` feeds straight into
    :class:`~repro.cluster.coordinator.FerretCoordinator`.
    """

    def __init__(
        self,
        num_backends: int,
        num_shards: Optional[int] = None,
        replication: int = 2,
        datatype: str = "sensor",
        size: int = 48,
        seed: int = 42,
        host: str = "127.0.0.1",
    ) -> None:
        self.shard_map = ShardMap(
            num_shards if num_shards is not None else num_backends,
            num_backends,
            replication,
        )
        self.backends = [
            BackendProcess(
                index, self.shard_map,
                datatype=datatype, size=size, seed=seed, host=host,
            )
            for index in range(num_backends)
        ]

    def start(self, timeout: float = _READY_TIMEOUT) -> "ClusterSupervisor":
        started: List[BackendProcess] = []
        try:
            for backend in self.backends:
                backend.start(timeout=timeout)
                started.append(backend)
        except Exception:
            for backend in started:
                backend.close()
            raise
        return self

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return [(b.host, int(b.port)) for b in self.backends]

    def close(self) -> None:
        for backend in self.backends:
            backend.close()

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
