"""FerretCoordinator: health-aware scatter-gather over sharded backends.

One coordinator owns a cluster of backend ``FerretServer`` processes.
The corpus is object-id-sharded (:class:`~repro.cluster.topology.
ShardMap`); every query is scattered to one live replica per shard and
the per-shard top-k lists are merged through the engine's own
deterministic ``select_k_smallest`` tie-breaking rule, so cluster
answers are bit-identical to a serial merge of the backends' answers no
matter which replica served each shard.

Failure handling (docs/ROBUSTNESS.md §5):

- every backend round-trip runs through that backend's
  :class:`~repro.cluster.breaker.CircuitBreaker`; connection loss,
  timeouts, and ``ServerDegraded`` answers count as failures and
  eventually stop traffic to the backend entirely;
- a failed shard call retries the next replica (*failover*), optionally
  launching the retry early while the first attempt is still pending
  (*hedged read*, ``hedge_delay``);
- a shard whose every replica is down makes the query **partial**, not
  failed: the merged answer of the live shards is returned with the
  missing shard ids attached;
- a background prober pings non-closed backends and re-admits them the
  moment they answer again.

Everything is observable: ``cluster.*`` counters/gauges, per-backend
``cluster.backend.<i>.*`` series, a reused :class:`~repro.system.
HealthState` ledger, and per-query ``span.scatter`` / ``span.gather``
trace spans through the standard :class:`~repro.observability.tracing.
TraceRecorder`.

The cluster telemetry plane (docs/OBSERVABILITY.md, "Cluster
telemetry") adds three cross-node facilities:

- **trace propagation** — a traced query forwards a child
  :class:`~repro.observability.context.TraceContext` on every scatter
  line; each backend piggybacks its engine-level span tree on the reply,
  and the coordinator stitches the subtrees under
  ``node.<shard>.<backend>`` with the derived network/queue vs engine
  time split, naming the laggard node and any missing shards;
- **federated metrics** — :meth:`FerretCoordinator.collect_node_metrics`
  pulls every backend's snapshot (``metrics -s``), folds the *delta*
  since the last pull under ``node.<i>.*``, and derives rollups
  (``cluster.nodes_up``, per-shard QPS, per-node p99);
- **event journal** — breaker transitions, failovers, hedged-read wins,
  re-admissions, and under-replicated writes are recorded in the
  process :class:`~repro.observability.events.EventLog` so a failure
  drill leaves a provable postmortem timeline.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.filtering import select_k_smallest
from ..core.parallel import QueryResultCache
from ..core.ranking import SearchResult
from ..observability import context as _trace_context
from ..observability import metrics as _metrics
from ..observability.context import TraceContext, TraceStore
from ..observability.events import get_event_log
from ..observability.log import get_logger
from ..observability.tracing import QueryTrace, TraceRecorder
from ..server.client import (
    ClientError,
    ClientTimeout,
    ConnectionLost,
    FerretClient,
    ServerDegraded,
)
from ..server.protocol import quote
from ..system import HealthState
from .breaker import BreakerState, CircuitBreaker
from .topology import ShardMap

__all__ = [
    "BackendHandle",
    "BackendUnavailable",
    "ClusterConfig",
    "ClusterError",
    "ClusterResult",
    "FerretCoordinator",
    "ShardUnavailable",
]

_LOG = get_logger("cluster")

_M_QUERIES = _metrics.counter("cluster.queries")
_M_QUERY_SECONDS = _metrics.histogram("cluster.query_seconds")
_M_SCATTER_SECONDS = _metrics.histogram("cluster.scatter_seconds")
_M_GATHER_SECONDS = _metrics.histogram("cluster.gather_seconds")
_M_PARTIAL = _metrics.counter("cluster.partial_results")
_M_MISSING_SHARDS = _metrics.counter("cluster.missing_shards")
_M_FAILOVERS = _metrics.counter("cluster.failovers")
_M_HEDGED = _metrics.counter("cluster.hedged_reads")
_M_PROBES = _metrics.counter("cluster.probes")
_M_READMITTED = _metrics.counter("cluster.backends_readmitted")
_M_WRITES = _metrics.counter("cluster.writes")
_M_UNDER_REPLICATED = _metrics.counter("cluster.under_replicated_writes")
_M_AVAILABLE = _metrics.gauge("cluster.backends_available")
_M_NODES_UP = _metrics.gauge("cluster.nodes_up")
_M_FEDERATIONS = _metrics.counter("cluster.metric_federations")


class ClusterError(RuntimeError):
    """The cluster could not answer at all (e.g. the seed's shard is gone)."""


class BackendUnavailable(ClientError):
    """The backend's circuit breaker refused the request (no I/O done)."""

    def __init__(self, backend_id: int, state: BreakerState) -> None:
        super().__init__(f"backend {backend_id} unavailable (breaker {state.value})")
        self.backend_id = backend_id
        self.state = state


class ShardUnavailable(ClusterError):
    """Every replica of one shard failed or was refused."""

    def __init__(self, shard: int, failures: Sequence[Tuple[int, Exception]]) -> None:
        detail = "; ".join(
            f"backend {bid}: {type(exc).__name__}: {exc}" for bid, exc in failures
        )
        super().__init__(f"shard {shard} unavailable ({detail or 'no replicas'})")
        self.shard = shard
        self.failures = list(failures)


#: Exception types that mean "this backend failed us" — eligible for
#: failover to a replica and counted against the breaker.  A plain
#: :class:`ClientError` outside this set is a well-formed ``ERR`` answer
#: (bad request, unknown object): the backend is healthy and the error
#: propagates to the caller instead of being retried elsewhere.
FAILOVER_ERRORS = (BackendUnavailable, ClientTimeout, ConnectionLost, ServerDegraded)


@dataclass(frozen=True)
class ClusterConfig:
    """Coordinator tuning knobs (all robustness-relevant)."""

    replication: int = 2
    backend_timeout: float = 5.0
    #: Breaker: consecutive failures to open, and open-state cooldown.
    breaker_failures: int = 2
    breaker_cooldown: float = 1.0
    #: Background prober cadence and per-probe budget.
    probe_interval: float = 0.25
    probe_timeout: float = 1.0
    #: Hedged reads: start the next replica after this many seconds with
    #: the first attempt still pending (None disables hedging).
    hedge_delay: Optional[float] = None
    #: Coordinator-side query-result LRU capacity (0 disables).  Entries
    #: are invalidated by the coordinator's write epoch (every
    #: acknowledged insert) *and* its topology epoch (every breaker
    #: transition — a different replica may serve the next scatter);
    #: PARTIAL results are never cached.
    cache_entries: int = 128


@dataclass
class ClusterResult:
    """One cluster query's answer plus its degradation facts."""

    results: List[SearchResult]
    #: Shards whose every replica failed; empty means a full answer.
    missing_shards: Tuple[int, ...] = ()
    #: shard -> backend id that served it (live shards only).
    served_by: Dict[int, int] = field(default_factory=dict)

    @property
    def partial(self) -> bool:
        return bool(self.missing_shards)


class BackendHandle:
    """One backend endpoint: pooled connections plus its circuit breaker.

    :class:`~repro.server.client.FerretClient` is a blocking
    single-connection client, so concurrent scatter threads each borrow
    a pooled connection (created on demand) and return it after a clean
    round trip.  A connection that failed mid-flight is closed, not
    pooled — it may be desynchronized.
    """

    def __init__(
        self,
        backend_id: int,
        host: str,
        port: int,
        timeout: float,
        breaker: CircuitBreaker,
    ) -> None:
        self.backend_id = backend_id
        self.host = host
        self.port = port
        self.timeout = timeout
        self.breaker = breaker
        self._lock = threading.Lock()
        self._idle: List[FerretClient] = []
        self.requests = _metrics.counter(f"cluster.backend.{backend_id}.requests")
        self.errors = _metrics.counter(f"cluster.backend.{backend_id}.errors")
        #: Round-trip latency of requests *this backend answered* — the
        #: replica that actually served, not the one first asked (see
        #: the hedged-read accounting note in docs/OBSERVABILITY.md).
        self.latency = _metrics.histogram(f"cluster.backend.{backend_id}.seconds")
        self.hedge_wins = _metrics.counter(
            f"cluster.backend.{backend_id}.hedge_wins"
        )
        self.hedge_losses = _metrics.counter(
            f"cluster.backend.{backend_id}.hedge_losses"
        )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _checkout(self) -> FerretClient:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return FerretClient(self.host, self.port, timeout=self.timeout)

    def _checkin(self, client: FerretClient) -> None:
        with self._lock:
            self._idle.append(client)

    def send(self, line: str, timeout: Optional[float] = None) -> List[str]:
        """One round trip on a pooled connection; never retries itself
        (failover policy lives in the coordinator).  Latency is observed
        against *this* backend — the replica whose answer came back —
        so hedged and failed-over reads attribute correctly."""
        self.requests.inc()
        client = self._checkout()
        started = time.perf_counter()
        try:
            lines = client.send(line, timeout=timeout)
        except (ServerDegraded, ClientError) as exc:
            # A still-connected client produced a complete response
            # (ERR/DEGRADED): the connection is clean, keep it pooled.
            if client.connected:
                self._checkin(client)
            else:
                client.close()
            raise exc
        self.latency.observe(time.perf_counter() - started)
        self._checkin(client)
        return lines

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()


class FerretCoordinator:
    """Sharded, replicated, health-aware front end for backend servers.

    Parameters
    ----------
    endpoints:
        ``[(host, port), ...]`` — one entry per backend, in backend-id
        order (the order must match the shard layout the backends were
        loaded with; see :class:`~repro.cluster.topology.ShardMap`).
    num_shards:
        Defaults to one shard per backend.
    config:
        Robustness tuning; see :class:`ClusterConfig`.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        num_shards: Optional[int] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("a cluster needs at least one backend")
        self.config = config or ClusterConfig()
        self.shard_map = ShardMap(
            num_shards if num_shards is not None else len(endpoints),
            len(endpoints),
            self.config.replication,
        )
        self.health = HealthState()
        self.tracer = TraceRecorder()
        self.handles: List[BackendHandle] = []
        for backend_id, (host, port) in enumerate(endpoints):
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failures,
                cooldown_seconds=self.config.breaker_cooldown,
                on_transition=self._transition_recorder(backend_id),
            )
            self.handles.append(
                BackendHandle(
                    backend_id, host, int(port), self.config.backend_timeout, breaker
                )
            )
            _metrics.gauge(f"cluster.backend.{backend_id}.breaker_state").set(0)
            _metrics.gauge(f"cluster.breaker.state.{backend_id}").set(0)
        _M_AVAILABLE.set(len(self.handles))
        _M_NODES_UP.set(len(self.handles))
        self._id_lock = threading.Lock()
        self._next_id: Optional[int] = None
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        # Stitched cross-node traces, fetchable via `trace get <id>`.
        self.trace_store = TraceStore()
        # Federation state: the last snapshot pulled from each backend
        # (merge_snapshot accumulates counters, so only *deltas* fold
        # in) plus per-shard counter readings for the QPS rollup.
        self._federation_lock = threading.Lock()
        self._node_snapshots: Dict[int, Dict[str, tuple]] = {}
        self._shard_query_marks: Dict[int, Tuple[float, int]] = {}
        # Result cache: epoch = (write, topology).  Writes move the
        # write epoch; breaker transitions move the topology epoch, so a
        # failover or re-admission (which may change which replica — and
        # therefore exactly which objects — answers a shard) flushes
        # every cached result.  Reuses the engine's QueryResultCache
        # under the ``cluster.cache.*`` metric series.
        self._write_epoch = 0
        self._topology_epoch = 0
        self._cache = QueryResultCache(
            self.config.cache_entries, metrics_prefix="cluster.cache"
        )

    # ------------------------------------------------------------------
    # Breaker bookkeeping
    # ------------------------------------------------------------------
    def _transition_recorder(self, backend_id: int):
        gauge = _metrics.gauge(f"cluster.backend.{backend_id}.breaker_state")
        state_gauge = _metrics.gauge(f"cluster.breaker.state.{backend_id}")

        def on_transition(old: BreakerState, new: BreakerState) -> None:
            gauge.set(new.gauge_value)
            state_gauge.set(new.gauge_value)
            self._topology_epoch += 1
            _LOG.warning(
                "breaker_transition",
                backend=backend_id,
                old=old.value,
                new=new.value,
            )
            get_event_log().record(
                "breaker_transition",
                backend=backend_id,
                old=old.value,
                new=new.value,
                topology_epoch=self._topology_epoch,
            )
            self._refresh_available()

        return on_transition

    def _cache_epoch(self) -> Tuple[int, int]:
        """Validity token of the result cache: any write or any breaker
        transition produces a new epoch and flushes it."""
        return (self._write_epoch, self._topology_epoch)

    def _refresh_available(self) -> None:
        _M_AVAILABLE.set(
            sum(
                1
                for handle in self.handles
                if handle.breaker.state is BreakerState.CLOSED
            )
        )

    # ------------------------------------------------------------------
    # Backend calls
    # ------------------------------------------------------------------
    def _call_backend(
        self, backend_id: int, line: str, timeout: Optional[float] = None
    ) -> List[str]:
        """One breaker-gated round trip to a specific backend.

        Raises one of :data:`FAILOVER_ERRORS` when the backend failed
        (recorded against its breaker), or a plain :class:`ClientError`
        when the backend *answered* with ``ERR`` (recorded as success:
        a backend that rejects a malformed request is healthy).
        """
        handle = self.handles[backend_id]
        breaker = handle.breaker
        if not breaker.allow():
            raise BackendUnavailable(backend_id, breaker.state)
        try:
            lines = handle.send(line, timeout=timeout)
        except FAILOVER_ERRORS as exc:
            handle.errors.inc()
            breaker.record_failure()
            self.health.record_error(f"backend.{backend_id}", exc)
            raise
        except ClientError as exc:
            if isinstance(exc, ConnectionLost):  # pragma: no cover - ordered above
                raise
            breaker.record_success()
            raise
        breaker.record_success()
        self.health.mark_healthy(f"backend.{backend_id}")
        return lines

    def _shard_call(self, shard: int, line: str) -> Tuple[int, List[str]]:
        """Send ``line`` to ``shard``, failing over across its replicas.

        Returns ``(backend_id, response_lines)``.  With ``hedge_delay``
        configured, the next replica is started while the current
        attempt is still pending once the delay elapses; the first
        successful answer wins.  Raises :class:`ShardUnavailable` when
        every replica failed, or the first non-failover
        :class:`ClientError` (a real answer) immediately.

        Accounting is by the replica that *answered*: the winner of a
        hedged race gets the ``hedge_wins`` credit (and its latency,
        observed inside :meth:`BackendHandle.send`), every other replica
        the race started gets a ``hedge_losses`` mark — the winner is
        never folded into the first-asked replica's numbers.
        """
        replicas = self.shard_map.replicas(shard)
        hedge = self.config.hedge_delay
        answers: "queue.Queue[Tuple[int, Optional[List[str]], Optional[Exception]]]" = (
            queue.Queue()
        )

        def attempt(backend_id: int) -> None:
            try:
                answers.put((backend_id, self._call_backend(backend_id, line), None))
            except Exception as exc:  # classified by the gather loop
                answers.put((backend_id, None, exc))

        started = 0
        outstanding = 0
        hedged = False
        launched: List[int] = []
        failures: List[Tuple[int, Exception]] = []
        while started < len(replicas) or outstanding:
            if started < len(replicas) and outstanding == 0:
                threading.Thread(
                    target=attempt, args=(replicas[started],), daemon=True
                ).start()
                launched.append(replicas[started])
                started += 1
                outstanding += 1
            wait = hedge if (hedge is not None and started < len(replicas)) else None
            try:
                backend_id, lines, exc = answers.get(timeout=wait)
            except queue.Empty:
                # Hedge timer fired with the attempt still pending: race
                # the next replica against it.
                _M_HEDGED.inc()
                hedged = True
                threading.Thread(
                    target=attempt, args=(replicas[started],), daemon=True
                ).start()
                launched.append(replicas[started])
                started += 1
                outstanding += 1
                continue
            outstanding -= 1
            if exc is None:
                if hedged:
                    self.handles[backend_id].hedge_wins.inc()
                    for other in launched:
                        if other != backend_id:
                            self.handles[other].hedge_losses.inc()
                    get_event_log().record(
                        "hedged_win", shard=shard, winner=backend_id,
                        raced=len(launched),
                    )
                elif backend_id != replicas[0]:
                    _M_FAILOVERS.inc()
                    get_event_log().record(
                        "failover",
                        shard=shard,
                        backend=backend_id,
                        primary=replicas[0],
                        failed=",".join(str(b) for b, _ in failures),
                    )
                return backend_id, lines
            if not isinstance(exc, FAILOVER_ERRORS):
                raise exc  # a well-formed ERR answer: propagate, don't mask
            failures.append((backend_id, exc))
        raise ShardUnavailable(shard, failures)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_results(lines: Sequence[str]) -> List[Tuple[int, float]]:
        out = []
        for line in lines:
            oid, _, dist = line.partition(" ")
            out.append((int(oid), float(dist)))
        return out

    @staticmethod
    def merge_ranked(
        shard_results: Sequence[Sequence[Tuple[int, float]]], top_k: int
    ) -> List[SearchResult]:
        """Merge per-shard top-k lists under the engine's tie-break rule.

        Shards are disjoint id spaces, so the merge is a pure selection:
        ``select_k_smallest`` admits boundary ties in ascending-id order
        — the same rule every in-process filter path uses — which makes
        the merged set independent of shard count and arrival order.
        """
        flat = [pair for results in shard_results for pair in results]
        if not flat:
            return []
        ids = np.array([oid for oid, _ in flat], dtype=np.uint64)
        dists = np.array([dist for _, dist in flat], dtype=np.float64)
        cols = select_k_smallest(dists[None, :], top_k, ids=ids[None, :])[0]
        chosen = sorted((dists[c], int(ids[c])) for c in cols)
        return [SearchResult(distance=d, object_id=oid) for d, oid in chosen]

    def _fetch_signature(self, object_id: int) -> str:
        """The base64 signature of ``object_id`` from its owning shard."""
        shard = self.shard_map.shard_of(object_id)
        try:
            _, lines = self._shard_call(shard, f"getsig {object_id}")
        except ShardUnavailable as exc:
            raise ClusterError(
                f"cannot fetch seed {object_id}: {exc}"
            ) from exc
        return lines[0]

    def _scatter(
        self,
        line_for_shard,
        parse,
        trace,
        trace_ctx: Optional[TraceContext] = None,
    ) -> Tuple[
        Dict[int, object],
        Tuple[int, ...],
        Dict[int, int],
        Dict[str, Dict[str, object]],
    ]:
        """Run one request per shard concurrently; collect live answers.

        ``line_for_shard(shard)`` builds the wire line; ``parse(lines)``
        decodes one backend's response.  Returns ``(per_shard_payload,
        missing_shards, served_by, node_subtrees)``.

        With ``trace_ctx`` set, every scatter line carries the child
        context (``trace=``) and the piggybacked ``TRACE`` reply line is
        stripped before ``parse`` sees the data; the decoded subtree is
        keyed ``<shard>.<backend>`` and annotated with the shard call's
        round-trip time (``rpc_seconds``), from which the stitcher
        derives the network/queue share.
        """
        results: Dict[int, object] = {}
        served_by: Dict[int, int] = {}
        subtrees: Dict[str, Dict[str, object]] = {}
        missing: List[int] = []
        lock = threading.Lock()
        child = trace_ctx.child() if trace_ctx is not None else None

        def run(shard: int) -> None:
            shard_started = time.perf_counter()
            line = line_for_shard(shard)
            if child is not None:
                line = f"{line} trace={child.to_wire()}"
            try:
                backend_id, lines = self._shard_call(shard, line)
            except ShardUnavailable:
                with lock:
                    missing.append(shard)
                return
            rpc_seconds = time.perf_counter() - shard_started
            subtree: Optional[Dict[str, object]] = None
            if child is not None:
                try:
                    lines, subtree = _trace_context.split_trace_line(lines)
                except ValueError:
                    subtree = None  # junk payload: keep the data lines
            payload = parse(lines)
            with lock:
                results[shard] = payload
                served_by[shard] = backend_id
                if subtree is not None:
                    subtree["rpc_seconds"] = rpc_seconds
                    subtrees[f"{shard}.{backend_id}"] = subtree
            if trace is not None:
                trace.add_span(f"scatter.shard.{shard}", seconds=rpc_seconds)

        threads = [
            threading.Thread(target=run, args=(shard,), daemon=True)
            for shard in range(self.shard_map.num_shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results, tuple(sorted(missing)), served_by, subtrees

    def _effective_context(
        self, trace_context: Optional[TraceContext], trace: Optional[QueryTrace]
    ) -> Optional[TraceContext]:
        """The context to propagate: the caller's, or a fresh one when
        coordinator-local tracing is on (so backends get traced too)."""
        if trace_context is not None:
            return trace_context if trace_context.sampled else None
        if trace is not None:
            return TraceContext.generate()
        return None

    def _stitch_trace(
        self,
        trace: QueryTrace,
        ctx: TraceContext,
        subtrees: Dict[str, Dict[str, object]],
        missing: Tuple[int, ...],
    ) -> Dict[str, object]:
        """Fold per-node subtrees into the coordinator trace.

        Each contacted node contributes one ``node.<shard>.<backend>``
        span splitting its round trip into engine time (the subtree's
        own total) and the derived network/queue remainder; the node
        with the largest round trip is named the *laggard* (the one a
        slow-query postmortem should look at first), and a PARTIAL
        answer names its missing shards.  The full stitched tree —
        coordinator stages plus every node's engine-level subtree — is
        stored under the trace id for ``trace get <id>``.
        """
        if missing:
            trace.note("missing_shards", ",".join(str(s) for s in missing))
        laggard: Optional[str] = None
        laggard_rpc = -1.0
        for key in sorted(subtrees):
            sub = subtrees[key]
            rpc = float(sub.get("rpc_seconds", 0.0))
            engine = float(sub.get("total_seconds", 0.0))
            trace.add_span(
                f"node.{key}",
                rpc=rpc,
                engine=engine,
                net_queue=max(0.0, rpc - engine),
            )
            if rpc > laggard_rpc:
                laggard, laggard_rpc = key, rpc
        if laggard is not None:
            trace.note("laggard", laggard)
        tree = trace.to_dict()
        tree["trace_id"] = ctx.trace_id
        tree["nodes"] = dict(subtrees)
        self.trace_store.put(ctx.trace_id, tree)
        return tree

    def _account_missing(self, missing: Tuple[int, ...]) -> None:
        if missing:
            _M_PARTIAL.inc()
            _M_MISSING_SHARDS.inc(len(missing))
            self.health.record_fallback(
                "cluster", f"partial result, shards {missing} unreachable"
            )
        else:
            self.health.mark_healthy("cluster")

    def query(
        self,
        object_id: int,
        top_k: int = 10,
        method: str = "filtering",
        trace_context: Optional[TraceContext] = None,
    ) -> ClusterResult:
        """Cluster-wide similarity search seeded by an indexed object.

        The seed signature is fetched from its owning shard, the query
        is scattered to one live replica per shard, and the per-shard
        top-k lists are merged deterministically.  Shards that are
        entirely unreachable are reported in ``missing_shards`` rather
        than failing the query; losing the *seed's* shard (no replica
        can even produce the signature) raises :class:`ClusterError`.

        A sampled ``trace_context`` makes this an explicitly traced
        query: the context is forwarded on every scatter line, the
        per-node subtrees are stitched under the context's trace id
        (:meth:`_stitch_trace`), and the result cache is bypassed so
        the trace reflects real cluster work, not a coordinator-local
        cache hit.
        """
        started = time.perf_counter()
        _M_QUERIES.inc()
        traced = trace_context is not None and trace_context.sampled
        cache_key = ("query", int(object_id), int(top_k), method)
        epoch = self._cache_epoch()
        hit = None if traced else self._cache.lookup(epoch, cache_key)
        if hit is not None:
            merged, served_by = hit
            self.tracer.observe_total(
                "cluster", 1, time.perf_counter() - started
            )
            return ClusterResult(list(merged), (), dict(served_by))
        trace = self.tracer.begin("cluster", 1)
        if trace is None and traced:
            trace = QueryTrace("cluster", 1)
        ctx = self._effective_context(trace_context, trace)
        seed_b64 = self._fetch_signature(object_id)
        line = (
            f"querysig {seed_b64} top={int(top_k)} method={quote(method)} "
            f"exclude={object_id}"
        )
        scatter_started = time.perf_counter()
        # mod/residue restricts each backend's answer to the target
        # shard's objects: a backend hosts R shards, and without the
        # restriction every replica would answer with overlapping sets.
        per_shard, missing, served_by, subtrees = self._scatter(
            lambda shard: f"{line} mod={self.shard_map.num_shards} residue={shard}",
            self._parse_results,
            trace,
            trace_ctx=ctx,
        )
        scatter_seconds = time.perf_counter() - scatter_started
        _M_SCATTER_SECONDS.observe(scatter_seconds)
        for shard in per_shard:
            _metrics.counter(f"cluster.shard.{shard}.queries").inc()
        gather_started = time.perf_counter()
        merged = self.merge_ranked(list(per_shard.values()), top_k)
        gather_seconds = time.perf_counter() - gather_started
        _M_GATHER_SECONDS.observe(gather_seconds)
        self._account_missing(missing)
        # Cache only full answers, and only if neither a write nor a
        # breaker transition moved the epoch mid-flight (a moved epoch
        # means this answer may already be stale).
        if not traced and not missing and self._cache_epoch() == epoch:
            self._cache.store(
                epoch, cache_key, (tuple(merged), dict(served_by))
            )
        elapsed = time.perf_counter() - started
        _M_QUERY_SECONDS.observe(elapsed)
        if trace is not None:
            trace.add_span("scatter", seconds=scatter_seconds)
            trace.add_span("gather", seconds=gather_seconds)
            trace.add_count("shards_answered", len(per_shard))
            trace.add_count("shards_missing", len(missing))
            self.tracer.finish(trace, elapsed)
            if ctx is not None:
                self._stitch_trace(trace, ctx, subtrees, missing)
        else:
            self.tracer.observe_total("cluster", 1, elapsed)
        return ClusterResult(merged, missing, served_by)

    def query_many(
        self,
        object_ids: Sequence[int],
        top_k: int = 10,
        method: str = "filtering",
        trace_context: Optional[TraceContext] = None,
    ) -> List[ClusterResult]:
        """Batch cluster search through the backends' fused pipeline.

        All seed signatures are fetched first (each from its owning
        shard), then every shard receives *one* ``querysigmany`` call
        carrying the whole batch, so the per-command overhead is paid
        per shard, not per query.  A sampled ``trace_context`` traces
        the whole batch under one stitched tree (and bypasses the
        result cache, as in :meth:`query`).
        """
        object_ids = list(object_ids)
        if not object_ids:
            return []
        started = time.perf_counter()
        _M_QUERIES.inc()
        traced = trace_context is not None and trace_context.sampled
        epoch = self._cache_epoch()
        keys = [("query", int(oid), int(top_k), method) for oid in object_ids]
        out: List[Optional[ClusterResult]] = [None] * len(object_ids)
        if not traced:
            for i, key in enumerate(keys):
                hit = self._cache.lookup(epoch, key)
                if hit is not None:
                    merged, served_by = hit
                    out[i] = ClusterResult(list(merged), (), dict(served_by))
        miss = [i for i in range(len(object_ids)) if out[i] is None]
        if not miss:
            self.tracer.observe_total(
                "cluster", len(object_ids), time.perf_counter() - started
            )
            return out  # type: ignore[return-value]
        miss_ids = [object_ids[i] for i in miss]
        trace = self.tracer.begin("cluster", len(miss_ids))
        if trace is None and traced:
            trace = QueryTrace("cluster", len(miss_ids))
        ctx = self._effective_context(trace_context, trace)
        seeds = [self._fetch_signature(oid) for oid in miss_ids]
        line = (
            f"querysigmany {','.join(seeds)} top={int(top_k)} "
            f"method={quote(method)} "
            f"exclude={','.join(str(oid) for oid in miss_ids)}"
        )

        def parse(lines: Sequence[str]) -> List[List[Tuple[int, float]]]:
            batches: List[List[Tuple[int, float]]] = [[] for _ in miss_ids]
            for raw in lines:
                index, oid, dist = raw.split()
                batches[int(index)].append((int(oid), float(dist)))
            return batches

        scatter_started = time.perf_counter()
        per_shard, missing, served_by, subtrees = self._scatter(
            lambda shard: f"{line} mod={self.shard_map.num_shards} residue={shard}",
            parse,
            trace,
            trace_ctx=ctx,
        )
        scatter_seconds = time.perf_counter() - scatter_started
        _M_SCATTER_SECONDS.observe(scatter_seconds)
        for shard in per_shard:
            _metrics.counter(f"cluster.shard.{shard}.queries").inc(len(miss_ids))
        gather_started = time.perf_counter()
        cacheable = not traced and not missing and self._cache_epoch() == epoch
        for pos, i in enumerate(miss):
            merged = self.merge_ranked(
                [batches[pos] for batches in per_shard.values()], top_k
            )
            out[i] = ClusterResult(merged, missing, dict(served_by))
            if cacheable:
                self._cache.store(
                    epoch, keys[i], (tuple(merged), dict(served_by))
                )
        gather_seconds = time.perf_counter() - gather_started
        _M_GATHER_SECONDS.observe(gather_seconds)
        self._account_missing(missing)
        elapsed = time.perf_counter() - started
        _M_QUERY_SECONDS.observe(elapsed)
        if trace is not None:
            trace.add_span("scatter", seconds=scatter_seconds)
            trace.add_span("gather", seconds=gather_seconds)
            trace.add_count("shards_answered", len(per_shard))
            trace.add_count("shards_missing", len(missing))
            self.tracer.finish(trace, elapsed)
            if ctx is not None:
                self._stitch_trace(trace, ctx, subtrees, missing)
        else:
            self.tracer.observe_total("cluster", len(object_ids), elapsed)
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _seed_next_id(self) -> int:
        """Initialize the global id counter from the backends' maxima."""
        next_id = 0
        for handle in self.handles:
            try:
                lines = self._call_backend(handle.backend_id, "maxid")
            except FAILOVER_ERRORS:
                continue
            next_id = max(next_id, int(lines[0]))
        return next_id

    def insert_file(
        self, path: str, attributes: Optional[Dict[str, str]] = None
    ) -> int:
        """Ingest a file: assign the next global id, write to the owning
        shard's replicas.

        The write succeeds if at least one replica acknowledged; fewer
        than R acks counts an under-replicated write and records a
        degradation (the shard survives only R-1 further failures).
        """
        with self._id_lock:
            if self._next_id is None:
                self._next_id = self._seed_next_id()
            object_id = self._next_id
            self._next_id += 1
        shard = self.shard_map.shard_of(object_id)
        parts = [f"insertfile {quote(path)} id={object_id}"]
        for key, value in (attributes or {}).items():
            parts.append(f"attr.{key}={quote(value)}")
        line = " ".join(parts)
        acks = 0
        failures: List[Tuple[int, Exception]] = []
        for backend_id in self.shard_map.replicas(shard):
            try:
                self._call_backend(backend_id, line)
            except FAILOVER_ERRORS as exc:
                failures.append((backend_id, exc))
                continue
            acks += 1
        if acks == 0:
            raise ShardUnavailable(shard, failures)
        # Any acknowledged write may change any query's answer: move the
        # write epoch so the result cache flushes on its next access.
        self._write_epoch += 1
        _M_WRITES.inc()
        if acks < self.shard_map.replication:
            _M_UNDER_REPLICATED.inc()
            self.health.record_fallback(
                "replication",
                f"object {object_id} on {acks}/{self.shard_map.replication} replicas",
            )
            get_event_log().record(
                "under_replicated_write",
                object_id=object_id,
                shard=shard,
                acks=acks,
                replication=self.shard_map.replication,
            )
        return object_id

    # ------------------------------------------------------------------
    # Cluster introspection
    # ------------------------------------------------------------------
    def count(self) -> Tuple[int, Tuple[int, ...]]:
        """Total objects across shards (replicas counted once) plus the
        shards that could not be counted."""
        per_shard, missing, _, _ = self._scatter(
            lambda shard: f"countmod {self.shard_map.num_shards} {shard}",
            lambda lines: int(lines[0]),
            None,
        )
        return sum(per_shard.values()), missing

    # ------------------------------------------------------------------
    # Federated metrics
    # ------------------------------------------------------------------
    def collect_node_metrics(self) -> int:
        """Pull every backend's metrics snapshot and fold it in.

        Each reachable backend answers ``metrics -s`` with its full
        registry snapshot; the coordinator keeps the previous snapshot
        per backend and merges only the :func:`~repro.observability.
        metrics.delta_snapshots` *delta* under ``node.<i>.*`` —
        ``merge_snapshot`` accumulates counters, so re-merging full
        snapshots would double-count.  Derived rollups:

        - ``cluster.nodes_up`` — backends that answered this pull;
        - ``cluster.shard.<s>.qps`` — per-shard query rate since the
          previous pull (from the coordinator's own per-shard counters);
        - ``cluster.node.<i>.query_p99_ms`` — each node's engine-level
          p99 from its federated ``engine.query_seconds`` histogram.

        A node that is down is simply skipped (its ``node.<i>.*`` series
        go stale and ``cluster.nodes_up`` drops); no exception escapes.
        Returns the number of nodes that answered.
        """
        registry = _metrics.get_registry()
        up = 0
        with self._federation_lock:
            for handle in self.handles:
                try:
                    lines = self._call_backend(
                        handle.backend_id, "metrics -s",
                        timeout=self.config.probe_timeout,
                    )
                    snapshot = _metrics.decode_snapshot(lines[0])
                except FAILOVER_ERRORS + (ClientError, ValueError, IndexError):
                    continue
                up += 1
                previous = self._node_snapshots.get(handle.backend_id, {})
                delta = _metrics.delta_snapshots(previous, snapshot)
                self._node_snapshots[handle.backend_id] = snapshot
                registry.merge_snapshot(delta, prefix=f"node.{handle.backend_id}.")
                hist = registry.get(f"node.{handle.backend_id}.engine.query_seconds")
                if hist is not None and getattr(hist, "count", 0):
                    _metrics.gauge(
                        f"cluster.node.{handle.backend_id}.query_p99_ms"
                    ).set(hist.quantile(0.99) * 1000.0)
            now = time.monotonic()
            for shard in range(self.shard_map.num_shards):
                counter = registry.get(f"cluster.shard.{shard}.queries")
                total = int(counter.value) if counter is not None else 0
                mark = self._shard_query_marks.get(shard)
                self._shard_query_marks[shard] = (now, total)
                if mark is None:
                    continue
                then, before = mark
                window = now - then
                if window > 0:
                    _metrics.gauge(f"cluster.shard.{shard}.qps").set(
                        (total - before) / window
                    )
        _M_NODES_UP.set(up)
        _M_FEDERATIONS.inc()
        return up

    def status_lines(self) -> List[str]:
        """``key value`` lines for the ``cluster`` protocol command."""
        cache = self._cache.stats()
        lines = [
            f"shards {self.shard_map.num_shards}",
            f"replication {self.shard_map.replication}",
            f"backends {len(self.handles)}",
            f"partial_results {_M_PARTIAL.value}",
            f"failovers {_M_FAILOVERS.value}",
            f"hedged_reads {_M_HEDGED.value}",
            f"cache_entries {cache['entries']}/{cache['capacity']}",
            f"cache_hits {cache['hits']}",
            f"cache_misses {cache['misses']}",
            f"cache_invalidations {cache['invalidations']}",
        ]
        for handle in self.handles:
            breaker = handle.breaker
            shards = ",".join(
                str(s) for s in self.shard_map.shards_on(handle.backend_id)
            )
            lines.append(
                f"backend.{handle.backend_id} {handle.address} "
                f"state={breaker.state.value} shards={shards} "
                f"failures={breaker.total_failures} opens={breaker.times_opened}"
            )
        return lines

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------
    def probe_once(self) -> int:
        """Probe every non-closed backend once; returns re-admissions.

        Success flows through the breaker's half-open gate, so a probe
        is only sent when the breaker permits one; a succeeding probe
        closes the breaker and the backend immediately takes traffic
        again.
        """
        readmitted = 0
        for handle in self.handles:
            breaker = handle.breaker
            if breaker.state is BreakerState.CLOSED:
                continue
            if not breaker.allow():
                continue
            _M_PROBES.inc()
            try:
                handle.send("ping", timeout=self.config.probe_timeout)
            except ClientError:
                breaker.record_failure()
                continue
            breaker.record_success()
            self.health.mark_healthy(f"backend.{handle.backend_id}")
            _M_READMITTED.inc()
            readmitted += 1
            _LOG.info(
                "backend_readmitted",
                backend=handle.backend_id,
                address=handle.address,
            )
            get_event_log().record(
                "backend_readmitted",
                backend=handle.backend_id,
                address=handle.address,
            )
        return readmitted

    def start_probes(self) -> None:
        """Start the background health prober (idempotent)."""
        if self._prober is not None and self._prober.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.config.probe_interval):
                self.probe_once()

        self._prober = threading.Thread(
            target=loop, name="cluster-prober", daemon=True
        )
        self._prober.start()

    def close(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(timeout=2.0)
            self._prober = None
        for handle in self.handles:
            handle.close()

    def __enter__(self) -> "FerretCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
