"""Coordinator-as-a-server: the cluster behind the existing line protocol.

:class:`ClusterCommandProcessor` duck-types the single-engine
``CommandProcessor`` interface (``execute(Command) -> List[str]``), so a
stock :class:`~repro.server.server.FerretServer` can front a whole
cluster without changes.  Clients speak the same protocol they speak to
one server, with one addition — the **partial-result contract**: a query
answered while one or more shards were entirely unreachable prepends a
first data line

    PARTIAL <shard,shard,...>

to the (still deterministically merged, still correct-for-live-shards)
results.  :class:`~repro.server.client.FerretClient` strips the tag and
raises :class:`~repro.server.client.PartialResultWarning` so callers
cannot mistake a partial answer for a complete one.

``python -m repro.cluster.service --backends host:port,host:port ...``
runs a standalone coordinator front end.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

from ..observability import context as _trace_context
from ..observability import metrics as _metrics
from ..observability.events import get_event_log
from ..server.protocol import Command, ProtocolError
from .coordinator import ClusterConfig, ClusterResult, FerretCoordinator

__all__ = ["ClusterCommandProcessor", "main"]


def _partial_prefix(result_like) -> List[str]:
    """The ``PARTIAL`` tag line for a degraded answer (or no line)."""
    missing = tuple(result_like)
    if not missing:
        return []
    return ["PARTIAL " + ",".join(str(s) for s in missing)]


class ClusterCommandProcessor:
    """Line-protocol dispatcher around one :class:`FerretCoordinator`.

    Mirrors the single-engine processor's dispatch convention
    (``_cmd_<name>`` methods, :class:`ProtocolError` for bad requests)
    so the server loop, error formatting, and fault boundary are shared
    verbatim.
    """

    def __init__(self, coordinator: FerretCoordinator) -> None:
        self.coordinator = coordinator
        self.health = coordinator.health

    # -- dispatch ---------------------------------------------------------
    def execute(self, command: Command) -> List[str]:
        handler = getattr(self, f"_cmd_{command.name}", None)
        if handler is None:
            raise ProtocolError(f"unknown command {command.name!r}")
        result = handler(command)
        _metrics.counter(f"cluster.command.{command.name}").inc()
        return result

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _render(result: ClusterResult, with_index: Optional[int] = None) -> List[str]:
        if with_index is None:
            return [f"{r.object_id} {r.distance:.6f}" for r in result.results]
        return [
            f"{with_index} {r.object_id} {r.distance:.6f}" for r in result.results
        ]

    # -- handlers ----------------------------------------------------------
    def _cmd_ping(self, command: Command) -> List[str]:
        return ["pong"]

    def _cmd_health(self, command: Command) -> List[str]:
        return self.health.status_lines()

    def _cmd_cluster(self, command: Command) -> List[str]:
        return self.coordinator.status_lines()

    def _cmd_count(self, command: Command) -> List[str]:
        total, missing = self.coordinator.count()
        return _partial_prefix(missing) + [str(total)]

    @staticmethod
    def _trace_context_from(command: Command):
        """The ``trace=`` context, if the request carried one."""
        token = command.get("trace")
        if token is None:
            return None
        try:
            return _trace_context.TraceContext.parse(token)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    def _trace_reply(self, ctx) -> List[str]:
        """The piggybacked ``TRACE`` line for a traced cluster answer
        (the stitched tree the coordinator just stored)."""
        if ctx is None or not ctx.sampled:
            return []
        tree = self.coordinator.trace_store.get(ctx.trace_id)
        if tree is None:
            return []
        payload = _trace_context.encode_trace(tree)
        return [f"{_trace_context.TRACE_LINE_PREFIX}{ctx.trace_id} {payload}"]

    def _cmd_query(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError(
                "usage: query <object_id> [top=] [method=] [trace=]"
            )
        try:
            object_id = int(command.args[0])
        except ValueError:
            raise ProtocolError(f"bad object id {command.args[0]!r}") from None
        top_k = int(command.get("top", "10"))
        method = command.get("method", "filtering")
        ctx = self._trace_context_from(command)
        try:
            result = self.coordinator.query(
                object_id, top_k=top_k, method=method, trace_context=ctx
            )
        except Exception as exc:
            # A ClientError relayed from a backend's well-formed ERR
            # answer (e.g. "unknown object N") is a bad request here too.
            raise ProtocolError(str(exc)) from exc
        return (
            _partial_prefix(result.missing_shards)
            + self._render(result)
            + self._trace_reply(ctx)
        )

    def _cmd_querymany(self, command: Command) -> List[str]:
        if not command.args:
            raise ProtocolError(
                "usage: querymany <id> [<id> ...] [top=] [method=] [trace=]"
            )
        try:
            object_ids = [int(a) for a in command.args]
        except ValueError:
            raise ProtocolError("querymany takes integer object ids") from None
        top_k = int(command.get("top", "10"))
        method = command.get("method", "filtering")
        ctx = self._trace_context_from(command)
        try:
            results = self.coordinator.query_many(
                object_ids, top_k=top_k, method=method, trace_context=ctx
            )
        except Exception as exc:
            raise ProtocolError(str(exc)) from exc
        missing = results[0].missing_shards if results else ()
        lines = _partial_prefix(missing)
        for index, result in enumerate(results):
            lines.extend(self._render(result, with_index=index))
        return lines + self._trace_reply(ctx)

    def _cmd_insertfile(self, command: Command) -> List[str]:
        if len(command.args) != 1:
            raise ProtocolError("usage: insertfile <path> [attr.<k>=<v> ...]")
        attrs = {
            key[len("attr."):]: value
            for key, value in command.kwargs
            if key.startswith("attr.") and key != "attr."
        }
        try:
            object_id = self.coordinator.insert_file(
                command.args[0], attributes=attrs or None
            )
        except Exception as exc:
            raise ProtocolError(str(exc)) from exc
        return [str(object_id)]

    def _cmd_metrics(self, command: Command) -> List[str]:
        """``metrics [-p|-s] [prefix]``: the coordinator registry with
        every backend's snapshot federated in first (``node.<i>.*`` plus
        rollups; see :meth:`FerretCoordinator.collect_node_metrics`)."""
        prometheus = False
        snapshot = False
        prefix: Optional[str] = None
        for arg in command.args:
            if arg == "-p":
                prometheus = True
            elif arg == "-s":
                snapshot = True
            elif prefix is None:
                prefix = arg
            else:
                raise ProtocolError("usage: metrics [-p|-s] [prefix]")
        if prometheus and snapshot:
            raise ProtocolError("usage: metrics [-p|-s] [prefix]")
        self.coordinator.collect_node_metrics()
        registry = _metrics.get_registry()
        if snapshot:
            state = registry.snapshot()
            if prefix:
                state = {
                    name: value
                    for name, value in state.items()
                    if name.startswith(prefix)
                }
            return [_metrics.encode_snapshot(state)]
        if prometheus:
            return registry.render_prometheus(prefix=prefix)
        return registry.render(prefix=prefix)

    def _cmd_trace(self, command: Command) -> List[str]:
        tracer = self.coordinator.tracer
        args = list(command.args)
        tree = "--tree" in args
        if tree:
            args.remove("--tree")
        if args and args[0] == "slow":
            try:
                limit = int(args[1]) if len(args) > 1 else 10
            except ValueError:
                raise ProtocolError("usage: trace slow [n] [--tree]") from None
            if limit <= 0 or len(args) > 2:
                raise ProtocolError("usage: trace slow [n] [--tree]")
            lines = [f"slow_queries_total {tracer.slow_log.total_recorded}"]
            for i, entry in enumerate(tracer.slow_log.entries()[-limit:]):
                if tree:
                    lines.extend(
                        _trace_context.render_trace_tree(entry.to_dict())
                    )
                else:
                    note = entry.notes.get("missing_shards")
                    partial = f" PARTIAL={note}" if note else ""
                    laggard = entry.notes.get("laggard")
                    slowest = f" laggard={laggard}" if laggard else ""
                    lines.append(
                        f"{i} method={entry.method} queries={entry.num_queries} "
                        f"total_seconds={entry.total_seconds:.6f}"
                        f"{partial}{slowest}"
                    )
            return lines
        if args and args[0] == "get":
            if len(args) != 2:
                raise ProtocolError("usage: trace get <id> [--tree]")
            stored = self.coordinator.trace_store.get(args[1])
            if stored is None:
                raise ProtocolError(f"unknown trace id {args[1]!r}")
            if tree:
                return _trace_context.render_trace_tree(stored)
            return _trace_context.trace_lines(stored)
        if args:
            raise ProtocolError("usage: trace [get <id>|slow [n]] [--tree]")
        last = tracer.last
        if last is None:
            return [
                f"tracing {'on' if tracer.enabled else 'off'}",
                "no_trace_recorded",
            ]
        if tree:
            return _trace_context.render_trace_tree(last.to_dict())
        return last.lines()

    def _cmd_events(self, command: Command) -> List[str]:
        """``events [n]``: the coordinator's event journal — breaker
        transitions, failovers, hedged wins, re-admissions — oldest
        first (the postmortem timeline; see docs/OBSERVABILITY.md)."""
        limit: Optional[int] = None
        if command.args:
            try:
                limit = int(command.args[0])
            except ValueError:
                raise ProtocolError("usage: events [n]") from None
            if limit < 0 or len(command.args) > 1:
                raise ProtocolError("usage: events [n]")
        journal = get_event_log()
        lines = [f"events_total {journal.total_recorded}"]
        lines.extend(event.line() for event in journal.tail(limit))
        return lines

    def _cmd_setparam(self, command: Command) -> List[str]:
        if len(command.args) != 2:
            raise ProtocolError("usage: setparam <name> <value>")
        name, value = command.args
        if name == "trace":
            self.coordinator.tracer.enabled = value.lower() in ("on", "1", "true")
            return [f"trace {'on' if self.coordinator.tracer.enabled else 'off'}"]
        raise ProtocolError(f"unknown parameter {name!r}")


def _parse_backends(spec: str) -> List[Tuple[str, int]]:
    endpoints = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        if not host or not port.isdigit():
            raise argparse.ArgumentTypeError(f"bad endpoint {part!r}")
        endpoints.append((host, int(port)))
    if not endpoints:
        raise argparse.ArgumentTypeError("no backend endpoints given")
    return endpoints


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Ferret cluster coordinator front end"
    )
    parser.add_argument(
        "--backends",
        type=_parse_backends,
        required=True,
        help="comma-separated backend endpoints, host:port[,host:port...]",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7879)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--replication", type=int, default=2)
    args = parser.parse_args(argv)

    from ..server.server import FerretServer

    config = ClusterConfig(replication=args.replication)
    with FerretCoordinator(
        args.backends, num_shards=args.shards, config=config
    ) as coordinator:
        coordinator.start_probes()
        server = FerretServer(
            ClusterCommandProcessor(coordinator), args.host, args.port
        )
        host, port = server.server_address
        print(f"coordinator listening on {host}:{port}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()


if __name__ == "__main__":
    main()
