"""Per-backend circuit breaker: closed → open → half-open.

One :class:`CircuitBreaker` guards one backend server.  It consumes the
coordinator's error/timeout telemetry (every failed round-trip is a
``record_failure``) and decides whether the backend may be sent traffic:

- **closed** — healthy; requests flow.  ``failure_threshold``
  *consecutive* failures trip the breaker open (a single success resets
  the run, so sporadic timeouts under load do not eject a backend).
- **open** — the backend gets no traffic at all for ``cooldown_seconds``;
  every request that would have gone there fails over immediately
  instead of paying the timeout again.
- **half-open** — after the cooldown, exactly one *probe* request is let
  through at a time.  Success closes the breaker (the backend is
  re-admitted); failure re-opens it and restarts the cooldown.

The clock is injectable so tests drive transitions deterministically
without sleeping, and an optional ``on_transition(old, new)`` callback
lets the owner mirror state changes into metrics/logs (the coordinator
sets ``cluster.backend.<i>.breaker_state`` gauges from it).
Thread-safe: the coordinator's scatter threads, its prober, and its
command handlers all share one breaker per backend.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Optional

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    @property
    def gauge_value(self) -> int:
        """Stable numeric encoding for metrics (0 closed, 1 half, 2 open)."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


class CircuitBreaker:
    """Consecutive-failure breaker with single-probe half-open state."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[BreakerState, BreakerState], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Transitions recorded under the lock, fired after release: the
        #: callback is allowed to read ``state`` (the coordinator's does,
        #: to refresh the availability gauge), which would deadlock on
        #: this non-reentrant lock if fired inline.
        self._pending: list = []
        #: Counters for the ``cluster`` status command.
        self.total_failures = 0
        self.times_opened = 0

    # -- state ------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current state; an elapsed cooldown reports (and becomes) half-open."""
        with self._lock:
            self._maybe_half_open()
            state = self._state
        self._fire_pending()
        return state

    def _transition(self, new: BreakerState) -> None:
        """Move to ``new``; caller holds the lock.  The callback fires
        later, outside the lock, via :meth:`_fire_pending`."""
        old = self._state
        if old is new:
            return
        self._state = new
        if self._on_transition is not None:
            self._pending.append((old, new))

    def _fire_pending(self) -> None:
        """Fire queued transition callbacks without holding the lock.

        FIFO across threads: whichever thread gets there first delivers
        the oldest transition, so observers see state changes in order.
        """
        if self._on_transition is None:
            return
        while True:
            with self._lock:
                if not self._pending:
                    return
                old, new = self._pending.pop(0)
            self._on_transition(old, new)

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probe_in_flight = False

    # -- decisions --------------------------------------------------------
    def allow(self) -> bool:
        """May a request go to this backend right now?

        Closed: always.  Open: never (until the cooldown elapses).
        Half-open: only the first caller — that request is the probe; its
        outcome (``record_success`` / ``record_failure``) decides whether
        the backend is re-admitted.
        """
        try:
            with self._lock:
                self._maybe_half_open()
                if self._state is BreakerState.CLOSED:
                    return True
                if self._state is BreakerState.OPEN:
                    return False
                if self._probe_in_flight:
                    return False
                self._probe_in_flight = True
                return True
        finally:
            self._fire_pending()

    # -- telemetry --------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED)
        self._fire_pending()

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            self.total_failures += 1
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state is BreakerState.HALF_OPEN or (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self.times_opened += 1
                self._transition(BreakerState.OPEN)
        self._fire_pending()

    def force_open(self) -> None:
        """Trip the breaker immediately (a vanished connection on a
        request that *must not* wait out the threshold, e.g. ECONNREFUSED
        — the process is gone, not slow)."""
        with self._lock:
            self.total_failures += 1
            self._consecutive_failures = self.failure_threshold
            self._probe_in_flight = False
            if self._state is not BreakerState.OPEN:
                self._opened_at = self._clock()
                self.times_opened += 1
                self._transition(BreakerState.OPEN)
        self._fire_pending()
