"""Cluster topology: object-id sharding and replica placement.

The corpus is partitioned by object id — object ``i`` belongs to shard
``i % num_shards`` — and each shard is hosted on ``replication``
backends, assigned round-robin: shard ``s`` lives on backends
``s % B, (s+1) % B, ..., (s+R-1) % B``.  The first replica is the
shard's *primary* (preferred for reads and for seed-signature fetches);
the rest are failover targets.  Writes go to **every** replica of the
owning shard, which is what lets any single replica die without losing
the shard.

The layout is a pure function of ``(num_shards, num_backends,
replication)``, so the coordinator, the backend launcher, and the tests
all derive the same placement without exchanging state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Deterministic shard → backend placement."""

    num_shards: int
    num_backends: int
    replication: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.num_backends < 1:
            raise ValueError("num_backends must be >= 1")
        if not 1 <= self.replication <= self.num_backends:
            raise ValueError(
                f"replication must be in [1, {self.num_backends}], "
                f"got {self.replication}"
            )

    def shard_of(self, object_id: int) -> int:
        """The shard that owns ``object_id``."""
        if object_id < 0:
            raise ValueError(f"object ids are non-negative, got {object_id}")
        return object_id % self.num_shards

    def replicas(self, shard: int) -> Tuple[int, ...]:
        """Backends hosting ``shard``, primary first."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")
        return tuple(
            (shard + r) % self.num_backends for r in range(self.replication)
        )

    def shards_on(self, backend: int) -> Tuple[int, ...]:
        """Shards hosted by ``backend``, ascending."""
        if not 0 <= backend < self.num_backends:
            raise ValueError(
                f"backend {backend} out of range [0, {self.num_backends})"
            )
        return tuple(
            s for s in range(self.num_shards) if backend in self.replicas(s)
        )

    def owns(self, backend: int, object_id: int) -> bool:
        return backend in self.replicas(self.shard_of(object_id))
